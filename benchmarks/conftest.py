"""Benchmark-suite plumbing.

Each benchmark runs one experiment (E1–E10) at paper scale, asserts the
paper's claim on the result, and writes the regenerated table to
``benchmarks/results/<experiment>.txt`` so the artefacts survive
pytest's output capture.  The pytest-benchmark summary (in
``bench_output.txt`` when teed) carries the wall-clock costs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Write an ExperimentResult table to the results directory (and
    echo it, visible with ``pytest -s``)."""

    def _emit(result, *, float_digits: int = 2) -> str:
        table = result.table(float_digits=float_digits)
        path = results_dir / f"{result.experiment.lower().replace(' ', '_')}.txt"
        path.write_text(table + "\n", encoding="utf-8")
        print(f"\n{table}\n[written to {path}]")
        return table

    return _emit
