"""Benchmark E10 — engineering scaling: the vectorized kernels agree
with the reference engine and outpace it; plus direct kernel timings at
sizes the reference engine cannot reach comfortably."""

import numpy as np

from repro.experiments import e10_scaling
from repro.graphs.generators import erdos_renyi_graph
from repro.matching.smm_vectorized import VectorizedSMM
from repro.mis.sis_vectorized import VectorizedSIS


def run_experiment():
    return e10_scaling.run(sizes=(64, 128, 256, 512, 1024, 2048), seed=111)


def test_bench_e10_engine_comparison(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    checked = [row for row in result.rows if row["agree"] is not None]
    assert checked and all(row["agree"] for row in checked)


def _vector_smm_once(graph):
    res = VectorizedSMM(graph).run()
    assert res.stabilized
    return res


def _vector_sis_once(graph):
    res = VectorizedSIS(graph).run()
    assert res.stabilized
    return res


def _kernel_graph(seed):
    # expected degree ~ 3 ln n keeps G(n, p) connected w.h.p., so the
    # connectivity-repair loop in the generator never spins
    n = 4096
    p = 3.0 * np.log(n) / n
    return erdos_renyi_graph(n, p, rng=seed)


def test_bench_e10_vectorized_smm_kernel(benchmark):
    graph = _kernel_graph(7)
    res = benchmark(_vector_smm_once, graph)
    assert res.rounds <= graph.n + 1


def test_bench_e10_vectorized_sis_kernel(benchmark):
    graph = _kernel_graph(8)
    res = benchmark(_vector_sis_once, graph)
    assert res.rounds <= graph.n


def test_bench_e10_batch_smm_throughput(benchmark):
    """Batch kernel: 64 random starts on one graph, stepped together.

    Throughput metric for the sweep-style workloads of E1; the batch
    run must match per-run round counts (pinned by the unit tests), so
    this bench only asserts the theorem bound over the whole batch.
    """
    import numpy as np

    from repro.core.faults import random_configuration
    from repro.matching.smm import SynchronousMaximalMatching
    from repro.matching.smm_batch import BatchSMM

    graph = erdos_renyi_graph(256, 3.0 * np.log(256) / 256, rng=9)
    smm = SynchronousMaximalMatching()
    rng = np.random.default_rng(10)
    batch = BatchSMM(graph)
    ptrs = batch.encode_batch(
        [random_configuration(smm, graph, rng) for _ in range(64)]
    )

    def run_once():
        res = batch.run_batch(ptrs)
        assert res.all_stabilized
        return res

    res = benchmark(run_once)
    assert res.max_rounds() <= graph.n + 1


def test_bench_e10_vectorized_luby_kernel(benchmark):
    """The randomized comparator at scale: expected O(log n)-ish rounds
    on sparse graphs, far below SIS's id cascade."""
    from repro.mis.luby_vectorized import VectorizedLuby

    graph = _kernel_graph(13)
    vec = VectorizedLuby(graph)

    def run_once():
        res = vec.run(rng=14, max_rounds=5000)
        assert res.stabilized
        return res

    res = benchmark(run_once)
    assert res.rounds < graph.n // 4


def test_bench_e10_batch_sis_throughput(benchmark):
    import numpy as np

    from repro.core.faults import random_configuration
    from repro.mis.sis import SynchronousMaximalIndependentSet
    from repro.mis.sis_batch import BatchSIS

    graph = erdos_renyi_graph(256, 3.0 * np.log(256) / 256, rng=11)
    sis = SynchronousMaximalIndependentSet()
    rng = np.random.default_rng(12)
    batch = BatchSIS(graph)
    xs = batch.encode_batch(
        [random_configuration(sis, graph, rng) for _ in range(64)]
    )

    def run_once():
        res = batch.run_batch(xs)
        assert res.all_stabilized
        return res

    res = benchmark(run_once)
    assert res.max_rounds() <= graph.n
