"""Benchmark E11 — design-choice ablations (R1 acceptance choice and
beacon-layer parameters)."""

from repro.experiments import e11_ablations


def run_choosers():
    return e11_ablations.run_acceptance_choosers(
        families=("cycle", "tree", "er-sparse"),
        sizes=(8, 16, 32),
        trials=10,
        seed=120,
    )


def run_beacon():
    return e11_ablations.run_beacon_parameters(
        n=16,
        loss_rates=(0.0, 0.1, 0.2, 0.3),
        timeout_factors=(1.5, 2.5, 4.0),
        trials=4,
        seed=121,
    )


def run_contention():
    return e11_ablations.run_contention(
        n=14, windows=(0.0, 0.02, 0.05, 0.1), jitters=(0.05, 0.2),
        trials=4, seed=122,
    )


def test_bench_e11_acceptance_choosers(benchmark, emit):
    result = benchmark.pedantic(run_choosers, rounds=1, iterations=1)
    emit(result)
    assert all(row["all_correct"] for row in result.rows)
    deterministic = [r for r in result.rows if r["accept"] in ("min-id", "max-id")]
    assert all(row["rounds_max"] <= row["bound"] for row in deterministic)


def test_bench_e11_beacon_parameters(benchmark, emit):
    result = benchmark.pedantic(run_beacon, rounds=1, iterations=1)
    emit(result)
    # The measured robustness envelope: the eviction timeout must out-
    # last plausible loss streaks.  A miss streak covering the whole
    # timeout window has probability ~ loss^floor(tf); we require
    # stabilization where that is small (tf=4 at any tested loss, and
    # tf=2.5 up to 20% loss).  The remaining cells — tf=1.5 under loss,
    # tf=2.5 at 30% loss — are the documented thrashing regime.
    safe = [
        row
        for row in result.rows
        if row["timeout_factor"] >= 4.0
        or (row["timeout_factor"] >= 2.5 and row["loss"] <= 0.2)
    ]
    assert all(row["all_stabilized"] for row in safe)


def test_bench_e11_contention(benchmark, emit):
    result = benchmark.pedantic(run_contention, rounds=1, iterations=1)
    emit(result)
    # SIS tolerates every tested window; SMM tolerates windows up to
    # 0.05 (its mutual-pointer consistency makes it more sensitive to
    # asymmetric collision loss — the ablation's finding (b))
    assert all(
        row["all_stabilized"]
        for row in result.rows
        if row["protocol"] == "SIS" and row["jitter"] >= 0.2
    )
    assert all(
        row["all_stabilized"]
        for row in result.rows
        if row["protocol"] == "SMM" and row["window"] <= 0.05
    )
    # and contention genuinely costs time at equal jitter
    desynced = [row for row in result.rows if row["jitter"] >= 0.2]
    by_key = {}
    for row in desynced:
        by_key.setdefault(row["protocol"], {})[row["window"]] = row[
            "beacon_rounds_mean"
        ]
    for series in by_key.values():
        assert series[max(series)] > series[0.0]
