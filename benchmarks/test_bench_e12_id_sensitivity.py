"""Benchmark E12 — id-assignment sensitivity (extension study).

Random relabelings of fixed topologies: the theorems must hold for
every id layout, while the layout steers which maximal matching / MIS
the protocols land on (and how fast).
"""

from repro.experiments import e12_id_sensitivity


def run_experiment():
    return e12_id_sensitivity.run(
        families=("cycle", "tree", "er-sparse", "udg"),
        sizes=(16, 32),
        relabelings=20,
        seed=130,
    )


def test_bench_e12_id_sensitivity(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    assert all(row["rounds_max"] <= row["bound"] for row in result.rows)
    # the id layout genuinely matters: multiple distinct solutions per
    # topology (a complete graph would be the degenerate exception; the
    # chosen families all have many maximal matchings / MISs)
    assert all(row["distinct_solutions"] >= 2 for row in result.rows)
