"""Benchmark E1 — Theorem 1: SMM stabilizes within n + 1 rounds.

Regenerates the full convergence table (families × sizes × initial
modes, plus exhaustive tiny graphs) and asserts the bound everywhere.
"""

from repro.experiments import e1_smm_convergence


def run_experiment():
    return e1_smm_convergence.run(
        families=("cycle", "path", "star", "complete", "tree", "grid", "er-sparse", "udg"),
        sizes=(4, 8, 16, 32, 64),
        trials=15,
        seed=101,
    )


def test_bench_e1_smm_convergence(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    assert result.rows
    assert all(row["within_bound"] == 1.0 for row in result.rows)
    assert all(row["rounds_max"] <= row["bound"] for row in result.rows)
