"""Benchmark E2 — Theorem 2: SIS stabilizes in O(n) rounds onto the
unique greedy fixpoint; plus the Θ(n) worst-case cascade series."""

from repro.experiments import e2_sis_convergence


def run_sweep():
    return e2_sis_convergence.run(
        families=("cycle", "path", "star", "complete", "tree", "grid", "er-sparse", "udg"),
        sizes=(4, 8, 16, 32, 64),
        trials=15,
        seed=102,
    )


def run_series():
    return e2_sis_convergence.run_worst_case_series(
        sizes=(8, 16, 32, 64, 128, 256)
    )


def test_bench_e2_sis_convergence(benchmark, emit):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(result)
    assert all(row["within_bound"] == 1.0 for row in result.rows)
    assert all(row["greedy_fixpoint"] for row in result.rows)


def test_bench_e2_sis_worst_case_series(benchmark, emit):
    result = benchmark.pedantic(run_series, rounds=1, iterations=1)
    emit(result)
    ratios = [row["rounds_over_n"] for row in result.rows]
    # linear shape: rounds/n bounded and roughly constant
    assert all(0.8 <= r <= 1.0 for r in ratios)
