"""Benchmark E3 — Figures 2–3 / Lemmas 1–7: the node-type transition
diagram, observed empirically with arrow counts."""

from repro.experiments import e3_transitions
from repro.matching.classification import ALLOWED_TRANSITIONS


def run_experiment():
    return e3_transitions.run(
        families=("cycle", "path", "complete", "tree", "er-sparse", "udg"),
        sizes=(4, 8, 16, 32),
        trials=25,
        seed=103,
    )


def test_bench_e3_transition_diagram(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    # every observed arrow is one of Fig. 3's ten
    assert all(row["in_figure_3"] for row in result.rows)
    # the sweep is rich enough to exercise the whole diagram
    assert len(result.rows) == len(ALLOWED_TRANSITIONS)
