"""Benchmark E4 — Section 3's remark: the min-id choice in R2 is
necessary (clockwise livelock vs min-id vs randomized, on even cycles)."""

from repro.experiments import e4_counterexample


def run_experiment():
    return e4_counterexample.run(
        cycle_sizes=(4, 8, 12, 16, 24),
        livelock_rounds=500,
        randomized_trials=25,
        seed=104,
    )


def test_bench_e4_counterexample(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    clockwise = [r for r in result.rows if r["variant"] == "arbitrary(clockwise)"]
    minid = [r for r in result.rows if r["variant"] == "min-id (SMM)"]
    randomized = [r for r in result.rows if r["variant"] == "randomized"]
    assert all(not r["stabilized"] and r["livelock_period"] == 2 for r in clockwise)
    assert all(r["stabilized"] and r["rounds"] <= r["bound"] for r in minid)
    assert all(r["stabilized"] for r in randomized)
