"""Benchmark E5 — Section 3's claim: the synchronized Hsu–Huang
baseline "is not as fast" as SMM (rounds head-to-head, plus native
central-daemon move counts)."""

from repro.experiments import e5_baseline


def run_experiment():
    return e5_baseline.run(
        families=("cycle", "path", "tree", "er-sparse", "udg"),
        sizes=(8, 16, 32, 64),
        trials=8,
        seed=105,
    )


def test_bench_e5_baseline_comparison(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    # the paper's qualitative claim: refined Hsu-Huang never beats SMM
    assert all(row["slowdown_id"] >= 1.0 for row in result.rows)
    # and the gap widens with n within each family
    by_family = {}
    for row in result.rows:
        by_family.setdefault(row["family"], []).append(row)
    for rows in by_family.values():
        rows.sort(key=lambda r: r["n"])
        assert rows[-1]["hh_id_rounds"] > rows[0]["hh_id_rounds"]
    # central-daemon moves stay far under the O(n^3) envelope
    assert all(row["hh_central_moves"] <= row["moves_bound"] for row in result.rows)
