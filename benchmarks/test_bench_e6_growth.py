"""Benchmark E6 — Lemmas 1, 9, 10: monotone matching growth at two
matched nodes per two active rounds."""

from repro.experiments import e6_growth


def run_experiment():
    return e6_growth.run(
        families=("cycle", "path", "complete", "tree", "er-sparse", "udg"),
        sizes=(4, 8, 16, 32),
        trials=20,
        seed=106,
    )


def test_bench_e6_matching_growth(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    assert all(row["lemma1_violations"] == 0 for row in result.rows)
    assert all(row["lemma10_violations"] == 0 for row in result.rows)
