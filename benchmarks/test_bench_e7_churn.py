"""Benchmark E7 — fault tolerance: re-stabilization cost after link
churn, vs recomputing from scratch."""

from repro.experiments import e7_churn


def run_experiment():
    return e7_churn.run(
        families=("tree", "er-sparse", "udg"),
        sizes=(16, 32, 64),
        churn_levels=(1, 2, 4, 8),
        trials=8,
        seed=107,
    )


def test_bench_e7_topology_churn(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    # aggregate claim: recovery is cheaper than fresh computation and
    # touches a minority of nodes for small churn
    rec = sum(row["recovery_rounds"] for row in result.rows)
    fresh = sum(row["fresh_rounds"] for row in result.rows)
    assert rec < fresh
    small = [row for row in result.rows if row["churn"] == 1]
    assert all(row["touched_frac"] < 0.5 for row in small)
    # containment sanity: repair activity never crosses components
    # (radius < n) and single-link faults stay local
    assert all(
        row["radius_max"] is None or row["radius_max"] < row["n"]
        for row in result.rows
    )
