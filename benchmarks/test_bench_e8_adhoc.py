"""Benchmark E8 — the beacon substrate: static beacon-time vs
synchronous rounds, and predicate availability under mobility."""

from repro.experiments import e8_adhoc


def run_static():
    return e8_adhoc.run_static(sizes=(10, 20, 40), trials=4, seed=108)


def run_mobile():
    return e8_adhoc.run_mobile(
        n=20, speeds=(0.0, 0.01, 0.03, 0.06), horizon=150.0, seed=109
    )


def test_bench_e8_static_beacon_rounds(benchmark, emit):
    result = benchmark.pedantic(run_static, rounds=1, iterations=1)
    emit(result)
    assert all(row["stabilized"] for row in result.rows)
    for row in result.rows:
        # beacon time within a small factor of the synchronous rounds
        assert row["beacon_rounds"] <= 4 * max(row["sync_rounds"], 1) + 6


def test_bench_e8_mobility_availability(benchmark, emit):
    result = benchmark.pedantic(run_mobile, rounds=1, iterations=1)
    emit(result)
    assert all(0.0 <= row["availability"] <= 1.0 for row in result.rows)
    # static deployments keep the predicate near-continuously available
    static = [row for row in result.rows if row["speed"] == 0.0]
    assert all(row["availability"] > 0.7 for row in static)
