"""Benchmark E9 — the conclusion's claim: central-daemon protocols
(Hsu–Huang, Grundy colouring, minimal dominating set) port to the
synchronous model via local-mutex refinement, with measurable cost."""

from repro.experiments import e9_transform


def run_experiment():
    return e9_transform.run(
        families=("cycle", "tree", "er-sparse"),
        sizes=(8, 16, 32),
        trials=6,
        seed=110,
        livelock_rounds=300,
    )


def test_bench_e9_daemon_refinement(benchmark, emit):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit(result)
    assert all(row["all_legitimate"] for row in result.rows)
    # all three protocols appear and all three raw-daemon livelocks are
    # documented
    assert {row["protocol"] for row in result.rows} == {
        "HsuHuang92",
        "Grundy",
        "MDS",
    }
    assert sum("stabilized=False" in note for note in result.notes) == 3
