"""Benchmark — the kernel hot-path push (packed state, batch sweep,
zero-copy handoff).

Measures and records, in ``benchmarks/results/BENCH_kernels.json``,
per-optimization before/after numbers:

* **packed dense stepping** — the from-scratch dense round on an ER
  graph, legacy layout (int64 state + buffered ``ufunc.at`` scatters)
  vs the packed kernels (int32/uint8 + ``reduceat`` segment ops).  The
  acceptance bar here is *no regression*: dense rounds were never the
  bottleneck and must not get slower.
* **frontier recovery (headline 1)** — the paper's motivating
  n=16k workload: a large stable network absorbs one flipped node and
  re-stabilizes over Θ(n) rounds with an O(1) dirty frontier.  Before
  = the gather-based vector frontier (the pre-packing structure,
  forced via ``_SCALAR_MAX = 0``); after = the scalar small-frontier
  path.  Rounds/sec both ways.
* **batch-sweep stepping (headline 2)** — an E1-style group (many
  random starts, one graph) stepped per-trial vs as one ``(k, n)``
  ``run_batch`` call with row compaction, for both protocols, plus the
  end-to-end ``run_trials`` wall time with dispatch on/off.
* **graph handoff** — pickle round-trip cost of a trial spec with a
  plain ``Graph`` vs the shared-memory CSR proxy.

The aggregate number the roadmap tracks is the geometric mean of the
two headline rounds/sec improvements; the 10x target is recorded in
the JSON and the suite asserts the measured floor (≥ 5x at full scale).
Every section also asserts bit-identical results between its before
and after paths, so CI smoke runs (``BENCH_KERNELS_QUICK=1``, small n)
double as equivalence pins.

Regenerate with
``PYTHONPATH=src python -m pytest benchmarks/test_bench_kernels.py``.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time

import numpy as np

from repro.core.faults import random_configuration
from repro.engine import make_protocol
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.matching.smm_batch import BatchSMM
from repro.matching.smm_vectorized import VectorizedSMM
from repro.mis import sis_vectorized as _sis_vec_module
from repro.mis.sis_batch import BatchSIS
from repro.mis.sis_vectorized import VectorizedSIS
from repro.parallel import SharedGraphStore, TrialSpec, run_trials
from repro.rng import ensure_rng

QUICK = bool(os.environ.get("BENCH_KERNELS_QUICK"))

#: Workload sizes; CI smoke shrinks everything and loosens the floors
#: (tiny arrays measure interpreter noise, not the kernels).
SCALE = dict(
    dense_n=512 if QUICK else 4096,
    recovery_n=2048 if QUICK else 16384,
    sweep_n=64,
    sweep_k=20 if QUICK else 100,
    aggregate_floor=1.5 if QUICK else 5.0,
    dense_floor=0.5 if QUICK else 0.8,
)


def _best_of(repeats, fn):
    """Run ``fn`` ``repeats`` times; return (last result, best seconds)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _geomean(values):
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=float)))))


# ----------------------------------------------------------------------
# legacy dense steps: the pre-packing layout, reimplemented exactly —
# wide int64 state and buffered flat ``ufunc.at`` scatters in place of
# the packed kernels' reduceat segment operations.  Masks mirror
# VectorizedSMM.step / VectorizedSIS.step term for term so the
# before/after runs can be asserted bit-identical.
# ----------------------------------------------------------------------
def _legacy_smm_step(ptr, indptr, indices, row, arange, n):
    sentinel = n
    neighbor_ptr = ptr[indices]
    is_null = ptr < 0

    proposer_entry = neighbor_ptr == row
    min_proposer = np.full(n, sentinel, dtype=np.int64)
    np.minimum.at(min_proposer, row[proposer_entry], indices[proposer_entry])

    null_entry = neighbor_ptr < 0
    min_null = np.full(n, sentinel, dtype=np.int64)
    np.minimum.at(min_null, row[null_entry], indices[null_entry])

    r1 = is_null & (min_proposer < sentinel)
    r2 = is_null & ~(min_proposer < sentinel) & (min_null < sentinel)
    target = np.where(is_null, 0, ptr)
    target_ptr = ptr[target]
    r3 = (~is_null) & (target_ptr >= 0) & (target_ptr != arange)

    new = ptr.copy()
    new[r1] = min_proposer[r1]
    new[r2] = min_null[r2]
    new[r3] = -1
    return new, r1 | r2 | r3


def _legacy_sis_step(x, indices, row, bigger_entry, n):
    in_set_entry = (x[indices] == 1) & bigger_entry
    blocked = np.zeros(n, dtype=bool)
    np.logical_or.at(blocked, row[in_set_entry], True)
    return (~blocked).astype(np.int64)


def _bench_packed_dense(report):
    n = SCALE["dense_n"]
    graph = erdos_renyi_graph(n, 8 / n, ensure_rng(5))
    indptr, indices, _ = graph.adjacency_arrays()
    indices64 = indices.astype(np.int64)
    row = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    arange = np.arange(n, dtype=np.int64)

    def legacy_smm():
        ptr = np.full(n, -1, dtype=np.int64)
        rounds = 0
        while True:
            ptr_next, moved = _legacy_smm_step(
                ptr, indptr, indices64, row, arange, n
            )
            if not moved.any():
                return ptr, rounds
            ptr, rounds = ptr_next, rounds + 1

    smm = VectorizedSMM(graph)

    def packed_smm():
        ptr = np.full(n, -1, dtype=smm._dtype)
        rounds = 0
        while True:
            ptr_next, r1, r2, r3 = smm.step(ptr)
            if not (r1.any() or r2.any() or r3.any()):
                return ptr, rounds
            ptr, rounds = ptr_next, rounds + 1

    (legacy_ptr, legacy_rounds), legacy_s = _best_of(3, legacy_smm)
    (packed_ptr, packed_rounds), packed_s = _best_of(3, packed_smm)
    assert legacy_rounds == packed_rounds
    assert np.array_equal(legacy_ptr, packed_ptr.astype(np.int64))

    bigger_entry = indices64 > row

    def legacy_sis():
        x = np.zeros(n, dtype=np.int64)
        rounds = 0
        while True:
            x_next = _legacy_sis_step(x, indices64, row, bigger_entry, n)
            if np.array_equal(x_next, x):
                return x, rounds
            x, rounds = x_next, rounds + 1

    sis = VectorizedSIS(graph)

    def packed_sis():
        x = np.zeros(n, dtype=np.uint8)
        rounds = 0
        while True:
            x_next = sis.step(x)
            if np.array_equal(x_next, x):
                return x, rounds
            x, rounds = x_next, rounds + 1

    (legacy_x, lsr), legacy_sis_s = _best_of(3, legacy_sis)
    (packed_x, psr), packed_sis_s = _best_of(3, packed_sis)
    assert lsr == psr
    assert np.array_equal(legacy_x, packed_x.astype(np.int64))

    smm_ratio = legacy_s / packed_s
    sis_ratio = legacy_sis_s / packed_sis_s
    report["packed_state_dense"] = {
        "workload": f"from-scratch convergence on ER({n}, avg deg 8)",
        "smm": {
            "rounds": legacy_rounds,
            "legacy_int64_ufunc_at_rps": round(legacy_rounds / legacy_s, 1),
            "packed_reduceat_rps": round(packed_rounds / packed_s, 1),
            "speedup": round(smm_ratio, 2),
        },
        "sis": {
            "rounds": lsr,
            "legacy_int64_ufunc_at_rps": round(lsr / legacy_sis_s, 1),
            "packed_reduceat_rps": round(psr / packed_sis_s, 1),
            "speedup": round(sis_ratio, 2),
        },
        "note": (
            "acceptance bar is no regression: dense rounds already ran "
            "close to memory bandwidth, the packed layout must not "
            "slow them down"
        ),
    }
    # no regression on from-scratch dense rounds (floor leaves room
    # for timer noise on shared hosts, not for a real slowdown)
    assert smm_ratio >= SCALE["dense_floor"], report["packed_state_dense"]
    assert sis_ratio >= SCALE["dense_floor"], report["packed_state_dense"]


def _bench_frontier_recovery(report):
    n = SCALE["recovery_n"]
    graph = path_graph(n)
    sis = VectorizedSIS(graph)
    stable = sis.run().final_x.copy()
    faulty = stable.copy()
    faulty[n // 2] ^= 1  # one flipped mid-path node

    original_scalar_max = _sis_vec_module._SCALAR_MAX
    try:
        # before: the gather-based vector frontier for every sparse
        # round — the pre-packing active-set structure (conservative:
        # it still benefits from the packed dtypes)
        _sis_vec_module._SCALAR_MAX = 0
        before, before_s = _best_of(2, lambda: sis.run(faulty.copy()))
    finally:
        _sis_vec_module._SCALAR_MAX = original_scalar_max
    after, after_s = _best_of(2, lambda: sis.run(faulty.copy()))

    assert before.rounds == after.rounds
    assert np.array_equal(before.final_x, after.final_x)

    speedup = before_s / after_s
    report["frontier_recovery"] = {
        "workload": (
            f"VectorizedSIS on path({n}), stable state + one flipped "
            "node: Theta(n) recovery rounds over an O(1) frontier"
        ),
        "rounds": after.rounds,
        "vector_frontier_rps": round(before.rounds / before_s, 1),
        "scalar_frontier_rps": round(after.rounds / after_s, 1),
        "speedup": round(speedup, 2),
        "note": (
            "the scalar path skips per-round array materialization "
            "when the frontier is a handful of nodes; dense rounds "
            "still use the flat full scan"
        ),
    }
    return speedup


def _bench_batch_sweep(report):
    n, k = SCALE["sweep_n"], SCALE["sweep_k"]
    graph = erdos_renyi_graph(n, 8 / n, ensure_rng(11))
    section = {
        "workload": (
            f"E1-style group: {k} random starts on ER({n}, avg deg 8), "
            "per-trial kernel loop vs one (k, n) run_batch call"
        ),
    }
    speedups = []
    for name, vec_cls, batch_cls, final_attr in (
        ("smm", VectorizedSMM, BatchSMM, "final_ptr"),
        ("sis", VectorizedSIS, BatchSIS, "final_x"),
    ):
        protocol = make_protocol(name)
        initials = [
            random_configuration(protocol, graph, ensure_rng(s))
            for s in range(k)
        ]
        vec = vec_cls(graph)

        def per_trial():
            finals, rounds = [], 0
            for config in initials:
                res = vec.run(config)
                finals.append(getattr(res, final_attr))
                rounds += res.rounds
            return finals, rounds

        batch = batch_cls(graph)
        encoded = batch.encode_batch(initials)

        def batched():
            return batch.run_batch(encoded)

        (finals, total_rounds), per_s = _best_of(3, per_trial)
        batch_res, batch_s = _best_of(3, batched)
        final_matrix = getattr(batch_res, final_attr)
        for i, final in enumerate(finals):
            assert np.array_equal(final, final_matrix[i])
        speedup = per_s / batch_s
        speedups.append(speedup)
        section[name] = {
            "trial_rounds": total_rounds,
            "per_trial_rps": round(total_rounds / per_s, 1),
            "batch_rps": round(total_rounds / batch_s, 1),
            "speedup": round(speedup, 2),
        }

    # end-to-end: the same sweep through run_trials with dispatch
    # on/off — diluted by per-trial decode + legitimacy checking that
    # both paths pay, recorded so the kernel-level number has context
    smm, sis = make_protocol("smm"), make_protocol("sis")
    specs = [
        TrialSpec("smm", graph, random_configuration(smm, graph, ensure_rng(s)))
        for s in range(k)
    ] + [
        TrialSpec("sis", graph, random_configuration(sis, graph, ensure_rng(s)))
        for s in range(k)
    ]
    per_rows, per_s = _best_of(1, lambda: run_trials(specs, batch_sweep=False))
    batch_rows, batch_s = _best_of(1, lambda: run_trials(specs, batch_sweep=True))
    for a, b in zip(per_rows, batch_rows):
        assert a.final == b.final and a.rounds == b.rounds
        assert a.moves_by_rule == b.moves_by_rule
    section["end_to_end_run_trials"] = {
        "per_trial_seconds": round(per_s, 3),
        "batch_seconds": round(batch_s, 3),
        "speedup": round(per_s / batch_s, 2),
        "note": (
            "includes per-row decode and legitimacy checking (paid "
            "identically on both paths), so this dilutes the kernel "
            "stepping speedup above"
        ),
    }
    report["batch_sweep"] = section
    return _geomean(speedups)


def _bench_graph_handoff(report):
    n = SCALE["dense_n"]
    graph = erdos_renyi_graph(n, 8 / n, ensure_rng(11))
    spec = TrialSpec("smm", graph)
    repeats = 20

    def round_trips(payload_spec):
        for _ in range(repeats):
            pickle.loads(pickle.dumps(payload_spec))

    plain_bytes = len(pickle.dumps(spec))
    _, plain_s = _best_of(1, lambda: round_trips(spec))
    with SharedGraphStore(shared=True) as store:
        (packed,) = store.pack_specs([spec])
        shared_bytes = len(pickle.dumps(packed))
        _, shared_s = _best_of(1, lambda: round_trips(packed))
    report["graph_handoff"] = {
        "workload": f"pickle round-trip of a TrialSpec on ER({n}, avg deg 8)",
        "plain_graph_bytes": plain_bytes,
        "shared_proxy_bytes": shared_bytes,
        "plain_ms_per_trip": round(plain_s / repeats * 1000, 3),
        "shared_ms_per_trip": round(shared_s / repeats * 1000, 3),
        "speedup": round(plain_s / shared_s, 2),
        "note": (
            "the proxy ships a segment name; workers attach read-only "
            "CSR views instead of rebuilding the adjacency from an "
            "edge-list pickle (repeat attaches are cache hits)"
        ),
    }


def test_bench_kernels(results_dir):
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "quick_mode": QUICK,
    }

    _bench_packed_dense(report)
    recovery_speedup = _bench_frontier_recovery(report)
    batch_speedup = _bench_batch_sweep(report)
    _bench_graph_handoff(report)

    aggregate = _geomean([recovery_speedup, batch_speedup])
    report["aggregate"] = {
        "definition": (
            "geomean of the two headline rounds/sec improvements: "
            "frontier_recovery.speedup and the geomean of the "
            "batch_sweep kernel stepping speedups"
        ),
        "recovery_speedup": round(recovery_speedup, 2),
        "batch_sweep_speedup": round(batch_speedup, 2),
        "aggregate_speedup": round(aggregate, 2),
        "target": 10,
        "measured_floor": SCALE["aggregate_floor"],
    }
    # ROADMAP item 3: 10x is the target we track; 5x is the measured
    # floor this suite enforces at full scale (quick mode loosens it —
    # tiny arrays measure interpreter noise, not the kernels)
    assert aggregate >= SCALE["aggregate_floor"], report["aggregate"]

    path = results_dir / "BENCH_kernels.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {path}]")
