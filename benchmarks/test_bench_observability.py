"""Benchmark — tracing + metrics overhead on the hot sweep path.

Measures and records, in ``benchmarks/results/BENCH_observability.json``,
the wall-clock cost of running the same vectorized-SMM sweep three ways:

* **off** — no tracer, no registry (the default fast path);
* **metrics** — an ambient :class:`MetricsRegistry` (parent-side counter
  recording plus worker-side telemetry collection);
* **trace+metrics** — ambient tracer and registry together (span
  begin/end around every run, per-trial fragments, Chrome export).

The pin: with both layers on, the sweep stays within 5% of the
telemetry-off wall time.  Spans are begun and ended outside the round
loop and counters are recorded once per trial in the parent, so the
observability tax is per-*trial*, not per-*round* — on kernels doing
real work it disappears into the noise floor.  Timings take the best of
``REPEATS`` interleaved passes per mode so a background hiccup cannot
charge one mode more than another.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.graphs.generators import erdos_renyi_graph
from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    use_registry,
    use_tracer,
    validate_chrome_trace,
)
from repro.parallel.trial_runner import TrialSpec, run_trials

REPEATS = 5
TRIALS = 24
GRAPH_N = 256


def _specs():
    return [
        TrialSpec(
            "smm",
            erdos_renyi_graph(GRAPH_N, 0.04, rng=seed),
            seed=seed,
            backend="vectorized",
        )
        for seed in range(TRIALS)
    ]


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_bench_observability(results_dir):
    specs = _specs()

    def run_off():
        run_trials(specs, jobs=1)

    def run_metrics():
        with use_registry(MetricsRegistry()):
            run_trials(specs, jobs=1)

    def run_traced():
        tracer = Tracer()
        with use_tracer(tracer), use_registry(MetricsRegistry()):
            run_trials(specs, jobs=1)
        validate_chrome_trace(chrome_trace(tracer.export()))

    modes = {"off": run_off, "metrics": run_metrics, "trace_metrics": run_traced}
    best = {name: float("inf") for name in modes}
    for _ in range(REPEATS):  # interleave so noise hits every mode alike
        for name, fn in modes.items():
            best[name] = min(best[name], _timed(fn))

    overhead = {
        name: best[name] / best["off"] - 1.0 for name in ("metrics", "trace_metrics")
    }
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workload": (
            f"{TRIALS} vectorized-SMM trials on ER({GRAPH_N}, 0.04), "
            f"jobs=1, best of {REPEATS} interleaved passes"
        ),
        "seconds": {name: round(value, 4) for name, value in best.items()},
        "overhead_pct": {
            name: round(100.0 * value, 2) for name, value in overhead.items()
        },
        "pin": "trace+metrics within 5% of telemetry-off",
    }

    path = results_dir / "BENCH_observability.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {path}]")

    assert overhead["trace_metrics"] <= 0.05, report["overhead_pct"]
