"""Benchmark — the parallel/active-set performance work.

Measures and records, in ``benchmarks/results/BENCH_parallel.json``:

* **process fan-out** — wall time of the E1 sweep at ``jobs=1`` vs
  ``jobs=4`` (and that the rows are bit-identical);
* **active-set stepping** — full-scan vs frontier stepping for the
  reference executor on the E1 sweep shapes and for the vectorized SIS
  kernel on its Θ(n) cascade worst case, with rounds/sec by n.

Speedup numbers are a function of the host: process fan-out cannot
beat 1.0x on a single-core container (the JSON records ``cpu_count``
so readers can tell), while the active-set numbers are algorithmic and
hold everywhere.  See docs/performance.md for how to read the file.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.experiments import e1_smm_convergence
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis_vectorized import VectorizedSIS
from repro.rng import ensure_rng

E1_SCALE = dict(
    families=("cycle", "path", "tree", "er-sparse"),
    sizes=(8, 16, 32, 64),
    trials=10,
    seed=101,
)

SMM = SynchronousMaximalMatching()


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def test_bench_parallel(results_dir):
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }

    # --- process fan-out: E1 sweep, jobs=1 vs jobs=4 -----------------
    serial, serial_s = _timed(lambda: e1_smm_convergence.run(jobs=1, **E1_SCALE))
    fanned, fanned_s = _timed(lambda: e1_smm_convergence.run(jobs=4, **E1_SCALE))
    assert serial.rows == fanned.rows  # bit-identical output
    fanout = {
        "experiment": "E1",
        "scale": {k: list(v) if isinstance(v, tuple) else v for k, v in E1_SCALE.items()},
        "serial_seconds": round(serial_s, 3),
        "jobs4_seconds": round(fanned_s, 3),
        "rows_identical": True,
        "note": (
            "fan-out speedup is bounded by cpu_count; on a single-core "
            "host the pool only adds dispatch overhead"
        ),
    }
    if (os.cpu_count() or 1) > 1:
        fanout["speedup"] = round(serial_s / fanned_s, 2)
    else:
        # a sub-1.0 "speedup" on a 1-CPU host would misread as a
        # regression; record *why* there is nothing to measure instead
        fanout["cpu_bound"] = True
    report["process_fanout"] = fanout

    # --- active-set: reference executor on E1-style workloads --------
    rng = ensure_rng(77)
    workloads = []
    for seed in range(3):
        g = erdos_renyi_graph(48, 0.08, rng=seed)
        workloads.extend((g, random_configuration(SMM, g, rng)) for _ in range(5))

    def sweep(active):
        for g, cfg in workloads:
            run_synchronous(SMM, g, cfg, active_set=active)

    _, full_s = _timed(lambda: sweep(False))
    _, act_s = _timed(lambda: sweep(True))
    report["active_set_executor"] = {
        "workload": "15 runs, SMM on ER(48, 0.08), random starts",
        "full_scan_seconds": round(full_s, 3),
        "active_seconds": round(act_s, 3),
        "speedup": round(full_s / act_s, 2),
    }

    # --- active-set: fault recovery on the vectorized SIS kernel -----
    # the self-stabilization scenario the paper motivates: a large
    # stable network suffers a local fault; recovery touches a small
    # frontier over many rounds, so frontier stepping skips almost all
    # the per-round work a full scan repeats
    recovery = []
    for n in (4096, 16384):
        g = path_graph(n)
        vec = VectorizedSIS(g)
        stable = vec.run(active_set=False).final_x
        faulty = stable.copy()
        faulty[n // 2] ^= 1  # flip one mid-path node
        full, full_s = _timed(lambda: vec.run(faulty, active_set=False))
        fast, act_s = _timed(lambda: vec.run(faulty, active_set=True))
        assert full.rounds == fast.rounds
        assert np.array_equal(full.final_x, fast.final_x)
        recovery.append(
            {
                "n": n,
                "rounds": fast.rounds,
                "full_scan_seconds": round(full_s, 3),
                "active_seconds": round(act_s, 3),
                "speedup": round(full_s / act_s, 2),
                "rounds_per_sec_active": round(fast.rounds / act_s, 1),
                "rounds_per_sec_full": round(full.rounds / full_s, 1),
            }
        )
    report["active_set_fault_recovery"] = {
        "workload": "VectorizedSIS, stable path + one flipped node",
        "series": recovery,
        "note": (
            "recovery keeps an O(1) dirty frontier over Theta(n) "
            "rounds — the active path's best case, with speedup "
            "growing in n; dense rounds fall back to the flat full "
            "scan, so from-scratch runs are never slower"
        ),
    }

    # the algorithmic speedup must be real on every host: the recovery
    # frontier is a handful of nodes while the full scan pays O(n)
    # every round
    assert recovery[-1]["speedup"] >= 1.5

    path = results_dir / "BENCH_parallel.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {path}]")
