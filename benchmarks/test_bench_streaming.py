"""Benchmark — the streaming-churn engine and incremental CSR
maintenance.

Measures and records, in ``benchmarks/results/BENCH_streaming.json``:

* **incremental CSR vs rebuild (headline)** — a long explicit-churn
  sequence on an n=16k ER graph, absorbed by
  :meth:`Graph.with_updates` row splicing vs a from-scratch
  ``Graph(nodes, edges)`` construction + CSR rebuild per event.
  Events/sec both ways; the final CSR arrays are asserted byte-identical
  (the streaming equivalence pin at benchmark scale).
* **re-stabilization SLOs vs event rate** — ``run_stream`` on an n=4k
  graph across increasing Poisson event rates, recording the
  p50/p99 re-stabilization latency (rounds), recovered fraction and
  sustained events/sec of the vectorized dirty-frontier backend — the
  table E14 reports at paper scale.
* **backend identity** — a small all-kinds stream runs on both backends
  and asserts :meth:`StreamReport.counters` equality, so the benchmark
  doubles as an equivalence pin even in quick mode.

Regenerate with
``PYTHONPATH=src python -m pytest benchmarks/test_bench_streaming.py``.
CI smoke sets ``BENCH_STREAMING_QUICK=1`` (small n, loose floors).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.graphs.graph import Graph
from repro.rng import ensure_rng
from repro.streaming import poisson_plan, run_stream

QUICK = bool(os.environ.get("BENCH_STREAMING_QUICK"))

SCALE = dict(
    csr_n=2048 if QUICK else 16384,
    csr_events=60 if QUICK else 400,
    csr_floor=2.0 if QUICK else 10.0,
    slo_n=512 if QUICK else 4096,
    slo_events=30 if QUICK else 200,
    slo_rates=(0.1, 1.0) if QUICK else (0.05, 0.25, 1.0),
)


def _best_of(repeats, fn):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _bench_incremental_csr(report):
    n, events = SCALE["csr_n"], SCALE["csr_events"]
    graph = erdos_renyi_graph(n, 8 / n, ensure_rng(7))
    graph.adjacency_arrays()  # cache populated: updates patch, not drop
    plan = poisson_plan(graph, rate=1.0, events=events, seed=3, kinds=("churn",))

    def incremental():
        g = graph
        for event in plan.events:
            g = g.with_updates(
                add_edges=event.add_edges, remove_edges=event.remove_edges
            )
            g.adjacency_arrays()
        return g

    def rebuild():
        g = graph
        for event in plan.events:
            edges = set(g.edges)
            edges.difference_update(event.remove_edges)
            edges.update(event.add_edges)
            g = Graph(g.nodes, edges)
            g.adjacency_arrays()
        return g

    inc_graph, inc_s = _best_of(2, incremental)
    reb_graph, reb_s = _best_of(2, rebuild)
    for a, b in zip(inc_graph.adjacency_arrays(), reb_graph.adjacency_arrays()):
        assert a.tobytes() == b.tobytes()  # byte-identity at bench scale

    speedup = reb_s / inc_s
    report["incremental_csr"] = {
        "workload": (
            f"{events} explicit single-edge churn events on "
            f"ER({n}, avg deg 8): with_updates CSR row splice vs "
            "from-scratch Graph construction + CSR rebuild per event"
        ),
        "rebuild_events_per_sec": round(events / reb_s, 1),
        "incremental_events_per_sec": round(events / inc_s, 1),
        "rebuild_ms_per_event": round(reb_s / events * 1000, 3),
        "incremental_us_per_event": round(inc_s / events * 1e6, 1),
        "speedup": round(speedup, 1),
        "measured_floor": SCALE["csr_floor"],
    }
    assert speedup >= SCALE["csr_floor"], report["incremental_csr"]


def _bench_slo_vs_rate(report):
    n, events = SCALE["slo_n"], SCALE["slo_events"]
    graph = erdos_renyi_graph(n, 6 / n, ensure_rng(9))
    rows = []
    for proto in ("smm", "sis"):
        for rate in SCALE["slo_rates"]:
            plan = poisson_plan(
                graph, rate=rate, events=events,
                seed=17 + int(round(1000 * rate)),
            )
            result = run_stream(proto, graph, plan, backend="vectorized")
            rows.append(
                {
                    "protocol": proto,
                    "rate": rate,
                    "events": result.events,
                    "recovered_frac": round(result.recovered_frac, 3),
                    "p50_rounds": result.p50_rounds,
                    "p99_rounds": result.p99_rounds,
                    "radius_max": result.radius_max,
                    "events_per_sec": round(result.events_per_sec, 1),
                }
            )
    report["slo_vs_event_rate"] = {
        "workload": (
            f"run_stream on ER({n}, avg deg 6), {events} Poisson "
            "churn+perturb events per cell, vectorized dirty-frontier "
            "backend"
        ),
        "rows": rows,
    }


def _bench_backend_identity(report):
    graph = cycle_graph(24)
    plan = poisson_plan(
        graph, rate=0.8, events=30, seed=5,
        kinds=("churn", "perturb", "message_dup", "crash"),
    )
    ref, ref_s = _best_of(1, lambda: run_stream("smm", graph, plan, backend="reference"))
    vec, vec_s = _best_of(1, lambda: run_stream("smm", graph, plan, backend="vectorized"))
    assert ref.counters() == vec.counters()
    report["backend_identity"] = {
        "workload": "30 all-kinds events on cycle(24), smm",
        "counters_identical": True,
        "reference_events_per_sec": round(30 / ref_s, 1),
        "vectorized_events_per_sec": round(30 / vec_s, 1),
    }


def test_bench_streaming(results_dir):
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "quick_mode": QUICK,
    }
    _bench_incremental_csr(report)
    _bench_slo_vs_rate(report)
    _bench_backend_identity(report)

    path = results_dir / "BENCH_streaming.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {path}]")
