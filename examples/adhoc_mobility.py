#!/usr/bin/env python3
"""Mobile ad hoc network maintaining a matching under host mobility.

This is the paper's motivating scenario end-to-end: hosts move on the
unit square (random waypoint), radios have a fixed range (unit-disk
links), every host broadcasts a beacon each interval with its protocol
state piggybacked, neighbour tables are maintained by beacon receipt
and timer expiry — and Algorithm SMM keeps re-establishing a maximal
matching as the topology changes underneath it.

The script sweeps host speed and reports predicate availability (the
fraction of time a valid maximal matching is in place) and the mean
recovery time per disruption.

Run:  python examples/adhoc_mobility.py
"""

from repro import SynchronousMaximalMatching
from repro.adhoc import RandomWaypoint, StaticPlacement, run_with_mobility
from repro.analysis.tables import render_table


def main() -> None:
    n = 20
    radius = 0.45
    horizon = 120.0
    rows = []

    for speed in (0.0, 0.01, 0.02, 0.04, 0.08):
        if speed == 0.0:
            mobility = StaticPlacement.uniform(n, rng=1)
        else:
            mobility = RandomWaypoint(
                n, v_min=speed / 2, v_max=speed, pause=2.0, rng=1
            )
        result = run_with_mobility(
            SynchronousMaximalMatching(),
            mobility,
            radius=radius,
            horizon=horizon,
            t_b=1.0,
            rng=2,
        )
        rows.append(
            {
                "speed": speed,
                "availability": result.availability,
                "topology_changes": result.topology_changes,
                "disruptions": len(result.episodes),
                "mean_recovery_s": result.mean_recovery_time(),
                "beacons": result.beacons,
            }
        )

    print(
        render_table(
            [
                "speed",
                "availability",
                "topology_changes",
                "disruptions",
                "mean_recovery_s",
                "beacons",
            ],
            rows,
            title=(
                f"SMM over beacons: {n} mobile hosts, radius {radius}, "
                f"{horizon:.0f}s horizon"
            ),
        )
    )
    print(
        "\nReading: faster hosts churn more links; every disruption is "
        "repaired within a few beacon intervals — the protocol "
        "'readjusts the global predicate' exactly as the paper promises."
    )


if __name__ == "__main__":
    main()
