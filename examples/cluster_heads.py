#!/usr/bin/env python3
"""Cluster-head election with Algorithm SIS.

The classical application of a maximal independent set in ad hoc
networks: the in-set nodes act as *cluster heads*.  Independence means
no two heads interfere; maximality means every host has a head within
one hop (an MIS is a dominating set) — together, a 1-hop clustering.

The script elects heads on a unit-disk deployment, prints the clusters,
then kills a head (models a drained battery: the node's state is
corrupted to 'not a head') and shows the protocol healing the
clustering locally, in a handful of rounds.

Run:  python examples/cluster_heads.py
"""

from repro import SynchronousMaximalIndependentSet, random_geometric_graph, run_synchronous
from repro.mis.verify import independent_set_of, verify_execution


def clusters_of(graph, heads):
    """Assign every host to its lowest-id adjacent head."""
    out = {h: [h] for h in sorted(heads)}
    for node in graph.nodes:
        if node in heads:
            continue
        head = min(h for h in graph.neighbors(node) if h in heads)
        out[head].append(node)
    return out


def show(graph, heads, title):
    print(title)
    for head, members in clusters_of(graph, heads).items():
        others = [m for m in members if m != head]
        print(f"  head {head:>2}: members {others}")
    print()


def main() -> None:
    graph = random_geometric_graph(25, 0.35, rng=11)
    sis = SynchronousMaximalIndependentSet()

    # 1. initial election from the clean (all-out) state
    execution = run_synchronous(sis, graph)
    heads = verify_execution(graph, execution, expect_greedy=True)
    print(
        f"network: {graph.n} hosts, {graph.m} links; elected "
        f"{len(heads)} cluster heads in {execution.rounds} rounds\n"
    )
    show(graph, heads, "initial clustering:")

    # 2. a head dies: its membership bit is wiped (transient fault)
    victim = max(heads)
    faulty = execution.final.updated({victim: 0})
    print(f"head {victim} fails (state corrupted to 0) — re-running...\n")

    # 3. self-stabilization heals the clustering
    recovery = run_synchronous(sis, graph, faulty)
    healed = verify_execution(graph, recovery, expect_greedy=True)
    moved = recovery.moved_nodes()
    print(
        f"healed in {recovery.rounds} rounds; only {len(moved)} hosts "
        f"changed state: {sorted(moved)}"
    )
    show(graph, healed, "\nhealed clustering:")
    assert healed == heads  # unique fixpoint: the same heads re-emerge
    print(
        "note: SIS's stable set is the unique greedy MIS, so after a "
        "transient fault the *same* cluster heads re-emerge — handy for "
        "stability of higher layers."
    )


if __name__ == "__main__":
    main()
