#!/usr/bin/env python3
"""One protocol, four execution models.

Self-stabilization results are always relative to a *daemon*.  This
example runs Algorithm SIS on the same graph from the same corrupted
configuration under:

* the **synchronous** daemon (the paper's beacon-round model),
* a **central** daemon (one move at a time, random scheduler),
* a randomized **distributed** daemon (random subsets move),
* the **beacon simulator** (real jittered, lossy beacons).

All four converge to the *same* maximal independent set — SIS's stable
configuration is a unique fixpoint, so the daemon affects only the
journey, never the destination.  The printed trace of the synchronous
run shows the id-cascade at work.

Run:  python examples/daemon_comparison.py
"""

import numpy as np

from repro import (
    SynchronousMaximalIndependentSet,
    run_central,
    run_distributed,
    run_synchronous,
)
from repro.adhoc import StaticPlacement, run_until_stable
from repro.analysis.tables import render_table
from repro.analysis.traces import format_execution
from repro.core.faults import random_configuration
from repro.graphs.generators import random_geometric_graph
from repro.mis.verify import independent_set_of


def main() -> None:
    radius = 0.42
    graph, positions = random_geometric_graph(
        14, radius, rng=8, return_positions=True
    )
    protocol = SynchronousMaximalIndependentSet()
    corrupted = random_configuration(protocol, graph, rng=9)
    print(f"network: {graph.n} nodes, {graph.m} links; corrupted start\n")

    rows = []
    finals = []

    sync = run_synchronous(protocol, graph, corrupted, record_history=True)
    rows.append({"daemon": "synchronous", "cost": f"{sync.rounds} rounds",
                 "moves": sync.moves})
    finals.append(independent_set_of(sync.final))

    central = run_central(protocol, graph, corrupted, strategy="random", rng=1)
    rows.append({"daemon": "central(random)", "cost": f"{central.moves} moves",
                 "moves": central.moves})
    finals.append(independent_set_of(central.final))

    dist = run_distributed(protocol, graph, corrupted, rng=2,
                           activation_probability=0.5)
    rows.append({"daemon": "distributed(p=0.5)", "cost": f"{dist.rounds} steps",
                 "moves": dist.moves})
    finals.append(independent_set_of(dist.final))

    beacons = run_until_stable(
        protocol,
        StaticPlacement(positions),
        radius=radius,
        rng=3,
        loss=0.1,
        initial_states=corrupted.as_dict(),
    )
    rows.append({
        "daemon": "beacons(10% loss)",
        "cost": f"{beacons.beacon_rounds:.1f} beacon intervals",
        "moves": beacons.steps,
    })
    finals.append(independent_set_of(beacons.final))

    print(render_table(["daemon", "cost", "moves"], rows,
                       title="same start, four daemons:"))

    assert all(f == finals[0] for f in finals)
    print(f"\nall four landed on the SAME set: {sorted(finals[0])}")
    print("(SIS's stable configuration is a unique fixpoint — the greedy "
          "MIS by descending id)\n")

    print("synchronous run, round by round:")
    print(format_execution(graph, sync))


if __name__ == "__main__":
    main()
