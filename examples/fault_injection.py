#!/usr/bin/env python3
"""Fault-injection tour: state corruption, link churn, and the
baseline comparison.

Three vignettes on one network:

1. **State corruption** — a stabilized maximal matching gets an
   increasing fraction of nodes' pointers scrambled; recovery rounds
   and the number of touched nodes grow with the blast radius
   (containment).
2. **Link churn** — links fail/appear (mobility); the matching is
   migrated across the change and repaired in a couple of rounds,
   versus recomputing from scratch.
3. **Baseline** — the same recovery scenario on the synchronized
   Hsu–Huang baseline, showing why the paper bothered designing SMM
   ("the resulting protocol is not as fast").

Run:  python examples/fault_injection.py
"""

from repro import (
    HsuHuangMatching,
    SynchronousMaximalMatching,
    erdos_renyi_graph,
    run_synchronized_central,
    run_synchronous,
)
from repro.analysis.tables import render_table
from repro.core.faults import (
    migrate_configuration,
    perturb_configuration,
    random_configuration,
)
from repro.graphs.mutations import apply_churn
from repro.matching.verify import verify_execution


def main() -> None:
    graph = erdos_renyi_graph(40, 0.1, rng=21)
    smm = SynchronousMaximalMatching()
    print(f"network: {graph.n} nodes, {graph.m} links\n")

    # establish the matching once
    base = run_synchronous(smm, graph)
    verify_execution(graph, base)
    print(f"initial stabilization: {base.rounds} rounds\n")

    # ------------------------------------------------------------------
    # 1. state corruption sweep
    # ------------------------------------------------------------------
    rows = []
    for fraction in (0.05, 0.1, 0.25, 0.5, 1.0):
        corrupted = perturb_configuration(
            smm, graph, base.final, fraction=fraction, rng=3
        )
        recovery = run_synchronous(smm, graph, corrupted)
        verify_execution(graph, recovery)
        rows.append(
            {
                "corrupted_frac": fraction,
                "recovery_rounds": recovery.rounds,
                "touched_nodes": len(recovery.moved_nodes()),
                "bound": graph.n + 1,
            }
        )
    print(render_table(
        ["corrupted_frac", "recovery_rounds", "touched_nodes", "bound"],
        rows,
        title="1) recovery from state corruption (SMM)",
    ))

    # ------------------------------------------------------------------
    # 2. link churn
    # ------------------------------------------------------------------
    rows = []
    for k in (1, 2, 4, 8):
        new_graph, _ = apply_churn(graph, k, rng=k)
        migrated = migrate_configuration(smm, graph, new_graph, base.final)
        recovery = run_synchronous(smm, new_graph, migrated)
        verify_execution(new_graph, recovery)
        fresh = run_synchronous(
            smm, new_graph, random_configuration(smm, new_graph, rng=k + 50)
        )
        rows.append(
            {
                "link_changes": k,
                "recovery_rounds": recovery.rounds,
                "fresh_rounds": fresh.rounds,
                "touched_nodes": len(recovery.moved_nodes()),
            }
        )
    print("\n" + render_table(
        ["link_changes", "recovery_rounds", "fresh_rounds", "touched_nodes"],
        rows,
        title="2) recovery after link churn vs fresh start (SMM)",
    ))

    # ------------------------------------------------------------------
    # 3. the baseline on the same corruption scenario
    # ------------------------------------------------------------------
    hh = HsuHuangMatching()
    corrupted = perturb_configuration(smm, graph, base.final, fraction=0.5, rng=9)
    smm_rec = run_synchronous(smm, graph, corrupted)
    hh_rec = run_synchronized_central(
        hh, graph, corrupted, priority="id", count_beacon_rounds=True
    )
    verify_execution(graph, smm_rec)
    verify_execution(graph, hh_rec)
    print(
        f"\n3) same 50% corruption: SMM recovers in {smm_rec.rounds} "
        f"rounds, synchronized Hsu-Huang needs {hh_rec.rounds} beacon "
        f"rounds ({hh_rec.rounds / max(smm_rec.rounds, 1):.1f}x slower)"
    )


if __name__ == "__main__":
    main()
