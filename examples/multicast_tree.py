#!/usr/bin/env python3
"""Self-stabilizing multicast backbone (BFS spanning tree).

The paper's introduction opens with exactly this use case: "a minimal
spanning tree must be maintained to minimize latency and bandwidth
requirements of multicast/broadcast messages".  This example maintains
a BFS spanning tree rooted at a gateway node with the
:class:`repro.spanning.BfsSpanningTree` protocol, prints the multicast
routes, then moves a host out of range (failing its tree link) and
shows the tree re-converging — with only the affected subtree's routes
changing.

Run:  python examples/multicast_tree.py
"""

from repro import random_geometric_graph, run_synchronous
from repro.core.faults import migrate_configuration
from repro.spanning import BfsSpanningTree, bfs_distances, is_bfs_tree, tree_edges


def routes(config, root):
    """Root-to-node multicast paths implied by the parent pointers."""
    out = {}
    for node in sorted(config):
        path = [node]
        while path[-1] != root:
            path.append(config[path[-1]][1])
        out[node] = list(reversed(path))
    return out


def show(config, root, title):
    print(title)
    for node, path in routes(config, root).items():
        if node == root:
            continue
        print(f"  {root} -> {node}: {' -> '.join(map(str, path))}")
    print()


def main() -> None:
    graph = random_geometric_graph(16, 0.45, rng=31)
    root = 0  # the gateway
    protocol = BfsSpanningTree(root)

    execution = run_synchronous(protocol, graph)
    assert is_bfs_tree(graph, root, execution.final)
    depth = max(bfs_distances(graph, root).values())
    print(
        f"network: {graph.n} hosts, {graph.m} links; BFS tree of depth "
        f"{depth} built in {execution.rounds} rounds "
        f"({graph.n - 1} tree links)\n"
    )
    show(execution.final, root, "multicast routes:")

    # a tree link fails: pick one and drop it (the host moved away)
    victim = sorted(tree_edges(execution.final))[-1]
    if not graph.with_edges(remove=[victim]).is_connected():
        victim = next(
            e
            for e in sorted(tree_edges(execution.final))
            if graph.with_edges(remove=[e]).is_connected()
        )
    print(f"tree link {victim} fails (host moved out of range)...\n")
    new_graph = graph.with_edges(remove=[victim])
    migrated = migrate_configuration(protocol, graph, new_graph, execution.final)

    recovery = run_synchronous(protocol, new_graph, migrated)
    assert is_bfs_tree(new_graph, root, recovery.final)
    moved = recovery.moved_nodes()
    print(
        f"tree repaired in {recovery.rounds} rounds; {len(moved)} hosts "
        f"re-routed: {sorted(moved)}\n"
    )
    show(recovery.final, root, "repaired multicast routes:")


if __name__ == "__main__":
    main()
