#!/usr/bin/env python3
"""Quickstart: run both published protocols on a small network.

Builds a random multi-hop topology, scrambles every node's local state
(the self-stabilization starting point: *any* configuration), runs
Algorithm SMM (maximal matching) and Algorithm SIS (maximal independent
set) under the paper's synchronous daemon, and verifies the results
against the paper's bounds.

Run:  python examples/quickstart.py
"""

from repro import (
    SynchronousMaximalIndependentSet,
    SynchronousMaximalMatching,
    erdos_renyi_graph,
    run_synchronous,
)
from repro.core.faults import random_configuration
from repro.matching.verify import matching_of, verify_execution as verify_matching
from repro.mis.verify import independent_set_of, verify_execution as verify_mis


def main() -> None:
    graph = erdos_renyi_graph(24, 0.15, rng=42)
    print(f"network: {graph.n} nodes, {graph.m} links\n")

    # ------------------------------------------------------------------
    # Algorithm SMM: maximal matching in <= n+1 rounds (Theorem 1)
    # ------------------------------------------------------------------
    smm = SynchronousMaximalMatching()
    start = random_configuration(smm, graph, rng=7)
    execution = run_synchronous(smm, graph, start)
    matching = verify_matching(graph, execution)

    print("Algorithm SMM (maximal matching)")
    print(f"  stabilized in {execution.rounds} rounds "
          f"(Theorem 1 bound: {graph.n + 1})")
    print(f"  rule firings: {execution.moves_by_rule}")
    print(f"  matching ({len(matching)} edges): {sorted(matching)}\n")

    # ------------------------------------------------------------------
    # Algorithm SIS: maximal independent set in <= n rounds (Theorem 2)
    # ------------------------------------------------------------------
    sis = SynchronousMaximalIndependentSet()
    start = random_configuration(sis, graph, rng=8)
    execution = run_synchronous(sis, graph, start)
    in_set = verify_mis(graph, execution, expect_greedy=True)

    print("Algorithm SIS (maximal independent set)")
    print(f"  stabilized in {execution.rounds} rounds "
          f"(Theorem 2 bound: {graph.n})")
    print(f"  independent set ({len(in_set)} nodes): {sorted(in_set)}")
    print("  (this is the unique fixpoint: the greedy MIS by descending id)")


if __name__ == "__main__":
    main()
