"""repro — Self-stabilizing maximal matching and maximal independent
set protocols for ad hoc networks.

A full reproduction of Goddard, Hedetniemi, Jacobs & Srimani,
*"Self-Stabilizing Protocols for Maximal Matching and Maximal
Independent Sets for Ad Hoc Networks"* (IPDPS 2003): the two published
protocols (Algorithm SMM and Algorithm SIS), the synchronous beacon
execution model they are analysed in, the Hsu–Huang central-daemon
baseline and its synchronous refinement, and an experiment harness that
re-derives every theorem, lemma, figure and claim of the paper
empirically.

Quick start::

    from repro import (
        SynchronousMaximalMatching, run_synchronous, erdos_renyi_graph,
    )
    from repro.core.faults import random_configuration

    graph = erdos_renyi_graph(32, 0.15, rng=1)
    protocol = SynchronousMaximalMatching()
    start = random_configuration(protocol, graph, rng=2)
    execution = run_synchronous(protocol, graph, start)
    assert execution.stabilized and execution.rounds <= graph.n + 1

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    Configuration,
    Execution,
    Protocol,
    Rule,
    View,
    run_central,
    run_distributed,
    run_synchronized_central,
    run_synchronous,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    star_graph,
)
from repro.matching import (
    ArbitraryChoiceSMM,
    HsuHuangMatching,
    RandomizedSMM,
    SynchronousMaximalMatching,
)
from repro.mis import (
    CentralDaemonMIS,
    LubyStyleMIS,
    SynchronousMaximalIndependentSet,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "Configuration",
    "Execution",
    "Protocol",
    "Rule",
    "View",
    "run_synchronous",
    "run_central",
    "run_distributed",
    "run_synchronized_central",
    # graphs
    "Graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "random_tree",
    "erdos_renyi_graph",
    "random_geometric_graph",
    # protocols
    "SynchronousMaximalMatching",
    "ArbitraryChoiceSMM",
    "RandomizedSMM",
    "HsuHuangMatching",
    "SynchronousMaximalIndependentSet",
    "CentralDaemonMIS",
    "LubyStyleMIS",
]
