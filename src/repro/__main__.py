"""``python -m repro`` — the experiment harness CLI."""

import sys

from repro.cli import main

sys.exit(main())
