"""Ad hoc network substrate (paper Section 2).

An event-driven simulator of the paper's system model:

* every node broadcasts a **beacon** at intervals of ``t_b`` (with
  optional jitter), carrying its protocol state piggybacked;
* a node discovering a beacon from an unknown sender adds it to its
  neighbour table; a neighbour silent for longer than the timeout is
  evicted (the paper's per-link timers ``t_ij``);
* a node takes a protocol step exactly when it has heard a beacon from
  **every** current neighbour since its last step — the paper's
  definition of a *round*;
* hosts move according to a pluggable mobility model over the unit
  square, with unit-disk radio connectivity, so links appear and
  disappear as the paper's fault model prescribes.

High-level entry points live in :mod:`repro.adhoc.runner`:
:func:`~repro.adhoc.runner.run_until_stable` for static topologies and
:func:`~repro.adhoc.runner.run_with_mobility` for the full dynamic
scenario with predicate-availability metrics.
"""

from repro.adhoc.messages import Beacon
from repro.adhoc.mobility import (
    MobilityModel,
    RandomWalk,
    RandomWaypoint,
    StaticPlacement,
)
from repro.adhoc.network import AdHocNetwork, SimNode
from repro.adhoc.runner import (
    AdHocResult,
    MobilityResult,
    run_until_stable,
    run_with_mobility,
)

__all__ = [
    "Beacon",
    "MobilityModel",
    "StaticPlacement",
    "RandomWaypoint",
    "RandomWalk",
    "AdHocNetwork",
    "SimNode",
    "AdHocResult",
    "MobilityResult",
    "run_until_stable",
    "run_with_mobility",
]
