"""Beacon messages.

"Mobile ad hoc networks use periodic beacon messages (also called keep
alive messages) to inform their neighbors of their continued presence.
[...] This beacon message provides an inexpensive way of periodically
exchanging additional information between neighboring nodes."  (paper,
Section 1)

The additional information here is the sender's protocol state (the
pointer variable for SMM, the membership bit for SIS) plus — for
randomized protocols — the sender's current round variate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import NodeId


@dataclass(frozen=True)
class Beacon:
    """One broadcast beacon.

    Attributes
    ----------
    sender:
        Transmitting node id.
    time:
        Transmission timestamp (simulation seconds).
    state:
        The sender's protocol state at transmission time.
    rand:
        The sender's current uniform variate (used only by randomized
        protocols; deterministic protocols carry and ignore it).
    seq:
        Per-sender sequence number — lets tests assert the FIFO property
        of the logical links (Section 2 assumes bounded FIFO links).
    """

    sender: NodeId
    time: float
    state: Any
    rand: float
    seq: int
