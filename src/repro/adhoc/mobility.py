"""Mobility models over the unit square.

The simulator asks a model one question: *where is node ``i`` at time
``t``?*  Models answer lazily and deterministically for monotonically
non-decreasing queries, extending each node's trajectory on demand from
the model's own child RNG stream, so a simulation is reproducible from
its seed regardless of event interleaving.

Three classical models:

* :class:`StaticPlacement` — fixed positions (the paper's analysis
  setting: topology changes are *occasional*, so between changes the
  network is static);
* :class:`RandomWaypoint` — pick a uniform destination, travel at a
  uniform speed, pause, repeat; the standard MANET evaluation model;
* :class:`RandomWalk` — pick a heading and speed, walk for an
  exponential holding time, reflect off the walls.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


class MobilityModel(ABC):
    """Answers position queries for a fixed population of nodes."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise SimulationError("mobility model needs at least one node")
        self.n = n

    @abstractmethod
    def position(self, node: NodeId, t: float) -> np.ndarray:
        """Position of ``node`` (dense index ``0..n-1``) at time ``t``.

        ``t`` must be non-negative; queries may go backwards in time
        only within the already-materialized trajectory.
        """

    def positions(self, t: float) -> np.ndarray:
        """All positions at time ``t`` as an ``(n, 2)`` array."""
        return np.stack([self.position(i, t) for i in range(self.n)])


class StaticPlacement(MobilityModel):
    """Nodes never move.

    Build from explicit coordinates or sample uniform positions with
    :meth:`uniform`.
    """

    def __init__(self, coordinates: np.ndarray) -> None:
        coords = np.asarray(coordinates, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise SimulationError("coordinates must be an (n, 2) array")
        super().__init__(coords.shape[0])
        self._coords = coords

    @classmethod
    def uniform(cls, n: int, rng: RngLike = None) -> "StaticPlacement":
        return cls(ensure_rng(rng).random((n, 2)))

    def position(self, node: NodeId, t: float) -> np.ndarray:
        return self._coords[node]

    def positions(self, t: float) -> np.ndarray:
        return self._coords


@dataclass
class _Leg:
    """One linear trajectory segment: at rest when start == end."""

    t0: float
    t1: float
    p0: np.ndarray
    p1: np.ndarray

    def at(self, t: float) -> np.ndarray:
        if self.t1 <= self.t0:
            return self.p1
        a = min(max((t - self.t0) / (self.t1 - self.t0), 0.0), 1.0)
        return self.p0 + a * (self.p1 - self.p0)


class _LegBasedModel(MobilityModel):
    """Shared lazily-extended piecewise-linear trajectory machinery."""

    def __init__(self, n: int, rng: RngLike) -> None:
        super().__init__(n)
        parent = ensure_rng(rng)
        self._rngs = parent.spawn(n)
        self._legs: List[List[_Leg]] = [[] for _ in range(n)]
        for i in range(n):
            p0 = self._rngs[i].random(2)
            self._legs[i].append(self._first_leg(i, p0))

    def _first_leg(self, node: NodeId, p0: np.ndarray) -> _Leg:
        raise NotImplementedError

    def _next_leg(self, node: NodeId, prev: _Leg) -> _Leg:
        raise NotImplementedError

    def position(self, node: NodeId, t: float) -> np.ndarray:
        if t < 0:
            raise SimulationError(f"negative time {t}")
        legs = self._legs[node]
        while legs[-1].t1 < t:
            legs.append(self._next_leg(node, legs[-1]))
        # binary search the covering leg (queries are usually near the
        # end; scan backwards a few steps first)
        for leg in reversed(legs[-4:]):
            if leg.t0 <= t <= leg.t1:
                return leg.at(t)
        lo, hi = 0, len(legs) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if legs[mid].t1 < t:
                lo = mid + 1
            else:
                hi = mid
        return legs[lo].at(t)


class RandomWaypoint(_LegBasedModel):
    """The random waypoint model.

    Each node alternates travel legs (to a uniform destination at a
    speed drawn uniformly from ``[v_min, v_max]``) and pause legs of
    ``pause`` seconds.
    """

    def __init__(
        self,
        n: int,
        *,
        v_min: float = 0.01,
        v_max: float = 0.05,
        pause: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        if not 0 < v_min <= v_max:
            raise SimulationError("need 0 < v_min <= v_max")
        if pause < 0:
            raise SimulationError("pause must be non-negative")
        self._v_min = v_min
        self._v_max = v_max
        self._pause = pause
        super().__init__(n, rng)

    def _travel_leg(self, node: NodeId, t0: float, p0: np.ndarray) -> _Leg:
        gen = self._rngs[node]
        dest = gen.random(2)
        speed = float(gen.uniform(self._v_min, self._v_max))
        distance = float(np.linalg.norm(dest - p0))
        duration = distance / speed if speed > 0 else 0.0
        return _Leg(t0, t0 + max(duration, 1e-9), p0, dest)

    def _first_leg(self, node: NodeId, p0: np.ndarray) -> _Leg:
        return self._travel_leg(node, 0.0, p0)

    def _next_leg(self, node: NodeId, prev: _Leg) -> _Leg:
        # alternate pause / travel: a pause leg has p0 == p1
        if not np.array_equal(prev.p0, prev.p1) and self._pause > 0:
            return _Leg(prev.t1, prev.t1 + self._pause, prev.p1, prev.p1)
        return self._travel_leg(node, prev.t1, prev.p1)


class RandomWalk(_LegBasedModel):
    """Random direction walk with exponential holding times and wall
    reflection (positions clamped to the unit square by re-aiming)."""

    def __init__(
        self,
        n: int,
        *,
        speed: float = 0.03,
        mean_leg_time: float = 5.0,
        rng: RngLike = None,
    ) -> None:
        if speed <= 0 or mean_leg_time <= 0:
            raise SimulationError("speed and mean_leg_time must be positive")
        self._speed = speed
        self._mean = mean_leg_time
        super().__init__(n, rng)

    def _walk_leg(self, node: NodeId, t0: float, p0: np.ndarray) -> _Leg:
        gen = self._rngs[node]
        duration = float(gen.exponential(self._mean))
        theta = float(gen.uniform(0.0, 2.0 * math.pi))
        step = self._speed * duration * np.array([math.cos(theta), math.sin(theta)])
        p1 = np.clip(p0 + step, 0.0, 1.0)
        return _Leg(t0, t0 + max(duration, 1e-9), p0, p1)

    def _first_leg(self, node: NodeId, p0: np.ndarray) -> _Leg:
        return self._walk_leg(node, 0.0, p0)

    def _next_leg(self, node: NodeId, prev: _Leg) -> _Leg:
        return self._walk_leg(node, prev.t1, prev.p1)
