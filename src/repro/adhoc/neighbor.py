"""Per-node neighbour tables with beacon timers.

Implements Section 2's neighbour-discovery protocol:

    "When node i receives the beacon signal from node j which is not in
    its neighbors list neighbors(i), it adds j to its neighbors list
    [...].  For each link (i, j), node i maintains a timer t_ij for
    each of its neighbors j.  If node i does not receive a beacon
    signal from neighbor j in time [the timeout], it assumes that link
    (i, j) is no longer available and removes j from its neighbor set.
    Upon receiving a beacon signal from neighbor j, node i resets its
    appropriate timer."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.adhoc.messages import Beacon
from repro.errors import SimulationError
from repro.types import NodeId


@dataclass
class NeighborEntry:
    """Everything a node remembers about one neighbour."""

    last_heard: float
    state: Any
    rand: float
    last_seq: int


class NeighborTable:
    """One node's view of its neighbourhood, built purely from beacons."""

    def __init__(self, owner: NodeId, timeout: float) -> None:
        if timeout <= 0:
            raise SimulationError("neighbour timeout must be positive")
        self.owner = owner
        self.timeout = timeout
        self._entries: Dict[NodeId, NeighborEntry] = {}

    # ------------------------------------------------------------------
    def record(self, beacon: Beacon) -> bool:
        """Process a received beacon; returns True when the sender is a
        *new* neighbour (link creation event).

        Enforces FIFO per sender: a beacon whose sequence number is not
        greater than the last seen one from that sender indicates a
        simulator bug and raises.
        """
        if beacon.sender == self.owner:
            raise SimulationError(f"node {self.owner} received its own beacon")
        entry = self._entries.get(beacon.sender)
        is_new = entry is None
        if entry is not None and beacon.seq <= entry.last_seq:
            raise SimulationError(
                f"non-FIFO beacon from {beacon.sender} at node {self.owner}: "
                f"seq {beacon.seq} after {entry.last_seq}"
            )
        self._entries[beacon.sender] = NeighborEntry(
            last_heard=beacon.time,
            state=beacon.state,
            rand=beacon.rand,
            last_seq=beacon.seq,
        )
        return is_new

    def purge(self, now: float) -> Tuple[NodeId, ...]:
        """Evict neighbours whose timer expired; returns the evicted ids
        (link failure events, which the caller reports to the protocol
        layer for state sanitization)."""
        stale = tuple(
            j
            for j, entry in self._entries.items()
            if now - entry.last_heard > self.timeout
        )
        for j in stale:
            del self._entries[j]
        return stale

    # ------------------------------------------------------------------
    def neighbors(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._entries))

    def states(self) -> Dict[NodeId, Any]:
        """The believed neighbour states (possibly one beacon stale)."""
        return {j: e.state for j, e in self._entries.items()}

    def rands(self) -> Dict[NodeId, float]:
        return {j: e.rand for j, e in self._entries.items()}

    def knows(self, j: NodeId) -> bool:
        return j in self._entries

    def __len__(self) -> int:
        return len(self._entries)
