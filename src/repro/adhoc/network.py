"""The event-driven ad hoc network simulator.

One :class:`AdHocNetwork` couples a guarded-rule protocol to the beacon
model of Section 2:

* every node broadcasts a beacon every ``t_b`` seconds (± jitter),
  carrying its current protocol state;
* delivery is instantaneous to every node within ``radius`` (unit-disk
  radio), except for independently dropped beacons (``loss``);
* each receiver updates its neighbour table, evicts silent neighbours
  (timers), and — once it has heard **every** current neighbour since
  its last protocol step — executes its first enabled rule against the
  beaconed states.  That per-node cadence is the paper's *round*:
  "a period of time in which each node in the system receives beacon
  messages from all its neighbors";
* evicted neighbours are reported to the protocol layer, which
  sanitizes dangling state (e.g. a matching pointer at a vanished
  link) via the protocol's ``sanitize_state`` hook.

The simulator is omniscient for *measurement only*: the harness can ask
for the true instantaneous topology and the global configuration to
evaluate legitimacy, but no node ever reads anything beyond its own
table.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.adhoc.messages import Beacon
from repro.adhoc.mobility import MobilityModel
from repro.adhoc.neighbor import NeighborTable
from repro.core.configuration import Configuration
from repro.core.protocol import Protocol, View
from repro.errors import SimulationError
from repro.graphs.generators import unit_disk_graph
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


@dataclass
class SimNode:
    """Runtime state of one mobile host."""

    node_id: NodeId
    state: Any
    table: NeighborTable
    rand: float = 0.0
    heard: set = field(default_factory=set)
    seq: int = 0
    local_round: int = 0
    steps: int = 0          # protocol rule firings
    beacons_sent: int = 0
    last_step_time: float = 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One entry of the simulation trace (for tests and debugging)."""

    time: float
    kind: str  # "step" | "link-up" | "link-down" | "beacon"
    node: NodeId
    detail: str = ""


class AdHocNetwork:
    """Event-driven beacon simulation of one protocol instance."""

    def __init__(
        self,
        protocol: Protocol,
        mobility: MobilityModel,
        *,
        radius: float,
        t_b: float = 1.0,
        jitter: float = 0.05,
        loss: float = 0.0,
        timeout_factor: float = 2.5,
        contention_window: float = 0.0,
        rng: RngLike = None,
        initial_states: Optional[Dict[NodeId, Any]] = None,
        trace: bool = False,
    ) -> None:
        if radius <= 0:
            raise SimulationError("radius must be positive")
        if t_b <= 0:
            raise SimulationError("beacon interval must be positive")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must lie in [0, 1)")
        if not 0.0 <= loss <= 1.0:
            # loss=1.0 is a legal extreme: no beacon is ever delivered,
            # so no node ever hears a neighbour and no rule ever fires —
            # the availability experiments probe exactly this boundary
            raise SimulationError("loss must lie in [0, 1]")
        if timeout_factor <= 1.0:
            raise SimulationError(
                "timeout_factor must exceed 1 beacon interval"
            )
        if not 0.0 <= contention_window < t_b:
            raise SimulationError("contention_window must lie in [0, t_b)")
        self.protocol = protocol
        self.mobility = mobility
        self.radius = radius
        self.t_b = t_b
        self.jitter = jitter
        self.loss = loss
        self.timeout = timeout_factor * t_b
        self.contention_window = contention_window
        self.rng = ensure_rng(rng)
        self.now = 0.0
        self.trace_enabled = trace
        self.trace: List[TraceEvent] = []
        self.collisions = 0
        # per-receiver timestamp of the last successful reception, for
        # the optional contention model (see _transmit)
        self._last_rx: Dict[NodeId, float] = {}
        # fail-stopped hosts: they neither beacon nor receive; their
        # neighbours notice only through beacon-timeout eviction
        self.crashed: set = set()

        n = mobility.n
        self.nodes: Dict[NodeId, SimNode] = {}
        g0 = self.true_graph()
        for i in range(n):
            state = (
                initial_states[i]
                if initial_states is not None
                else protocol.initial_state(i, g0)
            )
            self.nodes[i] = SimNode(
                node_id=i,
                state=state,
                table=NeighborTable(i, self.timeout),
                rand=float(self.rng.random()),
            )

        # event queue: (time, tiebreak, node_id); only beacon events —
        # everything else happens during beacon processing
        self._counter = itertools.count()
        self._queue: List[Tuple[float, int, NodeId]] = []
        for i in range(n):
            # desynchronized starts: beacons phase-shifted uniformly
            first = float(self.rng.uniform(0.0, t_b))
            heapq.heappush(self._queue, (first, next(self._counter), i))

    # ------------------------------------------------------------------
    # omniscient measurement helpers (never visible to nodes)
    # ------------------------------------------------------------------
    def true_graph(self, t: Optional[float] = None) -> Graph:
        """The instantaneous unit-disk topology."""
        at = self.now if t is None else t
        return unit_disk_graph(self.mobility.positions(at), self.radius)

    def configuration(self) -> Configuration:
        """The true global configuration (actual node states)."""
        return Configuration({i: nd.state for i, nd in self.nodes.items()})

    def is_legitimate(self) -> bool:
        """Does the true configuration satisfy the protocol's global
        predicate on the true topology?

        Crashed hosts are not part of the network: the predicate is
        evaluated on the alive subgraph and the alive states."""
        graph = self.true_graph()
        config = self.configuration()
        if self.crashed:
            alive = [i for i in self.nodes if i not in self.crashed]
            graph = graph.subgraph(alive)
            config = Configuration({i: self.nodes[i].state for i in alive})
        return self.protocol.is_legitimate(graph, config)

    def total_beacons(self) -> int:
        return sum(nd.beacons_sent for nd in self.nodes.values())

    def total_steps(self) -> int:
        return sum(nd.steps for nd in self.nodes.values())

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------
    def _record(self, kind: str, node: NodeId, detail: str = "") -> None:
        if self.trace_enabled:
            self.trace.append(TraceEvent(self.now, kind, node, detail))

    def _purge_and_sanitize(self, sim: SimNode) -> None:
        """Evict silent neighbours and let the protocol clean up state
        that referenced them (the link-layer notification of Section 2)."""
        evicted = sim.table.purge(self.now)
        if not evicted:
            return
        for j in evicted:
            sim.heard.discard(j)
            self._record("link-down", sim.node_id, f"lost {j}")
        sanitize = getattr(self.protocol, "sanitize_state", None)
        if sanitize is not None:
            # Sanitize against the node's *believed* neighbourhood: a
            # pointer must reference a current table entry.
            believed = _BelievedGraph(sim.node_id, sim.table.neighbors())
            sim.state = sanitize(sim.node_id, believed, sim.state)

    def _maybe_step(self, sim: SimNode) -> None:
        """Fire the node's first enabled rule once it has heard every
        current neighbour since its previous step."""
        neighbors = set(sim.table.neighbors())
        if not neighbors.issubset(sim.heard):
            return
        # A node's state may only reference believed neighbours (its
        # knowledge comes solely from beacons); sanitize before viewing.
        sanitize = getattr(self.protocol, "sanitize_state", None)
        if sanitize is not None:
            believed = _BelievedGraph(sim.node_id, sim.table.neighbors())
            sim.state = sanitize(sim.node_id, believed, sim.state)
        view = View(
            node=sim.node_id,
            state=sim.state,
            neighbor_states=sim.table.states(),
            rand=sim.rand,
            neighbor_rand=sim.table.rands(),
        )
        rule = self.protocol.enabled_rule(view)
        sim.heard.clear()
        sim.local_round += 1
        if rule is not None:
            sim.state = rule.fire(view)
            sim.steps += 1
            sim.last_step_time = self.now
            sim.rand = float(self.rng.random())
            self._record("step", sim.node_id, rule.name)

    def _transmit(self, sender: SimNode) -> None:
        """Broadcast one beacon and deliver it to everyone in range."""
        sender.seq += 1
        sender.beacons_sent += 1
        beacon = Beacon(
            sender=sender.node_id,
            time=self.now,
            state=sender.state,
            rand=sender.rand,
            seq=sender.seq,
        )
        self._record("beacon", sender.node_id)
        positions = self.mobility.positions(self.now)
        me = positions[sender.node_id]
        r2 = self.radius * self.radius
        for i, sim in self.nodes.items():
            if i == sender.node_id or i in self.crashed:
                continue
            d = positions[i] - me
            if float(d @ d) > r2:
                continue
            if self.loss > 0 and self.rng.random() < self.loss:
                continue
            # Optional contention model: the paper's link layer
            # "resolves any contention for the shared medium"; with a
            # non-zero window we weaken that assumption — a receiver
            # still busy with a reception that started less than
            # `contention_window` ago drops the overlapping beacon
            # (a later-arrival-loses approximation of interference).
            if self.contention_window > 0.0:
                last = self._last_rx.get(i)
                if last is not None and self.now - last < self.contention_window:
                    self.collisions += 1
                    self._record("collision", i, f"from {sender.node_id}")
                    continue
                self._last_rx[i] = self.now
            self._purge_and_sanitize(sim)
            is_new = sim.table.record(beacon)
            if is_new:
                self._record("link-up", i, f"heard {sender.node_id}")
            sim.heard.add(sender.node_id)
            self._maybe_step(sim)

    # ------------------------------------------------------------------
    # fail-stop faults (the paper's crash/recovery model)
    # ------------------------------------------------------------------
    def crash(self, node_id: NodeId) -> None:
        """Fail-stop ``node_id``: it stops beaconing and receiving.

        Nothing is announced — neighbours discover the crash the same
        way they discover mobility, by evicting the silent node after
        the beacon timeout and sanitizing any state that referenced it.
        """
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        if node_id in self.crashed:
            raise SimulationError(f"node {node_id!r} is already crashed")
        self.crashed.add(node_id)
        self._record("crash", node_id)

    def revive(self, node_id: NodeId) -> None:
        """Reboot a crashed node into its initial protocol state.

        The node returns with an empty neighbour table (its old beliefs
        died with it) and resumes beaconing on its existing schedule;
        self-stabilization is what re-integrates it.
        """
        if node_id not in self.crashed:
            raise SimulationError(f"node {node_id!r} is not crashed")
        self.crashed.discard(node_id)
        sim = self.nodes[node_id]
        sim.state = self.protocol.initial_state(node_id, self.true_graph())
        sim.table = NeighborTable(node_id, self.timeout)
        sim.heard.clear()
        sim.rand = float(self.rng.random())
        self._record("revive", node_id)

    def _next_beacon_delay(self) -> float:
        if self.jitter == 0:
            return self.t_b
        return self.t_b * float(
            self.rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        )

    # ------------------------------------------------------------------
    # driving the simulation
    # ------------------------------------------------------------------
    def run_until(
        self,
        t_end: float,
        *,
        callback: Optional[Callable[["AdHocNetwork"], None]] = None,
        callback_interval: Optional[float] = None,
    ) -> None:
        """Advance the simulation clock to ``t_end``.

        ``callback`` (if given) is invoked every ``callback_interval``
        simulated seconds — the measurement hook used by the runner to
        sample legitimacy without touching node-local logic.
        """
        if t_end < self.now:
            raise SimulationError("cannot run backwards in time")
        next_cb = (
            self.now + callback_interval
            if callback is not None and callback_interval
            else None
        )
        while self._queue and self._queue[0][0] <= t_end:
            t, _, node_id = heapq.heappop(self._queue)
            while next_cb is not None and next_cb <= t:
                self.now = next_cb
                callback(self)  # type: ignore[misc]
                next_cb += callback_interval  # type: ignore[operator]
            self.now = t
            if node_id in self.crashed:
                # a crashed host does nothing, but its beacon schedule
                # keeps ticking so a later revive() resumes seamlessly
                heapq.heappush(
                    self._queue,
                    (
                        t + self._next_beacon_delay(),
                        next(self._counter),
                        node_id,
                    ),
                )
                continue
            sender = self.nodes[node_id]
            self._purge_and_sanitize(sender)
            self._transmit(sender)
            # a node may also step right after transmitting (it might
            # have been waiting only on its own action cadence)
            self._maybe_step(sender)
            heapq.heappush(
                self._queue,
                (t + self._next_beacon_delay(), next(self._counter), node_id),
            )
        while next_cb is not None and next_cb <= t_end:
            self.now = next_cb
            callback(self)  # type: ignore[misc]
            next_cb += callback_interval  # type: ignore[operator]
        self.now = t_end


class _BelievedGraph:
    """Minimal graph facade over a node's believed neighbourhood, just
    rich enough for ``sanitize_state`` hooks (``has_edge`` queries)."""

    def __init__(self, owner: NodeId, neighbors: Tuple[NodeId, ...]) -> None:
        self._owner = owner
        self._neighbors = frozenset(neighbors)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        if u == self._owner:
            return v in self._neighbors
        if v == self._owner:
            return u in self._neighbors
        raise SimulationError(
            "believed graph only answers edges incident to its owner"
        )

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        if node != self._owner:
            raise SimulationError(
                "believed graph only knows its owner's neighbourhood"
            )
        return tuple(sorted(self._neighbors))
