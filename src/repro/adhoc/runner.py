"""High-level ad hoc simulation drivers and their result records.

Two scenarios cover the experiments:

* :func:`run_until_stable` — static hosts: run the beacon machinery
  until the true configuration is legitimate and every node is
  quiescent, reporting beacon-time and beacon-count costs (the ad hoc
  analogue of the synchronous executor's round counts, experiment E8);
* :func:`run_with_mobility` — moving hosts: run for a fixed horizon
  and measure *predicate availability* — the fraction of sampled
  instants at which the maintained global predicate holds on the true
  instantaneous topology — plus recovery statistics after topology
  changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.adhoc.mobility import MobilityModel, StaticPlacement
from repro.adhoc.network import AdHocNetwork
from repro.core.configuration import Configuration
from repro.core.protocol import Protocol
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


@dataclass
class AdHocResult:
    """Outcome of a static-topology beacon run."""

    stabilized: bool
    time: float                 #: simulated seconds until quiescent-legitimate
    beacon_rounds: float        #: ``time / t_b`` — beacon-interval units
    beacons: int                #: total beacons transmitted
    steps: int                  #: total protocol rule firings
    max_local_round: int        #: largest per-node round counter
    final: Configuration
    graph: Graph                #: the (static) topology

    @property
    def legitimate(self) -> bool:
        return self.stabilized


@dataclass
class RecoveryEpisode:
    """One observed illegitimacy episode under mobility."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class MobilityResult:
    """Outcome of a mobile beacon run."""

    horizon: float
    samples: int
    legitimate_samples: int
    availability: float          #: fraction of samples with predicate true
    episodes: List[RecoveryEpisode]
    topology_changes: int        #: sampled edge-set changes
    beacons: int
    steps: int
    final: Configuration

    def mean_recovery_time(self) -> Optional[float]:
        closed = [e.duration for e in self.episodes]
        if not closed:
            return None
        return sum(closed) / len(closed)


def run_until_stable(
    protocol: Protocol,
    placement: StaticPlacement,
    *,
    radius: float,
    t_b: float = 1.0,
    jitter: float = 0.05,
    loss: float = 0.0,
    timeout_factor: float = 2.5,
    contention_window: float = 0.0,
    rng: RngLike = None,
    initial_states: Optional[Dict[NodeId, Any]] = None,
    max_time: Optional[float] = None,
    quiescence: float = 3.0,
) -> AdHocResult:
    """Run a static deployment until legitimate and quiescent.

    Stability is declared when (a) the true configuration satisfies the
    protocol's global predicate on the true topology and (b) no node
    has fired a rule in the last ``quiescence`` beacon intervals.
    ``max_time`` defaults to ``(10 n + 100) · t_b`` — the synchronous
    executor's budget expressed in beacon time.
    """
    net = AdHocNetwork(
        protocol,
        placement,
        radius=radius,
        t_b=t_b,
        jitter=jitter,
        loss=loss,
        timeout_factor=timeout_factor,
        contention_window=contention_window,
        rng=rng,
        initial_states=initial_states,
    )
    graph = net.true_graph()
    horizon = max_time if max_time is not None else (10 * placement.n + 100) * t_b
    window = quiescence * t_b

    stable_at: Optional[float] = None
    last_steps = -1

    t = 0.0
    check = t_b / 2.0
    while t < horizon:
        t = min(t + check, horizon)
        net.run_until(t)
        steps = net.total_steps()
        if steps != last_steps:
            last_steps = steps
            continue
        if net.is_legitimate():
            # quiescent for long enough?
            newest = max(nd.last_step_time for nd in net.nodes.values())
            if net.now - newest >= window:
                stable_at = newest
                break

    return AdHocResult(
        stabilized=stable_at is not None,
        time=stable_at if stable_at is not None else horizon,
        beacon_rounds=(stable_at if stable_at is not None else horizon) / t_b,
        beacons=net.total_beacons(),
        steps=net.total_steps(),
        max_local_round=max(nd.local_round for nd in net.nodes.values()),
        final=net.configuration(),
        graph=graph,
    )


def run_with_mobility(
    protocol: Protocol,
    mobility: MobilityModel,
    *,
    radius: float,
    horizon: float,
    t_b: float = 1.0,
    jitter: float = 0.05,
    loss: float = 0.0,
    timeout_factor: float = 2.5,
    contention_window: float = 0.0,
    rng: RngLike = None,
    initial_states: Optional[Dict[NodeId, Any]] = None,
    sample_interval: Optional[float] = None,
) -> MobilityResult:
    """Run a mobile deployment for ``horizon`` seconds and sample the
    maintained predicate.

    Every ``sample_interval`` (default ``t_b / 2``) the harness checks
    the true topology/configuration pair.  Contiguous illegitimate
    samples form :class:`RecoveryEpisode` records; their durations are
    the system's re-stabilization times after mobility-induced faults.
    """
    if horizon <= 0:
        raise SimulationError("horizon must be positive")
    net = AdHocNetwork(
        protocol,
        mobility,
        radius=radius,
        t_b=t_b,
        jitter=jitter,
        loss=loss,
        timeout_factor=timeout_factor,
        contention_window=contention_window,
        rng=rng,
        initial_states=initial_states,
    )
    interval = sample_interval if sample_interval is not None else t_b / 2.0

    samples = 0
    good = 0
    episodes: List[RecoveryEpisode] = []
    open_start: Optional[float] = None
    changes = 0
    previous_edges: Optional[frozenset] = None

    def sample(network: AdHocNetwork) -> None:
        nonlocal samples, good, open_start, changes, previous_edges
        samples += 1
        graph = network.true_graph()
        if previous_edges is not None and graph.edges != previous_edges:
            changes += 1
        previous_edges = graph.edges
        if network.protocol.is_legitimate(graph, network.configuration()):
            good += 1
            if open_start is not None:
                episodes.append(RecoveryEpisode(open_start, network.now))
                open_start = None
        else:
            if open_start is None:
                open_start = network.now

    net.run_until(horizon, callback=sample, callback_interval=interval)
    if open_start is not None:
        episodes.append(RecoveryEpisode(open_start, horizon))

    return MobilityResult(
        horizon=horizon,
        samples=samples,
        legitimate_samples=good,
        availability=good / samples if samples else 0.0,
        episodes=episodes,
        topology_changes=changes,
        beacons=net.total_beacons(),
        steps=net.total_steps(),
        final=net.configuration(),
    )
