"""Analysis and reporting utilities.

* :mod:`~repro.analysis.stats` — summary statistics over trial
  populations (rounds, moves, recovery times);
* :mod:`~repro.analysis.tables` — plain-text table/series rendering so
  every experiment prints paper-style rows;
* :mod:`~repro.analysis.theory` — the paper's analytic bounds, kept in
  one place so experiments compare measured values against the exact
  expressions proved in the text.
"""

from repro.analysis.convergence import (
    PowerFit,
    classify_order,
    empirical_exponent,
    fit_power_law,
)
from repro.analysis.serialize import (
    batch_result_from_json,
    batch_result_to_json,
    execution_from_json,
    execution_to_json,
    result_to_csv,
    result_to_json,
)
from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_series, render_table
from repro.analysis.theory import (
    hsu_huang_move_bound,
    sis_round_bound,
    smm_round_bound,
)

__all__ = [
    "Summary",
    "summarize",
    "render_table",
    "render_series",
    "smm_round_bound",
    "sis_round_bound",
    "hsu_huang_move_bound",
    "PowerFit",
    "fit_power_law",
    "classify_order",
    "empirical_exponent",
    "execution_to_json",
    "execution_from_json",
    "batch_result_to_json",
    "batch_result_from_json",
    "result_to_json",
    "result_to_csv",
]
