"""Fault-containment analysis.

Self-stabilization guarantees *eventual* recovery; a stronger practical
property is **containment**: after a small fault, how far (in hops)
from the fault site does the repair activity spread?  This module
measures it:

* :func:`containment_radius` — the maximum graph distance from the
  fault set to any node that changed state during recovery;
* :func:`affected_by_distance` — the histogram of moved nodes per
  distance ring, showing how activity decays with distance.

Experiment E7 reports the radius for link-churn recovery; the matching
and tree protocols exhibit strong containment (most single-link faults
repair within 1–2 hops), while SIS's id-cascade can occasionally
propagate further along monotone id paths — measured, not assumed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.graphs.graph import Graph
from repro.types import NodeId


def distances_from_set(graph: Graph, sources: Iterable[NodeId]) -> Dict[NodeId, int]:
    """Multi-source BFS distances (unreached nodes are absent)."""
    frontier = [s for s in sources]
    dist: Dict[NodeId, int] = {}
    for s in frontier:
        if s not in graph:
            raise KeyError(f"unknown source node {s!r}")
        dist[s] = 0
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def containment_radius(
    graph: Graph,
    fault_sites: Iterable[NodeId],
    moved_nodes: Iterable[NodeId],
) -> Optional[int]:
    """Max distance from the fault set to any node that moved.

    Returns ``None`` when nothing moved (perfect containment), and
    treats unreachable moved nodes as infinitely far (returned as
    ``graph.n`` — larger than any finite distance, flagging a
    containment breach across components, which would indicate a bug).
    """
    sites = list(fault_sites)
    if not sites:
        raise ValueError("need at least one fault site")
    moved = list(moved_nodes)
    if not moved:
        return None
    dist = distances_from_set(graph, sites)
    worst = 0
    for node in moved:
        if node not in dist:
            return graph.n
        worst = max(worst, dist[node])
    return worst


def affected_by_distance(
    graph: Graph,
    fault_sites: Iterable[NodeId],
    moved_nodes: Iterable[NodeId],
) -> Dict[int, int]:
    """Histogram: ring distance -> number of moved nodes in that ring."""
    dist = distances_from_set(graph, list(fault_sites))
    out: Dict[int, int] = {}
    for node in moved_nodes:
        d = dist.get(node, graph.n)
        out[d] = out.get(d, 0) + 1
    return dict(sorted(out.items()))


def edge_fault_sites(edges: Iterable) -> frozenset[NodeId]:
    """The endpoints of changed links — the fault sites of a topology
    perturbation event."""
    out = set()
    for u, v in edges:
        out.add(u)
        out.add(v)
    return frozenset(out)
