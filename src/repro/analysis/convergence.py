"""Empirical growth-order estimation for round-complexity curves.

The paper's bounds are Θ-statements (n+1 rounds for SMM, O(n)/Θ(n) for
SIS on paths).  This module fits measured ``(n, rounds)`` series to the
model ``rounds ≈ c · n^α`` by least squares on the log–log points and
reports the exponent α with a goodness-of-fit — so experiments can make
statements like "the worst-case series grows linearly (α ≈ 1.0,
R² > 0.99)" from data instead of eyeballs.

Pure NumPy (a two-parameter linear regression needs no SciPy), with a
couple of convenience classifiers for the orders that actually occur
in this reproduction: constant, logarithmic, linear.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PowerFit:
    """Result of fitting ``y ≈ c · x^alpha``."""

    alpha: float      #: fitted exponent
    c: float          #: fitted constant
    r_squared: float  #: goodness of the log–log linear fit

    def predict(self, x: float) -> float:
        return self.c * x ** self.alpha

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"y ~ {self.c:.3g} * x^{self.alpha:.3f} (R^2={self.r_squared:.4f})"


def fit_power_law(points: Sequence[Tuple[float, float]]) -> PowerFit:
    """Least-squares fit of ``y = c * x^alpha`` on log–log axes.

    Requires at least three points with strictly positive coordinates
    (zero-round measurements should be filtered or shifted by the
    caller — a protocol that stabilizes instantly has no growth order).
    """
    if len(points) < 3:
        raise ValueError("need at least 3 points to fit a power law")
    xs = np.asarray([p[0] for p in points], dtype=float)
    ys = np.asarray([p[1] for p in points], dtype=float)
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("power-law fitting needs positive coordinates")
    lx, ly = np.log(xs), np.log(ys)
    alpha, logc = np.polyfit(lx, ly, 1)
    predicted = alpha * lx + logc
    ss_res = float(((ly - predicted) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerFit(alpha=float(alpha), c=float(math.exp(logc)), r_squared=r2)


def classify_order(
    points: Sequence[Tuple[float, float]],
    *,
    linear_band: Tuple[float, float] = (0.85, 1.15),
    constant_threshold: float = 0.15,
) -> str:
    """Coarse growth classification: ``constant`` / ``logarithmic`` /
    ``linear`` / ``superlinear`` / ``sublinear``.

    ``constant`` is detected by a near-zero exponent; ``logarithmic``
    by comparing the power-law fit against a log fit (whichever
    explains the data better when the exponent is small).
    """
    fit = fit_power_law(points)
    if abs(fit.alpha) <= constant_threshold:
        return "constant"
    if linear_band[0] <= fit.alpha <= linear_band[1]:
        return "linear"
    if fit.alpha > linear_band[1]:
        return "superlinear"
    # small positive exponent: could be log growth masquerading as a
    # weak power law — compare against y = a + b*log(x)
    xs = np.asarray([p[0] for p in points], dtype=float)
    ys = np.asarray([p[1] for p in points], dtype=float)
    b, a = np.polyfit(np.log(xs), ys, 1)
    predicted = a + b * np.log(xs)
    ss_res = float(((ys - predicted) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    r2_log = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    if r2_log > fit.r_squared:
        return "logarithmic"
    return "sublinear"


def empirical_exponent(
    sizes: Sequence[int], rounds: Sequence[float]
) -> PowerFit:
    """Convenience wrapper: fit rounds-vs-n directly."""
    if len(sizes) != len(rounds):
        raise ValueError("sizes and rounds must align")
    return fit_power_law(list(zip(sizes, rounds)))
