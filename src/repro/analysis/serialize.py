"""Serialization of executions and experiment results.

Experiment artefacts should outlive the Python session: this module
renders :class:`~repro.core.executor.Execution` records and
:class:`~repro.experiments.common.ExperimentResult` tables to plain
JSON / CSV so downstream tooling (plotting, regression tracking)
needs no imports from this library.

Pointer states serialize ``None`` as JSON ``null``; tuple states (MDS,
BFS tree) as JSON arrays; everything round-trips through
:func:`execution_from_dict` for the state shapes used by the built-in
protocols.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, Dict, Mapping

from repro.core.configuration import Configuration
from repro.core.executor import Execution

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle:
    # experiments.common renders tables via repro.analysis.tables, so
    # the analysis package must not import experiments at import time.
    from repro.experiments.common import ExperimentResult

#: Version of the serialization schema defined by this module — the
#: wire format of executions, trial specs and the serve request/response
#: schemas built on them.  Folded into
#: :func:`repro.parallel.spec_fingerprint`, so bumping it invalidates
#: every content-addressed artefact keyed by a fingerprint (resume
#: checkpoints, the serve result store) across incompatible releases
#: instead of silently replaying stale bytes.  History: 1 = the
#: unversioned pre-serve format; 2 = versioned fingerprints + trial-spec
#: / graph serialization (the `repro serve` wire schema).
SCHEMA_VERSION = 2


def _state_to_json(state: Any) -> Any:
    if isinstance(state, tuple):
        return list(state)
    return state


def _state_from_json(state: Any) -> Any:
    if isinstance(state, list):
        return tuple(state)
    return state


def configuration_to_dict(config: Mapping) -> Dict[str, Any]:
    """JSON-safe mapping (keys become strings, tuples become lists)."""
    return {str(node): _state_to_json(s) for node, s in sorted(config.items())}


def configuration_from_dict(data: Mapping[str, Any]) -> Configuration:
    return Configuration(
        {int(node): _state_from_json(s) for node, s in data.items()}
    )


def execution_to_dict(execution: Execution) -> Dict[str, Any]:
    """A JSON-safe dictionary with the full execution record.

    The (optional) history is included when present; monitors are not
    serializable and are simply absent.  Kernel-backend results
    (:class:`~repro.engine.result.RunResult` with ``move_log=None``)
    serialize the missing log as JSON ``null``.
    """
    return {
        "protocol": execution.protocol_name,
        "daemon": execution.daemon,
        "backend": execution.backend,
        "stabilized": execution.stabilized,
        "rounds": execution.rounds,
        "moves": execution.moves,
        "moves_by_rule": dict(execution.moves_by_rule),
        "legitimate": execution.legitimate,
        "initial": configuration_to_dict(execution.initial),
        "final": configuration_to_dict(execution.final),
        "move_log": (
            [
                {str(node): rule for node, rule in entry.items()}
                for entry in execution.move_log
            ]
            if execution.move_log is not None
            else None
        ),
        "history": (
            [configuration_to_dict(c) for c in execution.history]
            if execution.history is not None
            else None
        ),
        "telemetry": (
            execution.telemetry.to_dict()
            if execution.telemetry is not None
            else None
        ),
        # span fragments are already plain JSON-safe dicts
        "trace": execution.trace,
    }


def execution_to_json(execution: Execution, *, indent: int | None = None) -> str:
    return json.dumps(execution_to_dict(execution), indent=indent)


def execution_from_dict(data: Mapping[str, Any]) -> Execution:
    """Rebuild an :class:`Execution` from :func:`execution_to_dict`
    output (states restored per the tuple/list convention)."""
    from repro.observability import RunTelemetry

    return Execution(
        protocol_name=data["protocol"],
        daemon=data["daemon"],
        stabilized=bool(data["stabilized"]),
        rounds=int(data["rounds"]),
        moves=int(data["moves"]),
        moves_by_rule={str(k): int(v) for k, v in data["moves_by_rule"].items()},
        initial=configuration_from_dict(data["initial"]),
        final=configuration_from_dict(data["final"]),
        move_log=(
            [
                {int(node): str(rule) for node, rule in entry.items()}
                for entry in data["move_log"]
            ]
            if data.get("move_log") is not None
            else None
        ),
        history=(
            [configuration_from_dict(c) for c in data["history"]]
            if data.get("history") is not None
            else None
        ),
        legitimate=bool(data["legitimate"]),
        backend=str(data.get("backend", "reference")),
        telemetry=(
            RunTelemetry.from_dict(data["telemetry"])
            if data.get("telemetry") is not None
            else None
        ),
        trace=data.get("trace"),
    )


def execution_from_json(text: str) -> Execution:
    return execution_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# graphs and trial specs (the serve / job-journal wire format)
# ----------------------------------------------------------------------
def graph_to_dict(graph) -> Dict[str, Any]:
    """JSON-safe topology: explicit node and sorted edge lists."""
    return {
        "nodes": [int(n) for n in graph.nodes],
        "edges": sorted(
            [int(u), int(v)] if int(u) <= int(v) else [int(v), int(u)]
            for u, v in graph.edges
        ),
    }


def graph_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`~repro.graphs.graph.Graph` from
    :func:`graph_to_dict` output."""
    from repro.graphs.graph import Graph

    return Graph(
        [int(n) for n in data["nodes"]],
        [(int(u), int(v)) for u, v in data.get("edges", ())],
    )


def _option_value_to_json(name: str, value: Any) -> Any:
    """JSON encoding for one trial-spec option value.

    Scalars pass through; a :class:`~repro.resilience.FaultPlan` (any
    object with ``to_dict``/``from_dict``) is tagged so it round-trips.
    Anything else — injected callables, monitors — has no wire format
    and is rejected: such specs cannot cross the serve/journal boundary.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "to_dict") and hasattr(type(value), "from_dict"):
        module = type(value).__module__
        return {
            "__kind__": "object",
            "class": f"{module}.{type(value).__qualname__}",
            "value": value.to_dict(),
        }
    raise ValueError(
        f"trial-spec option {name!r} has no serialization "
        f"({type(value).__name__}); only JSON scalars and "
        "to_dict/from_dict objects (e.g. FaultPlan) cross the wire"
    )


def _option_value_from_json(value: Any) -> Any:
    if isinstance(value, Mapping) and value.get("__kind__") == "object":
        import importlib

        module_name, _, qualname = value["class"].rpartition(".")
        cls = getattr(importlib.import_module(module_name), qualname)
        return cls.from_dict(value["value"])
    return value


def trial_spec_to_dict(spec) -> Dict[str, Any]:
    """JSON-safe :class:`~repro.parallel.TrialSpec` (versioned with
    :data:`SCHEMA_VERSION`; round-trips through
    :func:`trial_spec_from_dict`).  Raises ``ValueError`` for specs
    carrying non-serializable option values.
    """
    return {
        "schema": SCHEMA_VERSION,
        "protocol": spec.protocol,
        "graph": graph_to_dict(spec.graph),
        "config": (
            None
            if spec.config is None
            else configuration_to_dict(dict(spec.config))
        ),
        "daemon": spec.daemon,
        "max_rounds": spec.max_rounds,
        "record_history": spec.record_history,
        "seed": None if spec.seed is None else int(spec.seed),
        "options": [
            [name, _option_value_to_json(name, value)]
            for name, value in spec.options
        ],
        "backend": spec.backend,
        "telemetry": spec.telemetry,
    }


def trial_spec_from_dict(data: Mapping[str, Any]):
    """Rebuild a :class:`~repro.parallel.TrialSpec` from
    :func:`trial_spec_to_dict` output."""
    from repro.parallel.trial_runner import TrialSpec

    config = data.get("config")
    return TrialSpec(
        protocol=str(data["protocol"]),
        graph=graph_from_dict(data["graph"]),
        config=None if config is None else configuration_from_dict(config),
        daemon=str(data.get("daemon", "synchronous")),
        max_rounds=(
            None if data.get("max_rounds") is None else int(data["max_rounds"])
        ),
        record_history=bool(data.get("record_history", False)),
        seed=None if data.get("seed") is None else int(data["seed"]),
        options=tuple(
            (str(name), _option_value_from_json(value))
            for name, value in data.get("options", ())
        ),
        backend=str(data.get("backend", "reference")),
        telemetry=bool(data.get("telemetry", False)),
    )


# ----------------------------------------------------------------------
# batch kernel results
# ----------------------------------------------------------------------
def batch_result_to_dict(result: Any) -> Dict[str, Any]:
    """JSON-safe dictionary for a batch kernel result.

    Accepts either :class:`repro.matching.smm_batch.BatchResult`
    (``final_ptr``) or :class:`repro.mis.sis_batch.BatchResult`
    (``final_x``); arrays become nested lists and ``moves_by_rule``
    serializes per rule as a per-row count list, mirroring the
    single-run telemetry counter convention.
    """
    final_key = "final_ptr" if hasattr(result, "final_ptr") else "final_x"
    return {
        "stabilized": [bool(v) for v in result.stabilized],
        "rounds": [int(v) for v in result.rounds],
        final_key: getattr(result, final_key).tolist(),
        "moves_by_rule": {
            str(rule): [int(v) for v in counts]
            for rule, counts in sorted(result.moves_by_rule.items())
        },
    }


def batch_result_to_json(result: Any, *, indent: int | None = None) -> str:
    return json.dumps(batch_result_to_dict(result), indent=indent)


def batch_result_from_dict(data: Mapping[str, Any]):
    """Rebuild a batch result from :func:`batch_result_to_dict` output.

    The final-matrix key selects the family: ``final_ptr`` rebuilds the
    SMM variant, ``final_x`` the SIS one.
    """
    import numpy as np

    moves_by_rule = {
        str(rule): np.asarray(counts, dtype=np.int64)
        for rule, counts in data["moves_by_rule"].items()
    }
    common = {
        "stabilized": np.asarray(data["stabilized"], dtype=bool),
        "rounds": np.asarray(data["rounds"], dtype=np.int64),
        "moves_by_rule": moves_by_rule,
    }
    if "final_ptr" in data:
        from repro.matching.smm_batch import BatchResult

        return BatchResult(final_ptr=np.asarray(data["final_ptr"]), **common)
    from repro.mis.sis_batch import BatchResult

    return BatchResult(final_x=np.asarray(data["final_x"]), **common)


def batch_result_from_json(text: str):
    return batch_result_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# experiment results
# ----------------------------------------------------------------------
def result_to_dict(result: "ExperimentResult") -> Dict[str, Any]:
    return {
        "experiment": result.experiment,
        "paper_artifact": result.paper_artifact,
        "columns": list(result.columns),
        "rows": [dict(row) for row in result.rows],
        "notes": list(result.notes),
    }


def result_to_json(result: "ExperimentResult", *, indent: int | None = None) -> str:
    return json.dumps(result_to_dict(result), indent=indent)


def result_to_csv(result: "ExperimentResult") -> str:
    """The result rows as CSV (columns in table order; missing cells
    empty).  Notes are not representable in CSV and are omitted."""
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=list(result.columns), extrasaction="ignore"
    )
    writer.writeheader()
    for row in result.rows:
        writer.writerow({col: row.get(col, "") for col in result.columns})
    return buf.getvalue()


def result_from_json(text: str) -> "ExperimentResult":
    from repro.experiments.common import ExperimentResult

    data = json.loads(text)
    result = ExperimentResult(
        experiment=data["experiment"],
        paper_artifact=data["paper_artifact"],
        columns=list(data["columns"]),
    )
    for row in data["rows"]:
        result.rows.append(dict(row))
    result.notes.extend(data.get("notes", []))
    return result
