"""Summary statistics for trial populations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    std: float
    p95: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} min={self.minimum:g} med={self.median:g} "
            f"mean={self.mean:.3g} p95={self.p95:g} max={self.maximum:g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a non-empty sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        p95=float(np.percentile(arr, 95)),
    )


def ratio_of_means(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """Mean(numerators) / mean(denominators) — the speedup statistic the
    baseline-comparison experiment reports (robust against per-trial
    zero denominators, unlike mean-of-ratios)."""
    num = float(np.mean(np.asarray(numerators, dtype=float)))
    den = float(np.mean(np.asarray(denominators, dtype=float)))
    if den == 0.0:
        return math.inf if num > 0 else 1.0
    return num / den


def fraction_within(values: Iterable[float], bound: float) -> float:
    """Fraction of the sample that is <= ``bound``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot evaluate an empty sample")
    return float((arr <= bound).mean())
