"""Plain-text table rendering for experiment output.

The paper has no numeric tables (its evaluation is analytic), so the
harness prints its measured reproductions in a uniform format: one
:func:`render_table` per experiment with a caption naming the paper
artefact being validated.  Keeping rendering in one module means every
benchmark writes identical-looking rows into ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def _format_cell(value, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{float_digits}f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    *,
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render rows as an aligned ASCII table.

    ``rows`` are mappings; missing keys render as ``-``.  Column order
    follows ``columns``.
    """
    cells = [
        [_format_cell(row.get(col), float_digits) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[k]) for r in cells)) if cells else len(str(col))
        for k, col in enumerate(columns)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(sep)
    for r in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(
    x_name: str,
    y_name: str,
    points: Sequence[tuple],
    *,
    title: Optional[str] = None,
    width: int = 40,
    float_digits: int = 2,
) -> str:
    """Render an (x, y) series with a proportional ASCII bar per point —
    the textual stand-in for a paper figure."""
    if not points:
        raise ValueError("cannot render an empty series")
    ys = [float(y) for _, y in points]
    peak = max(ys) if max(ys) > 0 else 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_name:>12} | {y_name}")
    for (x, y) in points:
        bar = "#" * max(1, int(round(width * float(y) / peak))) if y else ""
        lines.append(f"{str(x):>12} | {float(y):.{float_digits}f} {bar}")
    return "\n".join(lines)
