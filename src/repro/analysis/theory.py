"""The paper's analytic bounds, as executable expressions.

Each function returns the exact envelope proved (or cited) in the
paper; experiments compare measured worst cases against these, and
tests assert the measured values never exceed them.
"""

from __future__ import annotations


def smm_round_bound(n: int) -> int:
    """Theorem 1: Algorithm SMM stabilizes within ``n + 1`` synchronous
    rounds from any initial configuration (n = number of nodes)."""
    if n < 1:
        raise ValueError("n must be positive")
    return n + 1


def sis_round_bound(n: int) -> int:
    """Theorem 2: Algorithm SIS stabilizes within O(n) rounds; the
    proof sketch's peeling argument gives the concrete envelope ``n``."""
    if n < 1:
        raise ValueError("n must be positive")
    return n


def hsu_huang_move_bound(n: int) -> int:
    """Hsu & Huang (1992) bound their central-daemon maximal matching
    at O(n^3) moves; the concrete envelope used by the tests is
    ``n^3``."""
    if n < 1:
        raise ValueError("n must be positive")
    return n ** 3


def smm_matching_growth_bound(rounds: int) -> int:
    """Lemma 10 / Theorem 1 accounting: after ``2k + 1`` rounds (t >= 1
    and still active), at least ``2k`` nodes are matched.  Returns the
    guaranteed matched-node count after ``rounds`` active rounds."""
    if rounds < 1:
        return 0
    return 2 * ((rounds - 1) // 2)
