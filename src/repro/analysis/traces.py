"""Human-readable execution traces.

Debugging a guarded-rule protocol means reading what happened round by
round.  :func:`format_execution` renders a recorded execution as a
compact per-round narrative; :func:`format_round` renders one step.
Used by the examples and handy in a REPL::

    >>> ex = run_synchronous(smm, g, cfg, record_history=True)
    >>> print(format_execution(g, ex))          # doctest: +SKIP
    round 1: 0 R2->1 | 2 R2->1 | ...
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.executor import Execution
from repro.graphs.graph import Graph


def _state_repr(state) -> str:
    if state is None:
        return "⊥"
    if isinstance(state, tuple):
        return "(" + ",".join(_state_repr(s) for s in state) + ")"
    return str(state)


def format_round(
    execution: Execution, round_index: int, *, show_states: bool = True
) -> str:
    """One round's movers as ``node RULE->newstate`` entries.

    ``round_index`` is 1-based (round t produced ``history[t]``).
    """
    if not 1 <= round_index <= len(execution.move_log):
        raise IndexError(
            f"round {round_index} outside 1..{len(execution.move_log)}"
        )
    movers = execution.move_log[round_index - 1]
    if not movers:
        return f"round {round_index}: (no winners)"
    parts = []
    after = (
        execution.history[round_index]
        if show_states and execution.history is not None
        else None
    )
    for node in sorted(movers):
        entry = f"{node} {movers[node]}"
        if after is not None:
            entry += f"->{_state_repr(after[node])}"
        parts.append(entry)
    return f"round {round_index}: " + " | ".join(parts)


def format_execution(
    graph: Graph,
    execution: Execution,
    *,
    max_rounds: Optional[int] = None,
    show_states: bool = True,
) -> str:
    """The whole run as one narrative block.

    Shows the initial configuration, each round's movers (elided past
    ``max_rounds`` if set) and the verdict line.
    """
    lines: List[str] = []
    initial = ", ".join(
        f"{node}:{_state_repr(state)}"
        for node, state in execution.initial.items_sorted()
    )
    lines.append(f"initial: {initial}")
    shown = len(execution.move_log)
    if max_rounds is not None:
        shown = min(shown, max_rounds)
    for t in range(1, shown + 1):
        lines.append(format_round(execution, t, show_states=show_states))
    if shown < len(execution.move_log):
        lines.append(f"... {len(execution.move_log) - shown} more rounds ...")
    verdict = "stabilized" if execution.stabilized else "DID NOT stabilize"
    lines.append(
        f"{verdict} after {execution.rounds} rounds, {execution.moves} moves "
        f"{dict(execution.moves_by_rule)}; legitimate={execution.legitimate}"
    )
    return "\n".join(lines)


def rule_firing_summary(execution: Execution) -> str:
    """Per-rule counts plus per-round mover counts — the one-line
    rhythm of a run (e.g. the counterexample's '4,4,4,4,...')."""
    rhythm = ",".join(str(len(entry)) for entry in execution.move_log) or "-"
    return (
        f"{execution.protocol_name}/{execution.daemon}: "
        f"moves {dict(execution.moves_by_rule)}; movers per round [{rhythm}]"
    )
