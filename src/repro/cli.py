"""Command-line entry point: run the reproduction experiments.

Usage (installed as ``python -m repro``):

* ``python -m repro list`` — enumerate the experiments with the paper
  artefact each reproduces;
* ``python -m repro run E4`` — run one experiment at full (benchmark)
  scale and print its table;
* ``python -m repro run E1 E2 --quick`` — reduced-scale runs;
* ``python -m repro run all --quick`` — everything.

Exit status is non-zero if any requested experiment's core assertion
fails (the same assertions the benchmark suite makes).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    e1_smm_convergence,
    e2_sis_convergence,
    e3_transitions,
    e4_counterexample,
    e5_baseline,
    e6_growth,
    e7_churn,
    e8_adhoc,
    e9_transform,
    e10_scaling,
    e11_ablations,
    e12_id_sensitivity,
    e13_fault_recovery,
    e14_streaming,
)
from repro.experiments.common import ExperimentResult

#: experiment id -> (description, full-scale runner, quick runner)
Runner = Callable[[], List[ExperimentResult]]


def _registry(
    jobs: int = 1,
    backend: str = "reference",
    telemetry: str | None = None,
    fault_plan: str | None = None,
    trial_timeout: float | None = None,
    retries: int = 0,
    resume: str | None = None,
) -> Dict[str, Tuple[str, Runner, Runner]]:
    """Experiment registry.  ``jobs`` is forwarded to the experiments
    that support parallel trial execution (E1/E2/E4/E5/E6/E7/E12/E13);
    their output is bit-identical for every value of ``jobs``.
    ``backend`` (:mod:`repro.engine`) is forwarded to the sweeps that
    dispatch through the engine (E1/E2/E5/E6/E7/E12/E13); experiments
    that need capabilities a kernel lacks degrade to the reference
    engine.  ``telemetry`` is a JSONL path forwarded to the main sweeps
    of E1/E2/E5/E6, which append one per-trial telemetry record each.
    The resilience knobs go to the fault-campaign sweeps (E7/E13):
    ``fault_plan`` is a FaultPlan JSON path overriding E13's default
    campaign, and ``trial_timeout``/``retries``/``resume`` configure
    the resilient trial runner (per-trial wall-clock timeouts, bounded
    retry, JSONL checkpoint/resume)."""
    resilience = {
        "trial_timeout": trial_timeout,
        "retries": retries,
        "resume": resume,
    }
    return {
        "E1": (
            "Theorem 1 — SMM stabilizes in <= n+1 rounds",
            lambda: [
                e1_smm_convergence.run(
                    trials=15, seed=101, jobs=jobs, backend=backend,
                    telemetry=telemetry,
                )
            ],
            lambda: [
                e1_smm_convergence.run(
                    families=("cycle", "tree"), sizes=(4, 8, 16), trials=5, seed=101,
                    jobs=jobs, backend=backend, telemetry=telemetry,
                )
            ],
        ),
        "E2": (
            "Theorem 2 — SIS stabilizes in O(n) rounds (unique fixpoint)",
            lambda: [
                e2_sis_convergence.run(
                    trials=15, seed=102, jobs=jobs, backend=backend,
                    telemetry=telemetry,
                ),
                e2_sis_convergence.run_worst_case_series(),
            ],
            lambda: [
                e2_sis_convergence.run(
                    families=("cycle", "tree"), sizes=(4, 8, 16), trials=5, seed=102,
                    jobs=jobs, backend=backend, telemetry=telemetry,
                ),
                e2_sis_convergence.run_worst_case_series(sizes=(8, 16, 32)),
            ],
        ),
        "E3": (
            "Figs. 2-3 / Lemmas 1-7 — node-type transition diagram",
            lambda: [e3_transitions.run(trials=25, seed=103)],
            lambda: [
                e3_transitions.run(
                    families=("cycle", "tree"), sizes=(4, 8), trials=10, seed=103
                )
            ],
        ),
        "E4": (
            "Section 3 remark — arbitrary R2 choice livelocks on C_4",
            lambda: [e4_counterexample.run(seed=104, jobs=jobs)],
            lambda: [
                e4_counterexample.run(
                    cycle_sizes=(4, 8), randomized_trials=5, seed=104, jobs=jobs
                )
            ],
        ),
        "E5": (
            "Section 3 — converted Hsu-Huang 'not as fast' than SMM",
            lambda: [
                e5_baseline.run(
                    trials=8, seed=105, jobs=jobs, backend=backend,
                    telemetry=telemetry,
                )
            ],
            lambda: [
                e5_baseline.run(
                    families=("cycle", "tree"), sizes=(8, 16), trials=3, seed=105,
                    jobs=jobs, backend=backend, telemetry=telemetry,
                )
            ],
        ),
        "E6": (
            "Lemmas 1, 9, 10 — monotone matching growth",
            lambda: [
                e6_growth.run(
                    trials=20, seed=106, jobs=jobs, backend=backend,
                    telemetry=telemetry,
                )
            ],
            lambda: [
                e6_growth.run(
                    families=("cycle", "tree"), sizes=(8, 16), trials=5, seed=106,
                    jobs=jobs, backend=backend, telemetry=telemetry,
                )
            ],
        ),
        "E7": (
            "Sections 1-2 — re-stabilization after link churn",
            lambda: [
                e7_churn.run(
                    trials=8, seed=107, jobs=jobs, backend=backend,
                    **resilience,
                )
            ],
            lambda: [
                e7_churn.run(
                    families=("tree",), sizes=(16,), churn_levels=(1, 4),
                    trials=3, seed=107, jobs=jobs, backend=backend,
                    **resilience,
                )
            ],
        ),
        "E8": (
            "Section 2 — beacon rounds & mobility availability",
            lambda: [
                e8_adhoc.run_static(trials=4, seed=108),
                e8_adhoc.run_mobile(horizon=150.0, seed=109),
            ],
            lambda: [
                e8_adhoc.run_static(sizes=(10, 20), trials=2, seed=108),
                e8_adhoc.run_mobile(
                    n=12, speeds=(0.0, 0.03), horizon=60.0, seed=109
                ),
            ],
        ),
        "E9": (
            "Conclusion — central protocols port via daemon refinement",
            lambda: [e9_transform.run(trials=6, seed=110)],
            lambda: [
                e9_transform.run(
                    families=("cycle",), sizes=(8, 16), trials=2, seed=110
                )
            ],
        ),
        "E10": (
            "engineering — vectorized kernels vs reference engine",
            lambda: [e10_scaling.run(sizes=(64, 128, 256, 512, 1024), seed=111)],
            lambda: [e10_scaling.run(sizes=(64, 128), seed=111)],
        ),
        "E11": (
            "ablations — R1 acceptance choice; beacon loss/timeout",
            lambda: [
                e11_ablations.run_acceptance_choosers(seed=120),
                e11_ablations.run_beacon_parameters(seed=121),
                e11_ablations.run_contention(seed=122),
            ],
            lambda: [
                e11_ablations.run_acceptance_choosers(
                    families=("cycle",), sizes=(8, 16), trials=4, seed=120
                ),
                e11_ablations.run_beacon_parameters(
                    n=10,
                    loss_rates=(0.0, 0.2),
                    timeout_factors=(2.5,),
                    trials=2,
                    seed=121,
                ),
            ],
        ),
        "E12": (
            "extension — id-assignment sensitivity of rounds/solutions",
            lambda: [
                e12_id_sensitivity.run(
                    relabelings=20, seed=130, jobs=jobs, backend=backend
                )
            ],
            lambda: [
                e12_id_sensitivity.run(
                    families=("cycle", "tree"), sizes=(16,),
                    relabelings=6, seed=130, jobs=jobs, backend=backend,
                )
            ],
        ),
        "E13": (
            "Sections 1-2 — in-run fault campaigns (full fault model)",
            lambda: [
                e13_fault_recovery.run(
                    trials=5, seed=140, fault_plan=fault_plan,
                    jobs=jobs, backend=backend, **resilience,
                )
            ],
            lambda: [
                e13_fault_recovery.run(
                    families=("tree",), sizes=(12,), trials=2, seed=140,
                    fault_plan=fault_plan, jobs=jobs, backend=backend,
                    **resilience,
                )
            ],
        ),
        "E14": (
            "model claim 6 — SLOs under sustained streaming churn",
            lambda: [e14_streaming.run(seed=150, backend=backend)],
            lambda: [
                e14_streaming.run(
                    families=("tree",), sizes=(16,), rates=(0.1, 0.5),
                    events=20, seed=150, backend=backend,
                )
            ],
        ),
    }


def _order_key(eid: str) -> int:
    return int(eid[1:])


def cmd_list() -> int:
    registry = _registry()
    width = max(len(k) for k in registry)
    for eid in sorted(registry, key=_order_key):
        description = registry[eid][0]
        print(f"{eid:<{width}}  {description}")
    return 0


def cmd_run(
    ids: List[str],
    quick: bool,
    jobs: int = 1,
    backend: str = "reference",
    telemetry: str | None = None,
    fault_plan: str | None = None,
    trial_timeout: float | None = None,
    retries: int = 0,
    resume: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
    batch_sweep: bool = True,
    shared_graphs: str = "auto",
) -> int:
    import contextlib

    from repro.parallel import trial_runner as _trial_runner

    if shared_graphs not in ("auto", "always", "never"):
        raise SystemExit(
            f"--shared-graphs must be auto, always or never, got {shared_graphs!r}"
        )
    if telemetry is not None:
        # truncate up front: the sinks append, so one `repro run`
        # invocation produces one coherent file whatever experiments ran
        open(telemetry, "w", encoding="utf-8").close()
    registry = _registry(
        jobs, backend, telemetry, fault_plan, trial_timeout, retries, resume
    )
    if any(i.lower() == "all" for i in ids):
        ids = sorted(registry, key=_order_key)
    tracer = None
    metrics_registry = None
    with contextlib.ExitStack() as stack:
        # the experiments build their own TrialRunner instances and only
        # forward --jobs, so the sweep fast-path knobs travel as the
        # process-wide defaults (restored afterwards: tests call cmd_run
        # in-process)
        saved = (
            _trial_runner.BATCH_SWEEP_DEFAULT,
            _trial_runner.SHARED_GRAPHS_DEFAULT,
        )
        _trial_runner.BATCH_SWEEP_DEFAULT = batch_sweep
        _trial_runner.SHARED_GRAPHS_DEFAULT = shared_graphs

        def _restore(values=saved):
            _trial_runner.BATCH_SWEEP_DEFAULT = values[0]
            _trial_runner.SHARED_GRAPHS_DEFAULT = values[1]

        stack.callback(_restore)
        if trace is not None:
            from repro.observability import Tracer, use_tracer

            tracer = Tracer()
            stack.enter_context(use_tracer(tracer))
        if metrics is not None:
            from repro.observability import MetricsRegistry, use_registry

            metrics_registry = MetricsRegistry()
            stack.enter_context(use_registry(metrics_registry))
        failures = 0
        for eid in ids:
            key = eid.upper()
            if key not in registry:
                print(f"unknown experiment {eid!r}; try 'list'", file=sys.stderr)
                return 2
            description, full, fast = registry[key]
            print(f"=== {key}: {description} ===")
            started = time.perf_counter()
            span = None
            if tracer is not None:
                span = tracer.begin(f"experiment:{key}", quick=quick)
            try:
                results = (fast if quick else full)()
            except AssertionError as exc:
                failures += 1
                print(f"FAILED: {exc}", file=sys.stderr)
                continue
            finally:
                if span is not None:
                    tracer.end(span)
            elapsed = time.perf_counter() - started
            for result in results:
                print(result.table())
                print()
            print(f"({elapsed:.1f}s)\n")
    if tracer is not None:
        from repro.observability import write_chrome_trace

        write_chrome_trace(trace, tracer.export())
        print(f"wrote trace to {trace} (chrome://tracing, Perfetto)")
    if metrics_registry is not None:
        _write_metrics(metrics_registry, metrics)
    return 1 if failures else 0


def _write_metrics(registry, path: str) -> None:
    """Prometheus text exposition to ``path`` plus a JSON sibling
    (same name, ``.json`` extension)."""
    import os

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.exposition())
    sibling = os.path.splitext(path)[0] + ".json"
    with open(sibling, "w", encoding="utf-8") as handle:
        handle.write(registry.to_json())
        handle.write("\n")
    print(f"wrote metrics to {path} and {sibling}")


def cmd_dash(telemetry: str, output: str, title: str | None = None) -> int:
    from repro.observability.dash import write_report

    try:
        summary = write_report(telemetry, output, title=title)
    except (OSError, ValueError) as exc:
        print(f"dash: {exc}", file=sys.stderr)
        return 2
    print(summary)
    print(f"wrote {output}")
    return 0


def cmd_stream(
    protocol: str,
    *,
    family: str,
    n: int,
    seed: int,
    backend: str,
    rate: float,
    events: int,
    kinds: str,
    trace_file: str | None,
    settle_budget: int | None,
    soak_seconds: float | None,
    chunk_events: int,
    sample_cap: int,
    metrics: str | None,
    report: str | None,
) -> int:
    """Run a long-lived streaming-churn session and print its SLOs."""
    import contextlib
    import json

    from repro.errors import ExperimentError
    from repro.graphs.generators import family as graph_family
    from repro.rng import ensure_rng
    from repro.streaming import (
        StreamEngine,
        load_trace,
        poisson_plan,
        run_soak,
    )

    kind_list = tuple(k.strip() for k in kinds.split(",") if k.strip())
    try:
        graph = graph_family(family)(n, ensure_rng(seed))
    except Exception as exc:
        print(f"stream: cannot build graph: {exc}", file=sys.stderr)
        return 2
    metrics_registry = None
    with contextlib.ExitStack() as stack:
        if metrics is not None:
            from repro.observability import MetricsRegistry, use_registry

            metrics_registry = MetricsRegistry()
            stack.enter_context(use_registry(metrics_registry))
        try:
            if soak_seconds is not None:
                out = run_soak(
                    protocol,
                    graph,
                    backend=backend,
                    rate=rate,
                    chunk_events=chunk_events,
                    max_seconds=soak_seconds,
                    seed=seed,
                    kinds=kind_list,
                    sample_cap=sample_cap,
                    settle_budget=settle_budget,
                )
                stream_report = out["report"]
                print(
                    f"soak: {out['chunks']} chunk(s), {out['events']} events, "
                    f"{out['rounds']} rounds, peak RSS {out['max_rss_kb']} kB"
                )
            else:
                if trace_file is not None:
                    plan = load_trace(trace_file)
                else:
                    plan = poisson_plan(
                        graph,
                        rate=rate,
                        events=events,
                        seed=seed,
                        kinds=kind_list,
                    )
                engine = StreamEngine(
                    protocol,
                    graph,
                    backend=backend,
                    sample_cap=sample_cap,
                )
                stream_report = engine.run(plan, settle_budget=settle_budget)
        except ExperimentError as exc:
            print(f"stream: {exc}", file=sys.stderr)
            return 2
    summary = stream_report.to_dict()
    print(
        f"{protocol} on {family} n={graph.n} [{backend}]: "
        f"{summary['events']} events over {summary['rounds']} rounds"
    )
    print(
        f"  recovered {summary['recovered']}/{summary['events']} "
        f"({stream_report.recovered_frac:.2%}), "
        f"p50/p99 re-stabilization {summary['p50_rounds']}/"
        f"{summary['p99_rounds']} rounds, "
        f"radius max {summary['radius_max']}, "
        f"{stream_report.events_per_sec:.1f} events/s"
    )
    if report is not None:
        with open(report, "w", encoding="utf-8") as handle:
            meta = {k: v for k, v in summary.items() if k != "samples"}
            handle.write(json.dumps({"stream_meta": meta}) + "\n")
            for sample in stream_report.samples:
                handle.write(json.dumps({"stream": sample.to_dict()}) + "\n")
        print(f"wrote {len(stream_report.samples)} samples to {report}")
    if metrics_registry is not None:
        _write_metrics(metrics_registry, metrics)
    return 0


def cmd_serve(
    host: str,
    port: int,
    state_dir: str,
    *,
    workers: int,
    min_workers: int | None,
    max_workers: int | None,
    max_queue_depth: int | None,
    jobs: int,
    trial_timeout: float | None,
    retries: int,
    sync_timeout: float,
    scale_up_after: float,
    scale_down_idle: float,
    enable_chaos: bool,
) -> int:
    from repro.serve import run_server

    return run_server(
        host=host,
        port=port,
        state_dir=state_dir,
        workers=workers,
        min_workers=min_workers,
        max_workers=max_workers,
        max_queue_depth=max_queue_depth,
        runner_jobs=jobs,
        trial_timeout=trial_timeout,
        retries=retries,
        sync_timeout=sync_timeout,
        scale_up_after=scale_up_after,
        scale_down_idle=scale_down_idle,
        enable_chaos=enable_chaos,
    )


def cmd_chaos(
    state_dir: str | None,
    *,
    seed: int,
    faults: str | None,
    report: str | None,
) -> int:
    import tempfile

    from repro.serve import DEFAULT_FAULTS, ChaosHarness

    selected = (
        DEFAULT_FAULTS
        if faults is None
        else tuple(f.strip() for f in faults.split(",") if f.strip())
    )
    if state_dir is None:
        state_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        harness = ChaosHarness(
            state_dir,
            seed=seed,
            faults=selected,
            report_path=report,
            log=lambda line: print(line, flush=True),
        )
    except ValueError as exc:
        print(f"repro chaos: {exc}", file=sys.stderr)
        return 2
    result = harness.run()
    for record in result["faults"]:
        verdict = "ok" if record["ok"] else f"FAILED ({record.get('error')})"
        print(f"  {record['fault']:<16} {record['elapsed_s']:>7.1f}s  {verdict}")
    print(
        f"chaos: graceful_shutdown={result['graceful_shutdown']} "
        f"leaked_shm={result['leaked_shm']} -> "
        + ("ALL INVARIANTS HELD" if result["ok"] else "INVARIANT VIOLATED")
    )
    if report:
        print(f"wrote {report}")
    return 0 if result["ok"] else 1


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Goddard et al., IPDPS 2003.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the experiments")
    runner = sub.add_parser("run", help="run experiments and print tables")
    runner.add_argument("ids", nargs="+", help="experiment ids (E1..E14) or 'all'")
    runner.add_argument(
        "--quick", action="store_true", help="reduced-scale parameters"
    )
    runner.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trial fan-out (0 = all cores); "
        "output is bit-identical for every value",
    )
    runner.add_argument(
        "--backend",
        choices=("auto", "reference", "vectorized", "batch"),
        default="reference",
        help="execution engine backend (repro.engine); 'auto' picks the "
        "fastest applicable kernel per run, every backend produces "
        "identical tables",
    )
    runner.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry.jsonl",
        default=None,
        metavar="PATH",
        help="collect per-round run telemetry (moves by rule, Fig. 2 "
        "node-type census, phase timings) for the E1/E2/E5/E6 sweeps "
        "and append one JSON line per trial to PATH "
        "(default: telemetry.jsonl); works with every --backend",
    )
    runner.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="FaultPlan JSON file (repro.resilience) overriding E13's "
        "default in-run fault campaign; applied to every E13 cell",
    )
    runner.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-trial wall-clock timeout in seconds for the "
        "fault-campaign sweeps (E7/E13); a trial that exceeds it is "
        "retried --retries times, then recorded as failed without "
        "aborting the sweep",
    )
    runner.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry budget for timed-out or crashed trials (E7/E13)",
    )
    runner.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="JSONL checkpoint for the fault-campaign sweeps (E7/E13): "
        "completed trials are appended as they finish and skipped on "
        "the next run with the same parameters",
    )
    runner.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="record a span trace of the whole invocation (experiment > "
        "run > phase, fault-event recovery windows) and write it as "
        "Chrome trace_event JSON to PATH (default: trace.json); load "
        "it in chrome://tracing or Perfetto",
    )
    runner.add_argument(
        "--no-batch-sweep",
        action="store_true",
        help="disable batch-sweep dispatch (groups of same-graph "
        "synchronous trials executed as one batch-kernel call); "
        "results are identical either way — this is a benchmarking "
        "and debugging knob",
    )
    runner.add_argument(
        "--shared-graphs",
        choices=("auto", "always", "never"),
        default="auto",
        metavar="POLICY",
        help="graph handoff to worker processes: 'auto' (default) "
        "ships large graphs as shared-memory CSR buffers and small "
        "ones as memoized pickles, 'always' forces shared memory, "
        "'never' forces memoized pickling (for hosts without a usable "
        "/dev/shm); results are identical for every policy",
    )
    runner.add_argument(
        "--metrics",
        nargs="?",
        const="metrics.prom",
        default=None,
        metavar="PATH",
        help="collect sweep metrics (runs/rounds/moves counters, trial "
        "latency histograms, retry/timeout/fallback counters) and "
        "write Prometheus text exposition to PATH plus a JSON sibling "
        "(default: metrics.prom + metrics.json); counter values are "
        "identical for every --jobs and --backend",
    )
    dash = sub.add_parser(
        "dash", help="render a telemetry JSONL file into an HTML report"
    )
    dash.add_argument(
        "telemetry",
        help="telemetry JSONL written by 'repro run ... --telemetry'",
    )
    dash.add_argument(
        "-o",
        "--output",
        default="report.html",
        help="output HTML path (default: report.html)",
    )
    dash.add_argument("--title", default=None, help="report title")
    stream = sub.add_parser(
        "stream",
        help="stream topology churn into one long-lived run and report "
        "re-stabilization SLOs",
    )
    stream.add_argument(
        "protocol", choices=("smm", "sis"), help="protocol to keep alive"
    )
    stream.add_argument(
        "--family",
        default="udg",
        metavar="NAME",
        help="graph family (repro.graphs.generators; default: udg)",
    )
    stream.add_argument(
        "--n", type=int, default=64, metavar="N", help="graph size (default: 64)"
    )
    stream.add_argument(
        "--seed", type=int, default=0, help="graph/schedule seed (default: 0)"
    )
    stream.add_argument(
        "--backend",
        choices=("reference", "vectorized"),
        default="vectorized",
        help="stream backend; SLO counters are identical on both "
        "(default: vectorized)",
    )
    stream.add_argument(
        "--rate",
        type=float,
        default=0.2,
        metavar="R",
        help="Poisson event rate in events per round (default: 0.2)",
    )
    stream.add_argument(
        "--events",
        type=int,
        default=200,
        metavar="N",
        help="number of events to stream (default: 200)",
    )
    stream.add_argument(
        "--kinds",
        default="churn,perturb",
        metavar="K1,K2",
        help="comma-separated event kinds to draw from "
        "(churn, perturb, message_dup, crash; default: churn,perturb)",
    )
    stream.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="replay a trace schedule (FaultPlan JSON or JSONL of "
        "events) instead of generating a Poisson plan",
    )
    stream.add_argument(
        "--settle-budget",
        type=int,
        default=None,
        metavar="N",
        help="rounds allowed after the last event (default: the "
        "executor's budget for the graph)",
    )
    stream.add_argument(
        "--soak",
        type=float,
        default=None,
        metavar="SECONDS",
        help="soak mode: stream freshly generated chunks until the "
        "wall-clock limit (bounded memory; reports peak RSS)",
    )
    stream.add_argument(
        "--chunk-events",
        type=int,
        default=64,
        metavar="N",
        help="events per generated soak chunk (default: 64)",
    )
    stream.add_argument(
        "--sample-cap",
        type=int,
        default=4096,
        metavar="N",
        help="per-event samples retained in memory; aggregates stay "
        "exact beyond it (default: 4096)",
    )
    stream.add_argument(
        "--metrics",
        nargs="?",
        const="metrics.prom",
        default=None,
        metavar="PATH",
        help="write stream SLO metrics as Prometheus text + JSON sibling "
        "(default: metrics.prom + metrics.json)",
    )
    stream.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write per-event samples as JSONL for 'repro dash'",
    )
    serve = sub.add_parser(
        "serve",
        help="run the persistent sweep control plane (HTTP + /metrics)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8265,
        help="TCP port (0 = ephemeral; default: 8265)",
    )
    serve.add_argument(
        "--state-dir",
        default=".repro-serve",
        metavar="DIR",
        help="journal + result-store directory; queued and running jobs "
        "survive restarts through it (default: .repro-serve)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent jobs (worker threads; default: 2)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per job's trial fan-out (0 = all cores)",
    )
    serve.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-trial wall-clock timeout in seconds",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retry budget for timed-out or crashed trials (default: 1)",
    )
    serve.add_argument(
        "--min-workers",
        type=int,
        default=None,
        metavar="N",
        help="autoscaler floor (default: --workers, i.e. a fixed pool)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="autoscaler ceiling (default: --workers, i.e. a fixed pool)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="admission-control bound: further submissions answer "
        "429 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--sync-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="seconds a sync request blocks before degrading to the "
        "async 202 answer (default: 300)",
    )
    serve.add_argument(
        "--scale-up-after",
        type=float,
        default=1.0,
        metavar="S",
        help="sustained-backlog seconds before the supervisor adds a "
        "worker (default: 1.0)",
    )
    serve.add_argument(
        "--scale-down-idle",
        type=float,
        default=5.0,
        metavar="S",
        help="idle seconds before the supervisor retires a worker "
        "(default: 5.0)",
    )
    serve.add_argument(
        "--enable-chaos",
        action="store_true",
        help="expose POST /v1/chaos fault injection (chaos harness only)",
    )
    chaos = sub.add_parser(
        "chaos",
        help="drive a live serve daemon through scripted faults and "
        "assert it re-stabilizes",
    )
    chaos.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="state dir for the daemon under test (default: a fresh "
        "temp dir)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seeds fault offsets and sweep seeds (default: 0)",
    )
    chaos.add_argument(
        "--faults",
        default=None,
        metavar="A,B,...",
        help="comma-separated fault scripts (default: all of "
        "worker_kill,store_truncate,flood,sigkill,sync_skew)",
    )
    chaos.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON chaos report here",
    )
    reporter = sub.add_parser(
        "report", help="run everything and write a markdown report"
    )
    reporter.add_argument(
        "-o", "--output", default="REPORT.md", help="output path"
    )
    reporter.add_argument(
        "--quick", action="store_true", help="reduced-scale parameters"
    )
    args = parser.parse_args(argv)
    if getattr(args, "jobs", 0) < 0:
        parser.error(f"argument --jobs: must be >= 0, got {args.jobs}")
    if getattr(args, "retries", 0) < 0:
        parser.error(f"argument --retries: must be >= 0, got {args.retries}")
    timeout = getattr(args, "trial_timeout", None)
    if timeout is not None and timeout <= 0:
        parser.error(f"argument --trial-timeout: must be > 0, got {timeout}")
    if getattr(args, "workers", 1) < 1:
        parser.error(f"argument --workers: must be >= 1, got {args.workers}")
    if args.command == "serve":
        # pool-shape ordering must fail at argparse time, not as a
        # traceback from JobManager deep in run_server
        low = args.min_workers if args.min_workers is not None else args.workers
        high = args.max_workers if args.max_workers is not None else args.workers
        if not (1 <= low <= args.workers <= high):
            parser.error(
                "arguments --min-workers/--workers/--max-workers: need "
                f"1 <= min <= workers <= max, got {low} / {args.workers} "
                f"/ {high}"
            )
        if args.max_queue_depth is not None and args.max_queue_depth < 1:
            parser.error(
                f"argument --max-queue-depth: must be >= 1, got "
                f"{args.max_queue_depth}"
            )
        if args.sync_timeout <= 0:
            parser.error(
                f"argument --sync-timeout: must be > 0, got {args.sync_timeout}"
            )
        if args.scale_up_after <= 0 or args.scale_down_idle <= 0:
            parser.error(
                "arguments --scale-up-after/--scale-down-idle: must be > 0"
            )
    if args.command == "list":
        return cmd_list()
    if args.command == "dash":
        return cmd_dash(args.telemetry, args.output, title=args.title)
    if args.command == "stream":
        if args.rate <= 0:
            parser.error(f"argument --rate: must be > 0, got {args.rate}")
        if args.events < 0:
            parser.error(f"argument --events: must be >= 0, got {args.events}")
        return cmd_stream(
            args.protocol,
            family=args.family,
            n=args.n,
            seed=args.seed,
            backend=args.backend,
            rate=args.rate,
            events=args.events,
            kinds=args.kinds,
            trace_file=args.trace_file,
            settle_budget=args.settle_budget,
            soak_seconds=args.soak,
            chunk_events=args.chunk_events,
            sample_cap=args.sample_cap,
            metrics=args.metrics,
            report=args.report,
        )
    if args.command == "serve":
        return cmd_serve(
            args.host,
            args.port,
            args.state_dir,
            workers=args.workers,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            max_queue_depth=args.max_queue_depth,
            jobs=args.jobs,
            trial_timeout=args.trial_timeout,
            retries=args.retries,
            sync_timeout=args.sync_timeout,
            scale_up_after=args.scale_up_after,
            scale_down_idle=args.scale_down_idle,
            enable_chaos=args.enable_chaos,
        )
    if args.command == "chaos":
        return cmd_chaos(
            args.state_dir,
            seed=args.seed,
            faults=args.faults,
            report=args.report,
        )
    if args.command == "report":
        from repro.experiments.report import write_report

        text = write_report(args.output, quick=args.quick)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
        return 0 if "✗ FAILED" not in text else 1
    return cmd_run(
        args.ids,
        args.quick,
        jobs=args.jobs,
        backend=args.backend,
        telemetry=args.telemetry,
        fault_plan=args.fault_plan,
        trial_timeout=args.trial_timeout,
        retries=args.retries,
        resume=args.resume,
        trace=args.trace,
        metrics=args.metrics,
        batch_sweep=not args.no_batch_sweep,
        shared_graphs=args.shared_graphs,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
