"""Self-stabilizing graph colouring (extension).

Reference [7] of the paper — Hedetniemi, Jacobs & Srimani, "Fault
tolerant distributed coloring algorithms that stabilize in linear
time" — is the same research programme's colouring protocol and the
paradigm the paper says it follows.  We include the Grundy-colouring
protocol as a third client of the engine: it demonstrates the
conclusion's claim that centrally-solvable predicates port to the
synchronous model via daemon refinement (experiment E9).
"""

from repro.coloring.grundy import GrundyColoring, is_grundy_coloring

__all__ = ["GrundyColoring", "is_grundy_coloring"]
