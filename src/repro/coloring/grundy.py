"""Self-stabilizing Grundy colouring (central-daemon protocol).

A *Grundy* (greedy) colouring assigns every node the minimum
non-negative integer absent among its neighbours' colours — a proper
colouring with at most Δ+1 colours that is also a fixpoint of greedy
recolouring.  The single rule is:

``R``  if ``c(i) ≠ mex{ c(j) : j ∈ N(i) }`` then ``c(i) := mex{...}``

where ``mex`` is the minimum excludant.  Under the **central daemon**
this stabilizes (each move is forced and the system follows the greedy
order); under the raw **synchronous daemon** it livelocks on any edge
whose endpoints share a colour (both recompute the same mex and stay
symmetric — e.g. two adjacent nodes at 0 flip together to 1 and back).
Experiment E9 runs it through the local-mutex refinement
(:func:`repro.core.transform.run_synchronized_central`), obtaining a
correct synchronous protocol at the daemon-refinement round cost the
paper's conclusion alludes to.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError
from repro.graphs.graph import Graph
from repro.types import NodeId


def _mex(values) -> int:
    """Minimum non-negative integer not in ``values``."""
    used = set(values)
    out = 0
    while out in used:
        out += 1
    return out


def is_grundy_coloring(graph: Graph, colors: Mapping[NodeId, int]) -> bool:
    """True iff every node's colour is the mex of its neighbours'.

    Implies properness: a node's own colour is excluded from the mex
    set, so no neighbour shares it.
    """
    return all(
        colors[i] == _mex(colors[j] for j in graph.neighbors(i))
        for i in graph.nodes
    )


class GrundyColoring(Protocol[int]):
    """The one-rule Grundy recolouring protocol.

    Colours range over ``0..Δ`` (the mex of at most Δ values is at most
    Δ), which bounds the local state space.
    """

    name = "Grundy"

    def __init__(self) -> None:
        self._rules = (
            Rule(
                name="R",
                guard=self._guard,
                action=self._action,
                description="recolour to the neighbourhood mex",
            ),
        )

    @staticmethod
    def _target(view: View) -> int:
        return _mex(view.neighbor_states.values())

    def _guard(self, view: View) -> bool:
        return view.state != self._target(view)

    def _action(self, view: View) -> int:
        return self._target(view)

    def rules(self) -> Sequence[Rule[int]]:
        return self._rules

    def initial_state(self, node: NodeId, graph: Graph) -> int:
        return 0

    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(graph.degree(node) + 1))

    def validate_state(self, node: NodeId, graph: Graph, state: int) -> None:
        if not isinstance(state, (int, np.integer)) or state < 0:
            raise InvalidConfigurationError(
                f"node {node}: colour must be a non-negative int, got {state!r}"
            )
        if state > graph.degree(node) + 1:
            # strictly, colours above deg+1 can appear in corrupted
            # states; we admit deg(i)+1 as the loosest sane bound so
            # random perturbation stays within the declared space.
            raise InvalidConfigurationError(
                f"node {node}: colour {state} exceeds degree bound"
            )

    def is_legitimate(self, graph: Graph, config: Mapping[NodeId, int]) -> bool:
        return is_grundy_coloring(graph, config)
