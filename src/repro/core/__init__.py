"""Core self-stabilization engine.

This subpackage is protocol-agnostic machinery: the guarded-rule
:class:`~repro.core.protocol.Protocol` abstraction, immutable
:class:`~repro.core.configuration.Configuration` snapshots, the
execution daemons (synchronous, central, distributed — see
:mod:`~repro.core.daemons`), the run-to-stabilization
:mod:`~repro.core.executor`, invariant monitors, transient-fault
injection and the central-daemon-to-synchronous refinement transformer
(:mod:`~repro.core.transform`).

The synchronous daemon is the paper's execution model: in each round
every node receives beacon messages (with piggybacked state) from all
neighbours and every *privileged* (guard-enabled) node moves
simultaneously, all guards being evaluated against the previous round's
states.
"""

from repro.core.configuration import Configuration
from repro.core.daemons import (
    AdversarialStrategy,
    CentralStrategy,
    MinIdStrategy,
    RandomStrategy,
    RoundRobinStrategy,
)
from repro.core.executor import (
    Execution,
    enabled_nodes,
    run_central,
    run_distributed,
    run_synchronous,
)
from repro.core.protocol import Protocol, Rule, View
from repro.core.faults import perturb_configuration, migrate_configuration
from repro.core.invariants import (
    ClosureMonitor,
    HistoryMonitor,
    Monitor,
    PredicateMonitor,
)
from repro.core.transform import run_synchronized_central

__all__ = [
    "Configuration",
    "Protocol",
    "Rule",
    "View",
    "Execution",
    "enabled_nodes",
    "run_synchronous",
    "run_central",
    "run_distributed",
    "run_synchronized_central",
    "CentralStrategy",
    "RandomStrategy",
    "MinIdStrategy",
    "RoundRobinStrategy",
    "AdversarialStrategy",
    "Monitor",
    "PredicateMonitor",
    "ClosureMonitor",
    "HistoryMonitor",
    "perturb_configuration",
    "migrate_configuration",
]
