"""Immutable global configurations.

The paper defines the global system state ``S_t`` as "the union of the
local states (values of the pointer variables) of each node i at time
t".  :class:`Configuration` is exactly that: a frozen node-id -> state
mapping.  Immutability lets the executor keep histories, move logs and
round snapshots by reference, and lets hypothesis-based tests treat
configurations as values.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.types import NodeId, S


class Configuration(Mapping[NodeId, object]):
    """A frozen mapping from node id to local state.

    Supports the full read-only :class:`~collections.abc.Mapping`
    protocol plus :meth:`updated` for deriving successor configurations.
    Equality and hashing are structural (hashing requires hashable
    states, which all protocols in this library use: ints, ``None``,
    small frozen tuples).
    """

    __slots__ = ("_states", "_hash")

    def __init__(self, states: Mapping[NodeId, object]):
        self._states: Dict[NodeId, object] = dict(states)
        self._hash: int | None = None

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, node: NodeId) -> object:
        return self._states[node]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, node: object) -> bool:
        return node in self._states

    # -- value semantics --------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._states == other._states
        if isinstance(other, Mapping):
            return self._states == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._states.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}: {v!r}" for k, v in sorted(self._states.items()))
        return f"Configuration({{{inner}}})"

    # -- derivation ---------------------------------------------------------
    def updated(self, changes: Mapping[NodeId, object]) -> "Configuration":
        """A new configuration with ``changes`` applied.

        Nodes absent from ``changes`` keep their state.  Unknown node
        ids are rejected — a configuration's domain is fixed by the
        (fixed) node set of the network.
        """
        unknown = set(changes) - set(self._states)
        if unknown:
            raise KeyError(f"unknown nodes in update: {sorted(unknown)}")
        if not changes:
            return self
        merged = dict(self._states)
        merged.update(changes)
        return Configuration(merged)

    def as_dict(self) -> Dict[NodeId, object]:
        """A mutable copy of the underlying mapping."""
        return dict(self._states)

    def items_sorted(self) -> Tuple[Tuple[NodeId, object], ...]:
        """``(node, state)`` pairs in ascending node order."""
        return tuple(sorted(self._states.items()))

    def where(self, pred) -> frozenset[NodeId]:
        """Nodes whose state satisfies ``pred(state)``."""
        return frozenset(n for n, s in self._states.items() if pred(s))

    def diff(self, other: "Configuration") -> frozenset[NodeId]:
        """Nodes whose state differs between ``self`` and ``other``."""
        if set(self._states) != set(other._states):
            raise KeyError("configurations have different domains")
        return frozenset(
            n for n, s in self._states.items() if other._states[n] != s
        )
