"""Daemon (scheduler) strategies.

Self-stabilization results are always relative to a *daemon* — the
abstract adversary that decides which privileged nodes move:

* **synchronous daemon** — every privileged node moves, every round,
  with guards evaluated on the previous round's states.  This is the
  paper's model (beacon rounds) and is implemented directly by
  :func:`repro.core.executor.run_synchronous`.
* **central daemon** — exactly one privileged node moves per step.  The
  classical model of Dijkstra and of the Hsu–Huang maximal matching
  baseline.  The choice of *which* node is the daemon's; this module
  provides the standard strategies (random, min-id, round-robin) plus
  an adversarial hook for worst-case probing.
* **distributed daemon** — an arbitrary non-empty subset of privileged
  nodes moves per step; implemented by
  :func:`repro.core.executor.run_distributed` with a random subset
  model.

Strategies are deliberately tiny objects: the executor hands them the
sorted tuple of currently privileged nodes and full context, they
return one node id.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Mapping, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.types import NodeId


class CentralStrategy(ABC):
    """Chooses the single mover among the privileged nodes."""

    @abstractmethod
    def choose(
        self,
        enabled: Tuple[NodeId, ...],
        config: Configuration,
        graph: Graph,
        step: int,
        rng: np.random.Generator,
    ) -> NodeId:
        """Return one member of ``enabled`` (which is non-empty, sorted)."""

    def reset(self) -> None:
        """Forget any internal scheduling state (between runs)."""


class RandomStrategy(CentralStrategy):
    """Uniformly random privileged node — the 'fair coin' daemon.

    The standard daemon for *measuring* expected move counts of central
    protocols (e.g. Hsu–Huang in experiment E5).
    """

    def choose(self, enabled, config, graph, step, rng):
        return enabled[int(rng.integers(len(enabled)))]


class MinIdStrategy(CentralStrategy):
    """Always the smallest-id privileged node (deterministic runs)."""

    def choose(self, enabled, config, graph, step, rng):
        return enabled[0]


class RoundRobinStrategy(CentralStrategy):
    """Cycles through node ids, picking the next privileged node at or
    after the cursor — a weakly fair deterministic daemon."""

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(self, enabled, config, graph, step, rng):
        nodes = graph.nodes
        n = len(nodes)
        enabled_set = set(enabled)
        for offset in range(n):
            candidate = nodes[(self._cursor + offset) % n]
            if candidate in enabled_set:
                self._cursor = (self._cursor + offset + 1) % n
                return candidate
        raise ProtocolError("round-robin strategy called with no enabled node")


class AdversarialStrategy(CentralStrategy):
    """A daemon driven by a user-supplied choice function.

    ``chooser(enabled, config, graph, step) -> node`` lets experiments
    encode hand-crafted worst cases (e.g. the proposal-chain schedules
    that drive Hsu–Huang towards its O(n^3) move bound).  The returned
    node must be privileged; the executor re-checks.
    """

    def __init__(
        self,
        chooser: Callable[
            [Tuple[NodeId, ...], Configuration, Graph, int], NodeId
        ],
    ) -> None:
        self._chooser = chooser

    def choose(self, enabled, config, graph, step, rng):
        node = self._chooser(enabled, config, graph, step)
        if node not in enabled:
            raise ProtocolError(
                f"adversarial strategy chose unprivileged node {node!r}"
            )
        return node


def make_strategy(spec: "str | CentralStrategy") -> CentralStrategy:
    """Coerce a strategy spec: ``'random' | 'min-id' | 'round-robin'`` or
    an existing strategy instance."""
    if isinstance(spec, CentralStrategy):
        return spec
    table = {
        "random": RandomStrategy,
        "min-id": MinIdStrategy,
        "round-robin": RoundRobinStrategy,
    }
    try:
        return table[spec]()
    except KeyError:
        raise ProtocolError(
            f"unknown central strategy {spec!r}; expected one of {sorted(table)}"
        ) from None
