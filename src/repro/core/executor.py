"""Run protocols to stabilization under the different daemons.

The central object is :class:`Execution`, a full record of one run:
initial and final configurations, stabilization flag, round/move
accounting (per rule), the per-round move log and — optionally — the
complete configuration history.  Experiments E3 (transition diagram)
and E6 (matching growth) read histories; everything else reads the
summary fields.

Round semantics (synchronous daemon) follow the paper exactly: at round
``t`` every node evaluates its guards against the states ``S_t`` that
arrived on the latest beacons, all privileged nodes fire simultaneously,
and the post-move configuration is ``S_{t+1}``.  The run has stabilized
at the first round in which no node is privileged; ``Execution.rounds``
counts every round *elapsed* before that — for randomized protocols
this includes rounds in which every node lost its draw and nobody moved
(the beacons were still exchanged; such rounds appear as empty ``{}``
entries in the move log).  The distributed daemon counts its steps the
same way; the central daemon's ``rounds`` equals ``moves`` by
definition of the model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.daemons import CentralStrategy, make_strategy
from repro.core.invariants import Monitor
from repro.core.protocol import Protocol, View
from repro.engine.result import RunResult
from repro.errors import ExperimentError, StabilizationTimeout
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


# ----------------------------------------------------------------------
# view construction
# ----------------------------------------------------------------------
def build_view(
    protocol: Protocol,
    graph: Graph,
    config: Mapping[NodeId, object],
    node: NodeId,
    rand_map: Optional[Mapping[NodeId, float]] = None,
) -> View:
    """The local view of ``node`` under ``config``.

    ``rand_map`` supplies the per-round variates for randomized
    protocols; deterministic runs pass ``None`` and views carry zeros.
    """
    neigh = graph.neighbors(node)
    neighbor_states = {j: config[j] for j in neigh}
    if rand_map is None:
        return View(node=node, state=config[node], neighbor_states=neighbor_states)
    return View(
        node=node,
        state=config[node],
        neighbor_states=neighbor_states,
        rand=rand_map[node],
        neighbor_rand={j: rand_map[j] for j in neigh},
    )


def _rand_map(
    protocol: Protocol, graph: Graph, rng: np.random.Generator
) -> Optional[Dict[NodeId, float]]:
    if not protocol.uses_randomness:
        return None
    values = rng.random(graph.n)
    return {node: float(values[k]) for k, node in enumerate(graph.nodes)}


def enabled_nodes(
    protocol: Protocol,
    graph: Graph,
    config: Mapping[NodeId, object],
    rand_map: Optional[Mapping[NodeId, float]] = None,
) -> Tuple[NodeId, ...]:
    """Sorted tuple of privileged nodes in ``config``."""
    out = []
    for node in graph.nodes:
        view = build_view(protocol, graph, config, node, rand_map)
        if protocol.is_enabled(view):
            out.append(node)
    return tuple(out)


# ----------------------------------------------------------------------
# execution record
# ----------------------------------------------------------------------
class Execution(RunResult):
    """Complete record of one reference-engine run.

    .. deprecated::
        ``Execution`` is now a thin alias of
        :class:`repro.engine.result.RunResult` — the unified result
        type all execution backends return — kept so existing code and
        serialized artefacts keep working.  Type new code against
        ``RunResult``; the fields and semantics are identical, plus a
        ``backend`` attribute naming the producer.

    The reference engine always records the full ``move_log`` (and
    ``history`` when requested), so on instances built by the runners
    in this module those fields are never ``None``.
    """


#: Default synchronous round budget: ``10 n + 100``.  Generous relative
#: to the paper's n+1 bound so that genuinely divergent variants
#: (experiment E4) are the only timeouts.  Documented in docs/api.md.
def _default_round_budget(graph: Graph) -> int:
    return 10 * graph.n + 100


def _final_quiescence(
    protocol: Protocol, graph: Graph, config: Mapping[NodeId, object]
) -> bool:
    """Randomness-free quiescence check for the budget-exhaustion path.

    Works for every protocol: deterministic guards are evaluated as
    usual (``rand_map=None``); randomized guards see zeroed variates —
    no generator state is consumed, so the check cannot perturb the
    trajectory.  ``protocol.is_quiescent`` has the final word, exactly
    as on the in-loop detection path: protocols whose guards read the
    variates (Luby) override it with a structural predicate, so a run
    that reaches quiescence on its last budgeted round is reported
    ``stabilized=True`` whether or not the protocol is randomized.
    """
    if not protocol.is_quiescent(graph, config):
        return False
    rand_map = (
        {node: 0.0 for node in graph.nodes}
        if protocol.uses_randomness
        else None
    )
    return not enabled_nodes(protocol, graph, config, rand_map)


def _make_recorder(protocol: Protocol, graph: Graph, daemon: str):
    """``(recorder, census_fn)`` for a telemetry-collecting run (the
    census only applies to pointer-matching protocols)."""
    from repro.observability import TelemetryRecorder, census_of, wants_census

    recorder = TelemetryRecorder(
        protocol.name, daemon, "reference", protocol.rule_names()
    )
    census_fn = None
    if wants_census(protocol):
        def census_fn(config):
            return census_of(graph, config)

    return recorder, census_fn


def _resolve_config(
    protocol: Protocol, graph: Graph, config: Optional[Mapping[NodeId, object]]
) -> Configuration:
    if config is None:
        config = {node: protocol.initial_state(node, graph) for node in graph.nodes}
    cfg = config if isinstance(config, Configuration) else Configuration(config)
    protocol.validate_configuration(graph, cfg)
    return cfg


# ----------------------------------------------------------------------
# synchronous daemon (the paper's model)
# ----------------------------------------------------------------------
def run_synchronous(
    protocol: Protocol,
    graph: Graph,
    config: Optional[Mapping[NodeId, object]] = None,
    *,
    rng: RngLike = None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    monitors: Sequence[Monitor] = (),
    raise_on_timeout: bool = False,
    active_set: bool = True,
    telemetry: bool = False,
    fault_plan=None,
) -> Execution:
    """Run under the synchronous daemon until no node is privileged.

    Every round, guards are evaluated on the current configuration and
    *all* privileged nodes fire simultaneously — the paper's beacon
    model, where each round every node has heard the current state of
    each neighbour.

    Parameters
    ----------
    config:
        Initial configuration; default is the protocol's clean start.
    max_rounds:
        Round budget (default ``10 n + 100``,
        :func:`_default_round_budget`).  On exhaustion a final
        randomness-free quiescence check runs (so a protocol that
        stabilizes exactly on its last budgeted round still reports
        ``stabilized=True``); otherwise the run is returned with
        ``stabilized=False`` — or raised as
        :class:`StabilizationTimeout` if ``raise_on_timeout``.
    record_history:
        Keep every intermediate configuration (memory ~ rounds × n).
    monitors:
        :class:`~repro.core.invariants.Monitor` objects called on the
        initial configuration and after every round.
    active_set:
        Re-evaluate only "dirty" nodes each round (see below).  Purely
        a performance knob: the produced :class:`Execution` is
        identical either way (pinned by ``tests/test_active_set.py``).
    telemetry:
        Attach a :class:`~repro.observability.RunTelemetry` record
        (per-round moves by rule, active-set sizes, the Fig. 2 node-type
        census for pointer-matching protocols, phase wall-clocks) to the
        returned execution.
    fault_plan:
        A :class:`~repro.resilience.FaultPlan` of scheduled mid-run
        fault events.  The run is then executed as a segmented fault
        campaign (:mod:`repro.resilience.campaign`): telemetry is always
        collected, per-event recovery metrics land in
        ``telemetry.fault_events``, and monitors are rejected.

    Notes
    -----
    A node's guards and actions read only its own and its neighbours'
    states, so its decision can change between rounds only if some node
    of its *closed neighbourhood* changed state (after round 1 the set
    of such nodes only shrinks — Lemmas 1–7).  The executor therefore
    caches every node's pending decision and, per round, recomputes
    only the nodes whose closed neighbourhood changed in the previous
    round; all currently privileged nodes still fire simultaneously, so
    round semantics are byte-identical to the full scan.  Randomized
    protocols draw fresh variates every round, which invalidates every
    cached decision: they always run the full scan.
    """
    if fault_plan is not None:
        from repro.resilience.campaign import run_reference_campaign

        return run_reference_campaign(
            protocol,
            graph,
            config,
            fault_plan=fault_plan,
            rng=rng,
            max_rounds=max_rounds,
            record_history=record_history,
            monitors=monitors,
            raise_on_timeout=raise_on_timeout,
            active_set=active_set,
            telemetry=telemetry,
        )
    gen = ensure_rng(rng)
    current = _resolve_config(protocol, graph, config)
    initial = current
    budget = _default_round_budget(graph) if max_rounds is None else max_rounds

    moves_by_rule: Dict[str, int] = {name: 0 for name in protocol.rule_names()}
    move_log: List[Dict[NodeId, str]] = []
    history: Optional[List[Configuration]] = [current] if record_history else None

    recorder = census_fn = None
    if telemetry:
        recorder, census_fn = _make_recorder(protocol, graph, "synchronous")
        if census_fn is not None:
            recorder.record_census(census_fn(current))

    for monitor in monitors:
        monitor.on_start(graph, current)

    stabilized = False
    rounds = 0
    track = active_set and not protocol.uses_randomness
    # decisions[i] = (rule name, new state) for every currently
    # privileged node i, valid for the current configuration; dirty is
    # the set of nodes whose entry must be recomputed this round.
    decisions: Dict[NodeId, Tuple[str, object]] = {}
    dirty: Iterable[NodeId] = graph.nodes
    if recorder is not None:
        recorder.begin_rounds()
    while rounds < budget:
        scanned = len(dirty) if recorder is not None else 0  # type: ignore[arg-type]
        rand_map = _rand_map(protocol, graph, gen)
        for node in dirty:
            view = build_view(protocol, graph, current, node, rand_map)
            rule = protocol.enabled_rule(view)
            if rule is None:
                decisions.pop(node, None)
            else:
                decisions[node] = (rule.name, rule.fire(view))
        if not decisions:
            if protocol.is_quiescent(graph, current):
                stabilized = True
                break
            # Randomized protocol, unlucky draws: the round still
            # happened (beacons were exchanged) but nobody won — count
            # it and redraw next iteration.
            rounds += 1
            move_log.append({})
            if history is not None:
                history.append(current)
            if recorder is not None:
                recorder.on_round(
                    {},
                    scanned,
                    census_fn(current) if census_fn is not None else None,
                )
            for monitor in monitors:
                monitor.on_round(rounds, current)
            continue
        changes: Dict[NodeId, object] = {}
        fired: Dict[NodeId, str] = {}
        for node in sorted(decisions):
            name, value = decisions[node]
            fired[node] = name
            changes[node] = value
        if track:
            touched = set()
            for node, value in changes.items():
                if current[node] != value:
                    touched.add(node)
                    touched.update(graph.neighbors(node))
            dirty = sorted(touched)
        current = current.updated(changes)
        rounds += 1
        for name in fired.values():
            moves_by_rule[name] += 1
        move_log.append(fired)
        if history is not None:
            history.append(current)
        if recorder is not None:
            round_counts: Dict[str, int] = {}
            for name in fired.values():
                round_counts[name] = round_counts.get(name, 0) + 1
            recorder.on_round(
                round_counts,
                scanned,
                census_fn(current) if census_fn is not None else None,
            )
        for monitor in monitors:
            monitor.on_round(rounds, current)
    else:  # budget exhausted without break — one final quiescence check
        stabilized = _final_quiescence(protocol, graph, current)

    if recorder is not None:
        recorder.begin_finalize()
    execution = Execution(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=stabilized,
        rounds=rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        initial=initial,
        final=current,
        move_log=move_log,
        history=history,
        legitimate=protocol.is_legitimate(graph, current),
    )
    if recorder is not None:
        execution.telemetry = recorder.finish()
    for monitor in monitors:
        monitor.on_finish(execution)
    if raise_on_timeout and not execution.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds", execution
        )
    return execution


# ----------------------------------------------------------------------
# central daemon
# ----------------------------------------------------------------------
def run_central(
    protocol: Protocol,
    graph: Graph,
    config: Optional[Mapping[NodeId, object]] = None,
    *,
    strategy: "str | CentralStrategy" = "random",
    rng: RngLike = None,
    max_moves: Optional[int] = None,
    record_history: bool = False,
    monitors: Sequence[Monitor] = (),
    raise_on_timeout: bool = False,
    telemetry: bool = False,
    fault_plan=None,
) -> Execution:
    """Run under the central daemon: one privileged node moves per step.

    This is the execution model of the Hsu–Huang baseline (and of most
    classical self-stabilization results).  ``strategy`` picks the
    mover; see :mod:`repro.core.daemons`.  ``rounds`` in the returned
    execution equals ``moves`` (each step is one move; a randomized
    protocol's unlucky zero-move draws consume budget but add no move).
    On budget exhaustion a final randomness-free quiescence check runs,
    as in :func:`run_synchronous`.
    """
    if fault_plan is not None:
        raise ExperimentError(
            "fault campaigns run under the synchronous daemon only; "
            "the plan's round schedule has no meaning for central steps"
        )
    gen = ensure_rng(rng)
    chooser = make_strategy(strategy)
    chooser.reset()
    current = _resolve_config(protocol, graph, config)
    initial = current
    budget = max_moves if max_moves is not None else 4 * graph.n * graph.n + 100

    moves_by_rule: Dict[str, int] = {name: 0 for name in protocol.rule_names()}
    move_log: List[Dict[NodeId, str]] = []
    history: Optional[List[Configuration]] = [current] if record_history else None

    recorder = census_fn = None
    if telemetry:
        recorder, census_fn = _make_recorder(
            protocol, graph, f"central:{type(chooser).__name__}"
        )
        if census_fn is not None:
            recorder.record_census(census_fn(current))

    for monitor in monitors:
        monitor.on_start(graph, current)

    stabilized = False
    moves = 0
    ticks = 0
    if recorder is not None:
        recorder.begin_rounds()
    while ticks < budget:
        ticks += 1
        rand_map = _rand_map(protocol, graph, gen)
        enabled = enabled_nodes(protocol, graph, current, rand_map)
        if not enabled:
            if protocol.is_quiescent(graph, current):
                stabilized = True
                break
            continue  # randomized protocol, unlucky draws: redraw
        node = chooser.choose(enabled, current, graph, moves, gen)
        view = build_view(protocol, graph, current, node, rand_map)
        rule = protocol.enabled_rule(view)
        assert rule is not None  # node came from the enabled set
        current = current.updated({node: rule.fire(view)})
        moves += 1
        moves_by_rule[rule.name] += 1
        move_log.append({node: rule.name})
        if history is not None:
            history.append(current)
        if recorder is not None:
            recorder.on_round(
                {rule.name: 1},
                graph.n,
                census_fn(current) if census_fn is not None else None,
            )
        for monitor in monitors:
            monitor.on_round(moves, current)
    else:  # budget exhausted without break — one final quiescence check
        stabilized = _final_quiescence(protocol, graph, current)

    if recorder is not None:
        recorder.begin_finalize()
    execution = Execution(
        protocol_name=protocol.name,
        daemon=f"central:{type(chooser).__name__}",
        stabilized=stabilized,
        rounds=moves,
        moves=moves,
        moves_by_rule=moves_by_rule,
        initial=initial,
        final=current,
        move_log=move_log,
        history=history,
        legitimate=protocol.is_legitimate(graph, current),
    )
    if recorder is not None:
        execution.telemetry = recorder.finish()
    for monitor in monitors:
        monitor.on_finish(execution)
    if raise_on_timeout and not execution.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} central-daemon moves", execution
        )
    return execution


# ----------------------------------------------------------------------
# distributed daemon
# ----------------------------------------------------------------------
def run_distributed(
    protocol: Protocol,
    graph: Graph,
    config: Optional[Mapping[NodeId, object]] = None,
    *,
    rng: RngLike = None,
    activation_probability: float = 0.5,
    max_steps: Optional[int] = None,
    record_history: bool = False,
    monitors: Sequence[Monitor] = (),
    raise_on_timeout: bool = False,
    telemetry: bool = False,
    fault_plan=None,
) -> Execution:
    """Run under a randomized distributed daemon.

    Each step, every privileged node is *activated* independently with
    probability ``activation_probability``; if the coin flips produce an
    empty set, one privileged node is activated uniformly at random so
    that the daemon is live.  All activated nodes fire simultaneously
    against the pre-step configuration.

    Steps are counted like synchronous rounds: every tick elapsed
    counts, including ticks in which a randomized protocol's unlucky
    draws privileged nobody (empty ``{}`` move-log entries).  On budget
    exhaustion a final randomness-free quiescence check runs, as in
    :func:`run_synchronous`.

    This daemon interpolates between the central daemon (p → 0) and the
    synchronous daemon (p = 1); tests use it to probe robustness of the
    protocols outside the paper's model.
    """
    if fault_plan is not None:
        raise ExperimentError(
            "fault campaigns run under the synchronous daemon only; "
            "the plan's round schedule has no meaning for distributed steps"
        )
    if not 0.0 <= activation_probability <= 1.0:
        raise ValueError("activation_probability must lie in [0, 1]")
    gen = ensure_rng(rng)
    current = _resolve_config(protocol, graph, config)
    initial = current
    budget = max_steps if max_steps is not None else 20 * graph.n + 200

    moves_by_rule: Dict[str, int] = {name: 0 for name in protocol.rule_names()}
    move_log: List[Dict[NodeId, str]] = []
    history: Optional[List[Configuration]] = [current] if record_history else None

    recorder = census_fn = None
    if telemetry:
        recorder, census_fn = _make_recorder(protocol, graph, "distributed")
        if census_fn is not None:
            recorder.record_census(census_fn(current))

    for monitor in monitors:
        monitor.on_start(graph, current)

    stabilized = False
    steps = 0
    ticks = 0
    if recorder is not None:
        recorder.begin_rounds()
    while ticks < budget:
        ticks += 1
        rand_map = _rand_map(protocol, graph, gen)
        enabled = enabled_nodes(protocol, graph, current, rand_map)
        if not enabled:
            if protocol.is_quiescent(graph, current):
                stabilized = True
                break
            # Randomized protocol, unlucky draws: the tick still
            # happened — count it, like the synchronous daemon does.
            steps += 1
            move_log.append({})
            if history is not None:
                history.append(current)
            if recorder is not None:
                recorder.on_round(
                    {},
                    graph.n,
                    census_fn(current) if census_fn is not None else None,
                )
            for monitor in monitors:
                monitor.on_round(steps, current)
            continue
        mask = gen.random(len(enabled)) < activation_probability
        active = [node for node, m in zip(enabled, mask) if m]
        if not active:
            active = [enabled[int(gen.integers(len(enabled)))]]
        changes: Dict[NodeId, object] = {}
        fired: Dict[NodeId, str] = {}
        for node in active:
            view = build_view(protocol, graph, current, node, rand_map)
            rule = protocol.enabled_rule(view)
            assert rule is not None
            changes[node] = rule.fire(view)
            fired[node] = rule.name
        current = current.updated(changes)
        steps += 1
        for name in fired.values():
            moves_by_rule[name] += 1
        move_log.append(fired)
        if history is not None:
            history.append(current)
        if recorder is not None:
            round_counts: Dict[str, int] = {}
            for name in fired.values():
                round_counts[name] = round_counts.get(name, 0) + 1
            recorder.on_round(
                round_counts,
                graph.n,
                census_fn(current) if census_fn is not None else None,
            )
        for monitor in monitors:
            monitor.on_round(steps, current)
    else:  # budget exhausted without break — one final quiescence check
        stabilized = _final_quiescence(protocol, graph, current)

    if recorder is not None:
        recorder.begin_finalize()
    execution = Execution(
        protocol_name=protocol.name,
        daemon="distributed",
        stabilized=stabilized,
        rounds=steps,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        initial=initial,
        final=current,
        move_log=move_log,
        history=history,
        legitimate=protocol.is_legitimate(graph, current),
    )
    if recorder is not None:
        execution.telemetry = recorder.finish()
    for monitor in monitors:
        monitor.on_finish(execution)
    if raise_on_timeout and not execution.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} distributed steps", execution
        )
    return execution
