"""Transient fault injection and topology-change migration.

Self-stabilization gives fault tolerance for free: any finite burst of
transient faults (memory corruption, lost updates, topology changes)
leaves the system in *some* configuration, from which convergence is
guaranteed.  This module provides the two fault models the experiments
use:

* :func:`perturb_configuration` — corrupt the local state of a random
  subset of nodes (models memory faults / lost beacons);
* :func:`migrate_configuration` — carry a configuration from an old
  topology to a new one after link churn.  State referring to vanished
  links is sanitized exactly as the paper's system model prescribes:
  the link-layer neighbour-discovery protocol "informs the upper layer
  of any creation/deletion of logical links", and a pointer variable
  whose target is no longer a neighbour resets to null.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.core.configuration import Configuration
from repro.core.protocol import Protocol
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


def random_configuration(
    protocol: Protocol, graph: Graph, rng: RngLike = None
) -> Configuration:
    """A configuration drawn uniformly from each node's local state
    space — the 'arbitrary initial state' of the self-stabilization
    definition."""
    gen = ensure_rng(rng)
    cfg = Configuration(
        {node: protocol.random_state(node, graph, gen) for node in graph.nodes}
    )
    protocol.validate_configuration(graph, cfg)
    return cfg


def perturb_victims(
    graph: Graph, count: int, rng: RngLike = None
) -> Tuple[NodeId, ...]:
    """Draw ``count`` distinct victim nodes, in draw order.

    The draw goes through *dense indices* (``gen.choice`` over
    ``range(graph.n)``) and maps back via the graph's node tuple, so the
    returned ids keep their original Python types — ``gen.choice`` over
    the ids themselves would hand back ``numpy.int64`` (or ``str_``)
    values, and a blanket ``int(node)`` coercion breaks on string ids.
    Exactly one generator call, so callers that mirror the draw on a
    dense array (the vectorized fault campaigns) stay in lockstep.
    """
    if count < 0 or count > graph.n:
        raise ValueError(f"count {count} outside 0..{graph.n}")
    gen = ensure_rng(rng)
    picks = gen.choice(graph.n, size=count, replace=False)
    nodes = graph.nodes
    return tuple(nodes[int(k)] for k in picks)


def perturb_configuration(
    protocol: Protocol,
    graph: Graph,
    config: Mapping[NodeId, object],
    *,
    fraction: float = 0.25,
    count: Optional[int] = None,
    rng: RngLike = None,
) -> Configuration:
    """Corrupt the state of a random subset of nodes.

    Either ``count`` nodes, or ``round(fraction * n)`` (at least one
    when ``fraction > 0``), are re-drawn through
    :meth:`Protocol.random_state`.  Models a burst of transient faults
    hitting a stabilized system; experiments measure containment (how
    quickly and how locally the system recovers).
    """
    if count is None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        count = int(round(fraction * graph.n))
        if fraction > 0 and count == 0:
            count = 1
    gen = ensure_rng(rng)
    victims = perturb_victims(graph, count, gen)
    cfg = config if isinstance(config, Configuration) else Configuration(config)
    changes = {
        node: protocol.random_state(node, graph, gen) for node in victims
    }
    out = cfg.updated(changes)
    protocol.validate_configuration(graph, out)
    return out


def migrate_configuration(
    protocol: Protocol,
    old_graph: Graph,
    new_graph: Graph,
    config: Mapping[NodeId, object],
) -> Configuration:
    """Carry ``config`` across a topology change.

    Every node keeps its state; states invalidated by the change (e.g.
    a matching pointer at a failed link) are sanitized via the
    protocol's :meth:`sanitize_state` hook if it has one, else reset to
    the protocol's initial state for that node.  This mirrors Section 2
    of the paper: the link layer detects the lost beacon, evicts the
    neighbour, and the upper layer reacts.
    """
    if set(old_graph.nodes) != set(new_graph.nodes):
        raise ValueError("topology changes must preserve the node set")
    sanitize = getattr(protocol, "sanitize_state", None)
    out = {}
    for node in new_graph.nodes:
        state = config[node]
        if sanitize is not None:
            state = sanitize(node, new_graph, state)
        else:
            # only the library's own "state does not type-check" errors
            # mean "reset"; anything else (a TypeError from a buggy
            # validate_state, a KeyError, ...) is a protocol bug and
            # must propagate instead of masquerading as sanitization
            try:
                protocol.validate_state(node, new_graph, state)
            except ProtocolError:
                state = protocol.initial_state(node, new_graph)
        out[node] = state
    cfg = Configuration(out)
    protocol.validate_configuration(new_graph, cfg)
    return cfg
