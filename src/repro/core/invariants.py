"""Invariant monitors attached to executions.

A :class:`Monitor` observes a run from the outside: the executor calls
``on_start`` with the initial configuration, ``on_round`` after every
round/step, and ``on_finish`` with the completed
:class:`~repro.core.executor.Execution`.  Monitors never influence the
run — they record, or raise ``AssertionError`` when a claimed invariant
is violated, which is how the lemma-checking experiments (E3, E6) turn
the paper's proofs into executable checks.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.configuration import Configuration
from repro.graphs.graph import Graph
from repro.types import NodeId


class Monitor:
    """Base monitor; all hooks default to no-ops."""

    def on_start(self, graph: Graph, config: Configuration) -> None:
        """Called once, before any move, with the initial configuration."""

    def on_round(self, round_index: int, config: Configuration) -> None:
        """Called after round/step ``round_index`` (1-based) completes."""

    def on_finish(self, execution) -> None:
        """Called once with the completed execution record."""


class HistoryMonitor(Monitor):
    """Records every configuration (initial + one per round).

    Functionally equivalent to ``record_history=True`` on the executor
    but composable with other monitors, and usable with runners that do
    not expose the flag.
    """

    def __init__(self) -> None:
        self.graph: Optional[Graph] = None
        self.configurations: List[Configuration] = []

    def on_start(self, graph: Graph, config: Configuration) -> None:
        self.graph = graph
        self.configurations = [config]

    def on_round(self, round_index: int, config: Configuration) -> None:
        self.configurations.append(config)


class PredicateMonitor(Monitor):
    """Evaluates a boolean predicate on every configuration.

    ``predicate(graph, config) -> bool``.  The trace of values is kept
    in :attr:`values`; with ``require=True`` a ``False`` raises
    immediately (use for "this must hold at every step" invariants,
    e.g. Lemma 1's matched-stay-matched).
    """

    def __init__(
        self,
        predicate: Callable[[Graph, Configuration], bool],
        *,
        name: str = "predicate",
        require: bool = False,
    ) -> None:
        self._predicate = predicate
        self.name = name
        self.require = require
        self.values: List[bool] = []
        self._graph: Optional[Graph] = None

    def _check(self, config: Configuration) -> None:
        assert self._graph is not None
        value = bool(self._predicate(self._graph, config))
        self.values.append(value)
        if self.require and not value:
            raise AssertionError(
                f"invariant {self.name!r} violated at step {len(self.values) - 1}"
            )

    def on_start(self, graph: Graph, config: Configuration) -> None:
        self._graph = graph
        self.values = []
        self._check(config)

    def on_round(self, round_index: int, config: Configuration) -> None:
        self._check(config)

    def first_true(self) -> Optional[int]:
        """Index (0 = initial) of the first configuration satisfying the
        predicate, or ``None`` if it never held."""
        for i, v in enumerate(self.values):
            if v:
                return i
        return None

    def holds_from(self) -> Optional[int]:
        """First index from which the predicate holds *for the rest of
        the run* (closure point), or ``None``."""
        last_false = -1
        for i, v in enumerate(self.values):
            if not v:
                last_false = i
        start = last_false + 1
        return start if start < len(self.values) else None


class ClosureMonitor(PredicateMonitor):
    """Checks the *closure* half of self-stabilization.

    Once the legitimacy predicate holds it must keep holding.  Raises
    ``AssertionError`` on the first legitimate -> illegitimate
    transition.  (Convergence — the other half — is what the executors
    measure.)
    """

    def __init__(
        self, predicate: Callable[[Graph, Configuration], bool], *, name: str = "closure"
    ) -> None:
        super().__init__(predicate, name=name, require=False)

    def _check(self, config: Configuration) -> None:
        assert self._graph is not None
        value = bool(self._predicate(self._graph, config))
        if self.values and self.values[-1] and not value:
            raise AssertionError(
                f"closure of {self.name!r} violated at step {len(self.values)}: "
                "legitimate configuration became illegitimate"
            )
        self.values.append(value)


class QuiescenceMonitor(Monitor):
    """Records, per round, how many nodes moved (from the move counts
    implied by successive configurations)."""

    def __init__(self) -> None:
        self._previous: Optional[Configuration] = None
        self.changed_per_round: List[int] = []

    def on_start(self, graph: Graph, config: Configuration) -> None:
        self._previous = config
        self.changed_per_round = []

    def on_round(self, round_index: int, config: Configuration) -> None:
        assert self._previous is not None
        self.changed_per_round.append(len(config.diff(self._previous)))
        self._previous = config
