"""The guarded-rule protocol abstraction.

A self-stabilizing protocol, in the style of Dijkstra and of the paper,
is a set of *rules* of the form ``if <guard over local view> then
<action>``.  A node is *privileged* (enabled) when some guard holds on
its local view — its own state plus the states of its neighbours, which
in the ad hoc model arrive piggybacked on beacon messages.

:class:`Protocol` subclasses define:

* the per-node state space (via :meth:`Protocol.initial_state`,
  :meth:`Protocol.random_state` and :meth:`Protocol.validate_state`);
* an ordered sequence of :class:`Rule` objects — when several guards
  hold, the *first* enabled rule fires (rule priority; the paper's
  protocols have pairwise-exclusive guards, so ordering never matters
  for them, but the engine supports prioritized rule sets);
* the global legitimacy predicate (:meth:`Protocol.is_legitimate`).

Randomized protocols (Luby-style MIS, randomized local mutual
exclusion) read the per-round uniform variate ``view.rand`` /
``view.neighbor_rand`` that the executor draws for every node every
round; deterministic protocols simply ignore them.  In the beacon
model these variates ride along with the state in the beacon payload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Generic, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidConfigurationError, ProtocolError
from repro.graphs.graph import Graph
from repro.types import NodeId, S


@dataclass(frozen=True)
class View(Generic[S]):
    """Everything a node can see when evaluating guards.

    Attributes
    ----------
    node:
        The node's own id (ids are comparable; both SMM and SIS compare
        them in guards).
    state:
        The node's own local state.
    neighbor_states:
        Mapping from neighbour id to that neighbour's state, exactly as
        learned from the latest beacon of each neighbour.
    rand:
        This node's fresh uniform variate for the current round.
    neighbor_rand:
        The neighbours' variates for the current round (communicated on
        the same beacons as the states).
    """

    node: NodeId
    state: S
    neighbor_states: Mapping[NodeId, S]
    rand: float = 0.0
    neighbor_rand: Mapping[NodeId, float] = field(default_factory=dict)

    @property
    def neighbors(self) -> Tuple[NodeId, ...]:
        """Neighbour ids, ascending (``N(i)``)."""
        return tuple(sorted(self.neighbor_states))

    def state_of(self, j: NodeId) -> S:
        """The last beaconed state of neighbour ``j``."""
        try:
            return self.neighbor_states[j]
        except KeyError:
            raise ProtocolError(
                f"node {self.node} has no neighbor {j}"
            ) from None

    def any_neighbor(self, pred: Callable[[NodeId, S], bool]) -> bool:
        """``∃ j ∈ N(i): pred(j, state_j)``."""
        return any(pred(j, s) for j, s in self.neighbor_states.items())

    def all_neighbors(self, pred: Callable[[NodeId, S], bool]) -> bool:
        """``∀ j ∈ N(i): pred(j, state_j)``."""
        return all(pred(j, s) for j, s in self.neighbor_states.items())

    def neighbors_where(self, pred: Callable[[NodeId, S], bool]) -> Tuple[NodeId, ...]:
        """Ascending ids of neighbours satisfying ``pred``."""
        return tuple(sorted(j for j, s in self.neighbor_states.items() if pred(j, s)))


@dataclass(frozen=True)
class Rule(Generic[S]):
    """One guarded command: ``if guard(view) then state := action(view)``.

    ``name`` labels the rule in move logs (the analysis modules count
    R1/R2/R3 firings per round); ``description`` is the paper's informal
    reading (e.g. "accept proposal").
    """

    name: str
    guard: Callable[[View[S]], bool]
    action: Callable[[View[S]], S]
    description: str = ""

    def enabled(self, view: View[S]) -> bool:
        return self.guard(view)

    def fire(self, view: View[S]) -> S:
        if not self.guard(view):
            raise ProtocolError(
                f"rule {self.name} fired on node {view.node} with a false guard"
            )
        return self.action(view)


class Protocol(ABC, Generic[S]):
    """Base class for guarded-rule protocols.

    Subclasses must define :attr:`name`, :meth:`rules`,
    :meth:`initial_state`, :meth:`random_state` and
    :meth:`is_legitimate`; :meth:`validate_state` defaults to accepting
    everything and should be overridden when the state space is
    constrained (pointers must reference neighbours, flags must be 0/1,
    ...).
    """

    #: Human-readable protocol name, used in experiment tables.
    name: str = "protocol"

    #: Set truthy by randomized protocols: the executor then draws one
    #: fresh uniform variate per node per round and exposes it (plus the
    #: neighbours') through the view.  Deterministic protocols leave it
    #: false so runs do not consume generator state needlessly.
    uses_randomness: bool = False

    @abstractmethod
    def rules(self) -> Sequence[Rule[S]]:
        """The ordered rule set (first enabled rule fires)."""

    @abstractmethod
    def initial_state(self, node: NodeId, graph: Graph) -> S:
        """The 'clean start' state (e.g. null pointer, out of set)."""

    @abstractmethod
    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> S:
        """An arbitrary state, uniform over the node's local state space.

        Self-stabilization is convergence from *every* configuration;
        experiments sample initial configurations through this method.
        """

    def validate_state(self, node: NodeId, graph: Graph, state: S) -> None:
        """Raise :class:`InvalidConfigurationError` if ``state`` is not
        a member of the node's local state space."""

    @abstractmethod
    def is_legitimate(self, graph: Graph, config: Mapping[NodeId, S]) -> bool:
        """The global predicate the protocol maintains (its spec)."""

    def is_quiescent(self, graph: Graph, config: Mapping[NodeId, S]) -> bool:
        """Whether a configuration in which no node is privileged is
        genuinely terminal.

        For deterministic protocols guard-enabledness is a function of
        the configuration alone, so "nobody privileged now" means
        "nobody privileged ever" and the default ``True`` is correct.
        Randomized protocols whose *guards* read the per-round variates
        (e.g. the Luby-style MIS) must override this: a round in which
        every node lost its draw proves nothing about the next round's
        draws, so the executor keeps running until this predicate
        confirms termination.
        """
        return True

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def enabled_rule(self, view: View[S]) -> Optional[Rule[S]]:
        """The first rule whose guard holds on ``view`` (or ``None``).

        A node is *privileged* exactly when this is not ``None``.
        """
        for rule in self.rules():
            if rule.guard(view):
                return rule
        return None

    def is_enabled(self, view: View[S]) -> bool:
        return self.enabled_rule(view) is not None

    def rule_names(self) -> Tuple[str, ...]:
        names = tuple(r.name for r in self.rules())
        if len(set(names)) != len(names):
            raise ProtocolError(f"duplicate rule names in {self.name}: {names}")
        return names

    def validate_configuration(
        self, graph: Graph, config: Mapping[NodeId, S]
    ) -> None:
        """Check that ``config`` covers exactly the node set and that
        every local state type-checks."""
        if set(config) != set(graph.nodes):
            missing = set(graph.nodes) - set(config)
            extra = set(config) - set(graph.nodes)
            raise InvalidConfigurationError(
                f"configuration domain mismatch (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        for node in graph.nodes:
            self.validate_state(node, graph, config[node])
