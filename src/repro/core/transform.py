"""Central-daemon → synchronous-model refinement.

Section 3 of the paper notes that the Hsu–Huang central-daemon maximal
matching algorithm "may be converted into a synchronous model protocol
using the techniques of [Afek–Dolev / Beauquier et al.], [but] the
resulting protocol is not as fast" as SMM; the conclusion generalizes
the observation to any centrally-solvable problem.  This module
implements that conversion so experiment E5/E9 can measure the claim.

The construction is *local mutual exclusion*: in each synchronous
round, a privileged node actually fires only if it holds the locally
highest priority among the privileged nodes of its closed
neighbourhood.  The set of movers is then independent in the conflict
graph, so the parallel step is serializable — it equals a sequence of
central-daemon moves (movers are pairwise non-adjacent; a node's guard
and action read only its own and its neighbours' states, so moves by
non-neighbours commute).  Any central-daemon convergence proof
therefore carries over unchanged.

Two priority schemes are provided:

* ``"id"`` — priority is the node id.  Deterministic; the globally
  largest privileged node always moves, so every round makes progress.
* ``"random"`` — fresh uniform priorities every round (ties broken by
  id), the Beauquier-et-al-style randomized refinement.  Expected
  parallelism is Θ(privileged / Δ) movers per round.

In the beacon model each refinement round costs *two* beacon rounds:
one for neighbours' states (to evaluate guards) and one to exchange
the (priority, privileged)-bits that arbitrate the mutex.  The runner
reports raw refinement rounds; callers that want beacon-time multiply
by :data:`BEACON_ROUNDS_PER_STEP`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.executor import (
    Execution,
    _final_quiescence,
    _make_recorder,
    _resolve_config,
    build_view,
)
from repro.core.invariants import Monitor
from repro.core.protocol import Protocol
from repro.errors import ProtocolError, StabilizationTimeout
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId

#: Beacon rounds consumed by one refinement round (state exchange +
#: priority/privilege exchange).
BEACON_ROUNDS_PER_STEP = 2


def _priorities(
    scheme: str, graph: Graph, gen: np.random.Generator
) -> Dict[NodeId, tuple]:
    """Per-round priority of every node; larger tuple wins."""
    if scheme == "id":
        return {node: (node,) for node in graph.nodes}
    if scheme == "random":
        draws = gen.random(graph.n)
        return {
            node: (float(draws[k]), node) for k, node in enumerate(graph.nodes)
        }
    raise ProtocolError(f"unknown priority scheme {scheme!r}")


def run_synchronized_central(
    protocol: Protocol,
    graph: Graph,
    config: Optional[Mapping[NodeId, object]] = None,
    *,
    priority: str = "id",
    rng: RngLike = None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    monitors: Sequence[Monitor] = (),
    raise_on_timeout: bool = False,
    count_beacon_rounds: bool = False,
    telemetry: bool = False,
    fault_plan=None,
) -> Execution:
    """Run a central-daemon protocol in the synchronous model via local
    mutual exclusion.

    Per refinement round: evaluate every node's guard on the current
    configuration; fire exactly the privileged nodes whose priority
    beats every privileged closed-neighbour.  Stabilizes when no node
    is privileged; on budget exhaustion a final randomness-free
    quiescence check runs, as in
    :func:`repro.core.executor.run_synchronous`.  Rounds count every
    tick elapsed, including zero-move rounds of randomized protocols
    (empty ``{}`` move-log entries).

    Parameters mirror :func:`repro.core.executor.run_synchronous`.
    ``priority`` selects the scheme (``"id"`` or ``"random"``); with
    ``count_beacon_rounds=True`` the returned execution reports rounds
    in beacon time (refinement rounds × :data:`BEACON_ROUNDS_PER_STEP`),
    which is the honest unit for comparing against SMM in E5 — the
    attached telemetry (``telemetry=True``) always counts refinement
    rounds.
    """
    if fault_plan is not None:
        from repro.errors import ExperimentError

        raise ExperimentError(
            "fault campaigns are not supported under the refined "
            "synchronized-central daemon; use the synchronous daemon"
        )
    gen = ensure_rng(rng)
    current = _resolve_config(protocol, graph, config)
    initial = current
    budget = max_rounds if max_rounds is not None else 20 * graph.n * graph.n + 200

    moves_by_rule: Dict[str, int] = {name: 0 for name in protocol.rule_names()}
    move_log = []
    history = [current] if record_history else None

    recorder = census_fn = None
    if telemetry:
        recorder, census_fn = _make_recorder(
            protocol, graph, f"sync-central-refined:{priority}"
        )
        if census_fn is not None:
            recorder.record_census(census_fn(current))

    for monitor in monitors:
        monitor.on_start(graph, current)

    if recorder is not None:
        recorder.begin_rounds()
    stabilized = False
    rounds = 0
    while rounds < budget:
        rand_map = None
        if protocol.uses_randomness:
            draws = gen.random(graph.n)
            rand_map = {
                node: float(draws[k]) for k, node in enumerate(graph.nodes)
            }
        # which nodes are privileged, and with which rule
        enabled_rules = {}
        for node in graph.nodes:
            view = build_view(protocol, graph, current, node, rand_map)
            rule = protocol.enabled_rule(view)
            if rule is not None:
                enabled_rules[node] = (rule, view)
        if not enabled_rules:
            if protocol.is_quiescent(graph, current):
                stabilized = True
                break
            rounds += 1  # randomized guards: nobody won; redraw
            move_log.append({})
            if history is not None:
                history.append(current)
            if recorder is not None:
                recorder.on_round(
                    {},
                    graph.n,
                    census_fn(current) if census_fn is not None else None,
                )
            for monitor in monitors:
                monitor.on_round(rounds, current)
            continue
        prio = _priorities(priority, graph, gen)
        movers = [
            node
            for node in enabled_rules
            if all(
                prio[node] > prio[j]
                for j in graph.neighbors(node)
                if j in enabled_rules
            )
        ]
        if not movers:
            raise ProtocolError(
                "local mutex produced an empty mover set with privileged "
                "nodes present (priority scheme must be a total order)"
            )
        changes = {}
        fired = {}
        for node in movers:
            rule, view = enabled_rules[node]
            changes[node] = rule.fire(view)
            fired[node] = rule.name
        current = current.updated(changes)
        rounds += 1
        for name in fired.values():
            moves_by_rule[name] += 1
        move_log.append(fired)
        if history is not None:
            history.append(current)
        if recorder is not None:
            round_counts: Dict[str, int] = {}
            for name in fired.values():
                round_counts[name] = round_counts.get(name, 0) + 1
            recorder.on_round(
                round_counts,
                graph.n,
                census_fn(current) if census_fn is not None else None,
            )
        for monitor in monitors:
            monitor.on_round(rounds, current)
    else:
        stabilized = _final_quiescence(protocol, graph, current)

    if recorder is not None:
        recorder.begin_finalize()
    reported_rounds = (
        rounds * BEACON_ROUNDS_PER_STEP if count_beacon_rounds else rounds
    )
    execution = Execution(
        protocol_name=protocol.name,
        daemon=f"sync-central-refined:{priority}",
        stabilized=stabilized,
        rounds=reported_rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        initial=initial,
        final=current,
        move_log=move_log,
        history=history,
        legitimate=protocol.is_legitimate(graph, current),
    )
    if recorder is not None:
        execution.telemetry = recorder.finish()
    for monitor in monitors:
        monitor.on_finish(execution)
    if raise_on_timeout and not execution.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} (refined) exceeded {budget} rounds", execution
        )
    return execution
