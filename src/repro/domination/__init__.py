"""Self-stabilizing minimal dominating set (extension).

The paper's introduction motivates self-stabilizing predicate
maintenance with, among others, "a minimal dominating set must be
maintained to optimize the number and the locations of the resource
centers".  This subpackage supplies that protocol as a fourth engine
client and a further subject for the daemon-refinement experiment E9.
"""

from repro.domination.mds import MinimalDominatingSet, is_minimal_dominating_set

__all__ = ["MinimalDominatingSet", "is_minimal_dominating_set"]
