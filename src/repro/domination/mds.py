"""Self-stabilizing minimal dominating set (central-daemon protocol).

A dominating set S is *minimal* when no proper subset dominates; i.e.
every member is needed — it either dominates itself only (no neighbour
in S) or some neighbour depends on it alone.

Guards may read only neighbour states, but minimality is a 2-hop
property ("does my neighbour have another dominator?").  The standard
resolution is to publish a *dominator count* alongside the membership
bit: the local state is ``(x, m)`` where ``x ∈ {0,1}`` is membership
and ``m`` should equal ``|{j ∈ N(i) : x(j) = 1}|``.  Three rules, in
priority order:

``RC``  if ``m(i) ≠ |{j ∈ N(i): x(j)=1}|``
        then fix ``m(i)``                      *(repair the count)*

``R1``  if ``x(i)=0 ∧ m(i)=0``
        then ``x(i):=1``                        *(enter: undominated)*

``R2``  if ``x(i)=1 ∧ m(i)≥1 ∧ ∀j∈N(i): (x(j)=1 ∨ m(j)≥2)``
        then ``x(i):=0``                        *(leave: redundant)*

R2's guard is the published-count version of "I am dominated by
someone else and every out-neighbour that I dominate has a second
dominator" (``m(j)`` counts ``i`` itself, hence ``≥ 2``).

Correct under the central daemon; under the raw synchronous daemon two
adjacent redundant members can leave together and re-enter forever, so
— like Grundy colouring and Hsu–Huang — it ports to the synchronous
model through the local-mutex refinement (experiment E9).
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence, Tuple

import numpy as np

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError
from repro.graphs.graph import Graph
from repro.graphs.properties import is_dominating_set
from repro.types import NodeId

#: Local state: (membership bit, believed dominator count).
MdsState = Tuple[int, int]


def is_minimal_dominating_set(graph: Graph, nodes: AbstractSet[NodeId]) -> bool:
    """True iff ``nodes`` dominates and no member is redundant."""
    s = set(nodes)
    if not is_dominating_set(graph, s):
        return False
    for i in s:
        if not is_dominating_set(graph, s - {i}):
            continue
        return False
    return True


class MinimalDominatingSet(Protocol[MdsState]):
    """The (x, m) minimal dominating set protocol described above."""

    name = "MDS"

    def __init__(self) -> None:
        self._rules = (
            Rule(
                name="RC",
                guard=self._rc_guard,
                action=self._rc_action,
                description="repair dominator count",
            ),
            Rule(
                name="R1",
                guard=self._r1_guard,
                action=lambda v: (1, v.state[1]),
                description="enter: undominated",
            ),
            Rule(
                name="R2",
                guard=self._r2_guard,
                action=lambda v: (0, v.state[1]),
                description="leave: redundant",
            ),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _true_count(view: View) -> int:
        return sum(1 for s in view.neighbor_states.values() if s[0] == 1)

    def _rc_guard(self, view: View) -> bool:
        return view.state[1] != self._true_count(view)

    def _rc_action(self, view: View) -> MdsState:
        return (view.state[0], self._true_count(view))

    def _r1_guard(self, view: View) -> bool:
        return view.state[0] == 0 and view.state[1] == 0

    def _r2_guard(self, view: View) -> bool:
        x, m = view.state
        if x != 1 or m < 1:
            return False
        return all(
            s[0] == 1 or s[1] >= 2 for s in view.neighbor_states.values()
        )

    # ------------------------------------------------------------------
    def rules(self) -> Sequence[Rule[MdsState]]:
        return self._rules

    def initial_state(self, node: NodeId, graph: Graph) -> MdsState:
        return (0, 0)

    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> MdsState:
        return (int(rng.integers(2)), int(rng.integers(graph.degree(node) + 1)))

    def validate_state(self, node: NodeId, graph: Graph, state: MdsState) -> None:
        ok = (
            isinstance(state, tuple)
            and len(state) == 2
            and state[0] in (0, 1)
            and isinstance(state[1], (int, np.integer))
            and 0 <= state[1] <= graph.degree(node)
        )
        if not ok:
            raise InvalidConfigurationError(
                f"node {node}: invalid MDS state {state!r}"
            )

    def is_legitimate(
        self, graph: Graph, config: Mapping[NodeId, MdsState]
    ) -> bool:
        """Counts correct and the membership set minimal dominating."""
        for i in graph.nodes:
            true_m = sum(1 for j in graph.neighbors(i) if config[j][0] == 1)
            if config[i][1] != true_m:
                return False
        in_set = {i for i in graph.nodes if config[i][0] == 1}
        return is_minimal_dominating_set(graph, in_set)

    def members(self, config: Mapping[NodeId, MdsState]) -> frozenset[NodeId]:
        """The dominating set encoded by a configuration."""
        return frozenset(i for i, s in config.items() if s[0] == 1)
