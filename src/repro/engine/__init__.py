"""Unified execution engine: one registry, one result type, one
dispatch path.

Everything that executes a protocol — the reference view-based engine,
the vectorized NumPy kernels, the batch kernels — is a registered
*backend* behind :func:`run`:

>>> from repro import engine
>>> result = engine.run("smm", graph)                     # auto-select
>>> result = engine.run("smm", graph, backend="vectorized")  # explicit
>>> result.backend, result.rounds, result.legitimate
('vectorized', 3, True)

All backends return :class:`RunResult` and agree byte-for-byte on the
summary fields (final configuration, rounds, per-rule move counts,
legitimacy) — pinned by ``tests/test_engine_equivalence.py``.  See
docs/performance.md for the selection story and docs/extending.md for
how to register a new backend.
"""

from repro.engine.registry import (
    BACKENDS,
    DAEMONS,
    PROTOCOLS,
    Backend,
    backend_names,
    backends_for,
    get_backend,
    make_protocol,
    protocol_key,
    register_backend,
    register_protocol,
)
from repro.engine.result import RunResult
from repro.engine.select import fallback_backend, run, select_backend

__all__ = [
    "BACKENDS",
    "DAEMONS",
    "PROTOCOLS",
    "Backend",
    "RunResult",
    "backend_names",
    "backends_for",
    "fallback_backend",
    "get_backend",
    "make_protocol",
    "protocol_key",
    "register_backend",
    "register_protocol",
    "run",
    "select_backend",
]
