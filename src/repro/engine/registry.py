"""Protocol and backend registries for the unified execution engine.

Two registries, both plain-data and extensible:

* :data:`PROTOCOLS` — name → protocol *factory* (factories, not
  instances, because rule closures are not picklable: each worker
  process rebuilds the protocol locally).  This is the registry that
  used to live in ``repro.parallel.trial_runner``; it is re-exported
  there for compatibility.
* :data:`BACKENDS` — ``(protocol, daemon, backend)`` → :class:`Backend`:
  a runner callable plus a capability set and a ``supports`` predicate.
  Registering a protocol automatically registers the reference engine
  as its ``"reference"`` backend under every daemon; kernels register
  explicitly with higher priority so ``backend="auto"`` selection
  (:mod:`repro.engine.select`) prefers them when they apply.

Everything here is import-light by design: protocol factories and
backend runners import their implementation modules lazily inside the
call, so ``repro.engine`` can be imported from anywhere (including
``repro.core.executor``) without cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.engine.result import RunResult
from repro.errors import ExperimentError

#: Daemons the engine can dispatch to (the budget keyword differs per
#: daemon: max_rounds / max_moves / max_rounds / max_steps).
DAEMONS: Tuple[str, ...] = (
    "synchronous",
    "central",
    "synchronized-central",
    "distributed",
)

#: Registered protocol factories, keyed by the names trial specs carry.
PROTOCOLS: Dict[str, Callable[[], object]] = {}

#: Capabilities of the reference engine: it can do everything.
REFERENCE_CAPABILITIES = frozenset(
    {"move_log", "history", "monitors", "rng", "active_set", "telemetry",
     "faults"}
)

Runner = Callable[..., RunResult]
SupportsFn = Callable[[object, object, object, Mapping[str, object]], bool]


@dataclass(frozen=True)
class Backend:
    """One registered way to execute one protocol under one daemon.

    ``runner(protocol, graph, config, *, rng, max_rounds,
    record_history, raise_on_timeout, **options)`` must return a
    :class:`~repro.engine.result.RunResult`.  ``capabilities`` is a
    static advertisement (``"move_log"``, ``"history"``, ...);
    ``supports`` is the dynamic predicate ``backend="auto"`` consults —
    it sees the concrete protocol instance, graph, configuration and
    the merged option mapping (including ``record_history`` and
    ``monitors``) and must return whether this backend reproduces the
    reference semantics for that run.
    """

    protocol: str
    daemon: str
    name: str
    runner: Runner
    capabilities: frozenset = frozenset()
    priority: int = 0
    supports_fn: Optional[SupportsFn] = None

    def supports(
        self,
        protocol: object,
        graph: object,
        config: object = None,
        options: Mapping[str, object] = {},
    ) -> bool:
        if self.supports_fn is None:
            return True
        return self.supports_fn(protocol, graph, config, options)


#: (protocol, daemon, backend-name) → Backend
BACKENDS: Dict[Tuple[str, str, str], Backend] = {}


# ----------------------------------------------------------------------
# protocol registry
# ----------------------------------------------------------------------
def register_protocol(name: str, factory: Callable[[], object]) -> None:
    """Register a protocol factory for use in trial specs and
    :func:`repro.engine.run`.

    The reference engine is automatically registered as the
    ``"reference"`` backend of the protocol under every daemon.
    """
    PROTOCOLS[name] = factory
    for daemon in DAEMONS:
        key = (name, daemon, "reference")
        if key not in BACKENDS:
            BACKENDS[key] = reference_backend(name, daemon)


def make_protocol(name: str) -> object:
    """Build a fresh protocol instance from its registered name."""
    try:
        factory = PROTOCOLS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}"
        ) from None
    return factory()


def protocol_key(protocol: object) -> Optional[str]:
    """The registered name whose factory builds this protocol's exact
    type, or ``None``.

    Used to look up backends when :func:`repro.engine.run` is handed a
    protocol *instance*; backend ``supports`` predicates still vet the
    instance (e.g. injected choosers disqualify the kernels).
    """
    for name, factory in PROTOCOLS.items():
        try:
            if type(factory()) is type(protocol):
                return name
        except Exception:  # pragma: no cover - defensive: bad factory
            continue
    return None


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
def register_backend(
    protocol: str,
    daemon: str,
    name: str,
    runner: Runner,
    *,
    capabilities: frozenset = frozenset(),
    priority: int = 0,
    supports: Optional[SupportsFn] = None,
) -> None:
    """Register (or replace) a backend for ``(protocol, daemon)``."""
    BACKENDS[(protocol, daemon, name)] = Backend(
        protocol=protocol,
        daemon=daemon,
        name=name,
        runner=runner,
        capabilities=frozenset(capabilities),
        priority=priority,
        supports_fn=supports,
    )


def get_backend(protocol: str, daemon: str, name: str) -> Backend:
    """Look up one backend; raises :class:`ExperimentError` if absent."""
    try:
        return BACKENDS[(protocol, daemon, name)]
    except KeyError:
        known = backend_names(protocol, daemon)
        raise ExperimentError(
            f"unknown backend {name!r} for protocol {protocol!r} under the "
            f"{daemon!r} daemon; registered: {known}"
        ) from None


def backends_for(protocol: str, daemon: str = "synchronous") -> List[Backend]:
    """All backends registered for ``(protocol, daemon)``, highest
    priority first (name-ordered within a priority tier)."""
    found = [
        b
        for (p, d, _), b in BACKENDS.items()
        if p == protocol and d == daemon
    ]
    return sorted(found, key=lambda b: (-b.priority, b.name))


def backend_names(protocol: str, daemon: str = "synchronous") -> List[str]:
    """Registered backend names for ``(protocol, daemon)``."""
    return [b.name for b in backends_for(protocol, daemon)]


# ----------------------------------------------------------------------
# the reference backend (works for every protocol)
# ----------------------------------------------------------------------
def _reference_runner(daemon: str) -> Runner:
    def runner(
        protocol,
        graph,
        config=None,
        *,
        rng=None,
        max_rounds=None,
        record_history=False,
        raise_on_timeout=False,
        **options,
    ) -> RunResult:
        from repro.core import executor

        if daemon == "synchronous":
            return executor.run_synchronous(
                protocol,
                graph,
                config,
                rng=rng,
                max_rounds=max_rounds,
                record_history=record_history,
                raise_on_timeout=raise_on_timeout,
                **options,
            )
        if daemon == "central":
            return executor.run_central(
                protocol,
                graph,
                config,
                rng=rng,
                max_moves=max_rounds,
                record_history=record_history,
                raise_on_timeout=raise_on_timeout,
                **options,
            )
        if daemon == "synchronized-central":
            from repro.core.transform import run_synchronized_central

            return run_synchronized_central(
                protocol,
                graph,
                config,
                rng=rng,
                max_rounds=max_rounds,
                record_history=record_history,
                raise_on_timeout=raise_on_timeout,
                **options,
            )
        if daemon == "distributed":
            return executor.run_distributed(
                protocol,
                graph,
                config,
                rng=rng,
                max_steps=max_rounds,
                record_history=record_history,
                raise_on_timeout=raise_on_timeout,
                **options,
            )
        raise ExperimentError(
            f"unknown daemon {daemon!r}; known: {list(DAEMONS)}"
        )  # pragma: no cover - guarded upstream

    return runner


def reference_backend(protocol: str, daemon: str) -> Backend:
    """A reference-engine :class:`Backend` for ``(protocol, daemon)``.

    Always available — the reference engine runs any protocol under any
    daemon; ``supports`` is unconditionally true."""
    return Backend(
        protocol=protocol,
        daemon=daemon,
        name="reference",
        runner=_reference_runner(daemon),
        capabilities=REFERENCE_CAPABILITIES,
        priority=0,
    )


# ----------------------------------------------------------------------
# built-in registrations (all lazy — nothing imported until called)
# ----------------------------------------------------------------------
def _factory(module: str, attr: str) -> Callable[[], object]:
    def make() -> object:
        return getattr(importlib.import_module(module), attr)()

    return make


def _lazy_runner(module: str, attr: str) -> Runner:
    def runner(*args, **kwargs) -> RunResult:
        return getattr(importlib.import_module(module), attr)(*args, **kwargs)

    return runner


def _options_ok(options: Mapping[str, object], allowed: frozenset) -> bool:
    """A kernel supports a run only when every truthy option is one it
    implements (``monitors=()``, ``record_history=False`` are falsy and
    therefore always fine)."""
    return all(key in allowed or not value for key, value in options.items())


def _supports_kernel(type_path: str, allowed: frozenset = frozenset()):
    """Supports-predicate for a kernel: the protocol must be exactly the
    published type (no subclass, no injected choosers — see the SMM
    special case below) and no unsupported option may be requested."""
    module, _, cls_name = type_path.rpartition(".")

    def supports(protocol, graph, config, options) -> bool:
        cls = getattr(importlib.import_module(module), cls_name)
        return type(protocol) is cls and _options_ok(options, allowed)

    return supports


def _supports_plain_smm(allowed: frozenset = frozenset()):
    """The SMM kernels hardwire min-id choice in R1 and R2, so they
    apply only to :class:`SynchronousMaximalMatching` instances whose
    choosers are both the published ``min_id_chooser``."""

    def supports(protocol, graph, config, options) -> bool:
        from repro.matching.smm import SynchronousMaximalMatching, min_id_chooser

        return (
            type(protocol) is SynchronousMaximalMatching
            and protocol._accept is min_id_chooser
            and protocol._propose is min_id_chooser
            and _options_ok(options, allowed)
        )

    return supports


def _make_arbitrary_clockwise() -> object:
    from repro.matching.variants import (
        ArbitraryChoiceSMM,
        cyclic_successor_chooser,
    )

    return ArbitraryChoiceSMM(cyclic_successor_chooser)


def _make_smm_max_accept() -> object:
    from repro.matching.smm import SynchronousMaximalMatching, max_id_chooser

    return SynchronousMaximalMatching(accept_chooser=max_id_chooser)


def _register_builtins() -> None:
    # protocols (factories — instances are rebuilt in each worker)
    register_protocol(
        "smm", _factory("repro.matching.smm", "SynchronousMaximalMatching")
    )
    register_protocol(
        "sis", _factory("repro.mis.sis", "SynchronousMaximalIndependentSet")
    )
    register_protocol(
        "hsu-huang", _factory("repro.matching.hsu_huang", "HsuHuangMatching")
    )
    register_protocol("luby", _factory("repro.mis.variants", "LubyStyleMIS"))
    register_protocol(
        "mis-central", _factory("repro.mis.variants", "CentralDaemonMIS")
    )
    register_protocol(
        "smm-randomized", _factory("repro.matching.variants", "RandomizedSMM")
    )
    register_protocol("smm-arbitrary-clockwise", _make_arbitrary_clockwise)
    register_protocol("smm-max-accept", _make_smm_max_accept)

    # kernel backends (runners are the kernel modules' engine adapters).
    # every kernel implements cheap telemetry collection (it already
    # computes the per-rule fire masks; summing them is nearly free), so
    # requesting telemetry never disqualifies the fast path.
    telemetry = frozenset({"telemetry"})
    active = frozenset({"active_set"}) | telemetry
    # the batch kernels additionally execute whole groups of
    # same-(graph, protocol) trial specs as one (k, n) stepping op; the
    # trial runner's batch-sweep planner looks for this capability
    batch_sweep = frozenset({"batch_sweep"})
    # the vectorized SMM/SIS kernels also run fault campaigns on the
    # dense arrays; "faults" is the capability, "fault_plan" the option
    # name their supports-predicates must whitelist
    faulty = active | frozenset({"faults"})
    faulty_options = active | frozenset({"fault_plan"})
    register_backend(
        "smm",
        "synchronous",
        "vectorized",
        _lazy_runner("repro.matching.smm_vectorized", "run_engine"),
        capabilities=faulty,
        priority=20,
        supports=_supports_plain_smm(faulty_options),
    )
    register_backend(
        "smm",
        "synchronous",
        "batch",
        _lazy_runner("repro.matching.smm_batch", "run_engine"),
        capabilities=telemetry | batch_sweep,
        priority=10,
        supports=_supports_plain_smm(telemetry),
    )
    register_backend(
        "sis",
        "synchronous",
        "vectorized",
        _lazy_runner("repro.mis.sis_vectorized", "run_engine"),
        capabilities=faulty,
        priority=20,
        supports=_supports_kernel(
            "repro.mis.sis.SynchronousMaximalIndependentSet", faulty_options
        ),
    )
    register_backend(
        "sis",
        "synchronous",
        "batch",
        _lazy_runner("repro.mis.sis_batch", "run_engine"),
        capabilities=telemetry | batch_sweep,
        priority=10,
        supports=_supports_kernel(
            "repro.mis.sis.SynchronousMaximalIndependentSet", telemetry
        ),
    )
    register_backend(
        "luby",
        "synchronous",
        "vectorized",
        _lazy_runner("repro.mis.luby_vectorized", "run_engine"),
        capabilities=frozenset({"rng"}) | telemetry,
        priority=20,
        supports=_supports_kernel("repro.mis.variants.LubyStyleMIS", telemetry),
    )


_register_builtins()
