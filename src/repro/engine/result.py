"""The one result type every execution backend returns.

:class:`RunResult` is the unified record of a protocol run, whatever
produced it — the reference view-based engine, a vectorized NumPy
kernel, or a batch kernel.  The *summary* fields (stabilization flag,
round/move accounting, initial/final configurations, legitimacy) are
always populated; the *trace* fields (``move_log``, ``history``) are
populated only when the backend can produce them (``None`` otherwise —
the backend's registered capabilities say which, see
:mod:`repro.engine.registry`).

``legitimate`` is always ``protocol.is_legitimate(graph, final)``
evaluated once by the backend adapter, so legitimacy means the same
thing for every backend.

:class:`repro.core.executor.Execution` is a thin deprecated subclass
kept for backward compatibility; new code should type against
:class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ExperimentError, StabilizationTimeout
from repro.types import NodeId

if TYPE_CHECKING:  # import-light on purpose: repro.core.executor
    # imports this module, so importing repro.core here would cycle.
    from repro.core.configuration import Configuration
    from repro.observability import RunTelemetry


@dataclass
class RunResult:
    """Record of one protocol run, backend-independent.

    Attributes
    ----------
    protocol_name / daemon:
        What ran and under which daemon ("synchronous", "central:<strategy>",
        "distributed", "sync-central-refined:<priority>").
    stabilized:
        True iff a configuration with no privileged node was reached
        within the budget.
    rounds:
        Daemon ticks *elapsed* before quiescence was detected (the
        paper's round notion): under the synchronous, distributed and
        synchronized-central daemons every round counts — including
        rounds in which a randomized protocol moved no node (the
        beacons were still exchanged; such rounds appear as ``{}``
        entries in ``move_log``).  Central daemon: equals ``moves``
        (one move per step by definition; a randomized protocol's
        unlucky zero-move draws consume budget but are not counted).
    moves:
        Total rule firings.
    moves_by_rule:
        Firing count per rule name.
    initial / final:
        First and last configurations.
    move_log:
        ``move_log[t]`` maps each node that moved in round/step ``t`` to
        the rule name it fired — or ``None`` when the backend does not
        record per-move traces (the kernels).
    history:
        When recorded: ``history[0]`` is the initial configuration and
        ``history[t]`` the configuration after round/step ``t`` (so
        ``history[-1] == final``).  ``None`` when not recorded.
    legitimate:
        Whether the final configuration satisfies the protocol's global
        predicate (evaluated once at the end, identically for every
        backend).
    backend:
        Name of the backend that produced this result (``"reference"``,
        ``"vectorized"``, ``"batch"``, ...).
    telemetry:
        :class:`~repro.observability.RunTelemetry` when the run was
        made with ``telemetry=True`` (per-round moves by rule, node-type
        census, phase wall-clocks); ``None`` otherwise.  Every built-in
        backend advertises the ``"telemetry"`` capability, so requesting
        it never forces a run off the fast path.
    trace:
        Exported span dicts (:mod:`repro.observability.tracing`) when
        the run was traced in a worker process — the fragment rides the
        pickled result back to the parent, which grafts it into the
        sweep's trace; ``None`` otherwise (in-process traced runs
        record into the ambient tracer directly).
    elapsed:
        Wall-clock seconds of the backend call, stamped by
        :func:`repro.engine.run` in the executing process (two
        ``perf_counter`` reads — free).  The metrics layer's
        ``repro_trial_latency_seconds`` histogram observes this, so
        latency needs no telemetry collection.  ``None`` for results
        built outside the engine front door (deserialized checkpoints,
        hand-constructed records).  Non-deterministic by nature; never
        compared, never serialized.
    """

    protocol_name: str
    daemon: str
    stabilized: bool
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    initial: Configuration
    final: Configuration
    move_log: Optional[List[Dict[NodeId, str]]] = None
    history: Optional[List[Configuration]] = None
    legitimate: bool = False
    backend: str = "reference"
    telemetry: Optional[RunTelemetry] = None
    trace: Optional[List[dict]] = None
    elapsed: Optional[float] = None

    def rounds_to_stabilize(self) -> int:
        """Rounds actually needed (alias of :attr:`rounds`); raises if
        the run did not stabilize."""
        if not self.stabilized:
            raise StabilizationTimeout(
                f"{self.protocol_name} did not stabilize within budget", self
            )
        return self.rounds

    def moved_nodes(self) -> frozenset[NodeId]:
        """All nodes that fired at least one rule during the run.

        Requires a backend that records the move log (capability
        ``"move_log"``); kernel results raise."""
        if self.move_log is None:
            raise ExperimentError(
                f"the {self.backend!r} backend recorded no move log for "
                f"{self.protocol_name}; use backend='reference'"
            )
        out: set[NodeId] = set()
        for entry in self.move_log:
            out.update(entry)
        return frozenset(out)
