"""Backend selection and the engine's single dispatch path.

:func:`run` is the front door every caller — trial specs, the CLI, the
experiments — goes through:

* ``backend="auto"`` walks the registered backends of the protocol in
  priority order and picks the first whose ``supports`` predicate
  accepts the concrete run.  In practice: the vectorized kernel for
  plain SMM/SIS/Luby runs with no monitors, no history recording and no
  injected choosers; the reference engine otherwise.
* ``backend="reference"`` / ``"vectorized"`` / ``"batch"`` force one
  backend explicitly (benchmarks, equivalence tests); an explicit
  backend that cannot honour the run's requirements raises rather than
  silently degrading.

Every backend returns the same :class:`~repro.engine.result.RunResult`
type and identical summary semantics — cross-backend equivalence
(byte-identical final configuration, round count and per-rule move
counts) is pinned by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.engine import registry
from repro.engine.result import RunResult
from repro.errors import ExperimentError


def _resolve_protocol(protocol) -> tuple[Optional[str], object]:
    """``(registry key, instance)`` from a name or an instance."""
    if isinstance(protocol, str):
        return protocol, registry.make_protocol(protocol)
    return registry.protocol_key(protocol), protocol


def select_backend(
    protocol: object,
    graph,
    config=None,
    *,
    key: Optional[str] = None,
    daemon: str = "synchronous",
    backend: str = "auto",
    record_history: bool = False,
    **options,
) -> registry.Backend:
    """The backend :func:`run` would dispatch this call to.

    ``protocol`` is a protocol *instance* (use :func:`run` for names).
    Raises :class:`ExperimentError` for an unknown explicit backend, or
    an explicit backend whose ``supports`` predicate rejects the run.
    """
    if key is None:
        key = registry.protocol_key(protocol)
    query: dict = dict(options)
    query["record_history"] = record_history
    if backend == "auto":
        if key is not None:
            for candidate in registry.backends_for(key, daemon):
                if candidate.supports(protocol, graph, config, query):
                    return candidate
        # unregistered protocol type: the reference engine runs anything
        return registry.reference_backend(key or "?", daemon)
    if key is None:
        if backend == "reference":
            return registry.reference_backend("?", daemon)
        raise ExperimentError(
            f"backend {backend!r} requires a registered protocol; "
            f"register_protocol() the type of {type(protocol).__name__} first"
        )
    chosen = registry.get_backend(key, daemon, backend)
    if not chosen.supports(protocol, graph, config, query):
        wanted = sorted(k for k, v in query.items() if v)
        raise ExperimentError(
            f"backend {backend!r} does not support this run of {key!r}"
            + (f" (requested: {wanted})" if wanted else "")
            + "; use backend='reference' or backend='auto'"
        )
    return chosen


#: Option name → the registry capability it requires.  Options not
#: listed here require a capability of their own name (``monitors`` →
#: ``"monitors"``, ``telemetry`` → ``"telemetry"``, ``active_set`` →
#: ``"active_set"``, an injected chooser or daemon strategy → itself),
#: which only backends that implement them advertise.
_OPTION_CAPABILITIES = {"record_history": "history", "fault_plan": "faults"}


def fallback_backend(
    protocol: str,
    daemon: str = "synchronous",
    backend: str = "reference",
    *,
    record_history: bool = False,
    monitors: object = (),
    telemetry: bool = False,
    **options: object,
) -> str:
    """Statically degrade a *requested* backend name to ``"reference"``
    when it is not registered for ``(protocol, daemon)`` or lacks a
    needed capability.

    Experiments use this when building heterogeneous spec batches
    (e.g. E5 mixes SMM with central-daemon Hsu–Huang): the user's
    ``--backend vectorized`` applies where it exists and the rest run
    on the reference engine instead of erroring.  ``"auto"`` and
    ``"reference"`` pass through untouched — ``auto`` already degrades
    per run, dynamically.

    *Every* truthy capability-bearing option degrades, not just
    ``record_history``: ``monitors``, the ``telemetry`` flag, and any
    extra runner option (mapped to a capability via
    :data:`_OPTION_CAPABILITIES`, or to a capability of its own name).
    Since every built-in backend advertises ``"telemetry"``,
    ``telemetry=True`` alone never degrades.
    """
    if backend in ("auto", "reference"):
        return backend
    found = registry.BACKENDS.get((protocol, daemon, backend))
    if found is None:
        return "reference"
    requested = dict(options)
    requested["record_history"] = record_history
    requested["monitors"] = monitors
    requested["telemetry"] = telemetry
    for option, value in requested.items():
        if not value:
            continue
        capability = _OPTION_CAPABILITIES.get(option, option)
        if capability not in found.capabilities:
            return "reference"
    return backend


def run(
    protocol,
    graph,
    config=None,
    *,
    daemon: str = "synchronous",
    backend: str = "auto",
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    **options,
) -> RunResult:
    """Run ``protocol`` on ``graph`` through the selected backend.

    Parameters
    ----------
    protocol:
        A registered protocol name (``"smm"``, ``"sis"``, ...) or a
        protocol instance.
    daemon:
        One of :data:`repro.engine.registry.DAEMONS`.
    backend:
        ``"auto"`` (default; highest-priority applicable backend, the
        reference engine as the universal fallback) or an explicit
        registered backend name.
    rng / max_rounds / record_history / raise_on_timeout / options:
        Forwarded to the backend runner.  ``max_rounds`` is the budget
        whatever the daemon calls it (moves for central, steps for
        distributed); each backend applies the reference engine's
        documented default when omitted.  Extra ``options`` (monitors,
        daemon strategy, ``active_set``, ``telemetry=True``, ...)
        participate in backend selection: a backend that cannot honour
        them is skipped by ``auto`` and rejected when explicit.  Every
        built-in backend implements ``telemetry``, so requesting it
        keeps plain SMM/SIS runs on the vectorized kernel.

    Returns
    -------
    RunResult
        With ``result.backend`` naming the backend that ran.
    """
    key, instance = _resolve_protocol(protocol)
    if daemon not in registry.DAEMONS:
        raise ExperimentError(
            f"unknown daemon {daemon!r}; known: {list(registry.DAEMONS)}"
        )
    chosen = select_backend(
        instance,
        graph,
        config,
        key=key,
        daemon=daemon,
        backend=backend,
        record_history=record_history,
        **options,
    )
    result = chosen.runner(
        instance,
        graph,
        config,
        rng=rng,
        max_rounds=max_rounds,
        record_history=record_history,
        raise_on_timeout=raise_on_timeout,
        **options,
    )
    result.backend = chosen.name
    return result
