"""Backend selection and the engine's single dispatch path.

:func:`run` is the front door every caller — trial specs, the CLI, the
experiments — goes through:

* ``backend="auto"`` walks the registered backends of the protocol in
  priority order and picks the first whose ``supports`` predicate
  accepts the concrete run.  In practice: the vectorized kernel for
  plain SMM/SIS/Luby runs with no monitors, no history recording and no
  injected choosers; the reference engine otherwise.
* ``backend="reference"`` / ``"vectorized"`` / ``"batch"`` force one
  backend explicitly (benchmarks, equivalence tests); an explicit
  backend that cannot honour the run's requirements raises rather than
  silently degrading.

Every backend returns the same :class:`~repro.engine.result.RunResult`
type and identical summary semantics — cross-backend equivalence
(byte-identical final configuration, round count and per-rule move
counts) is pinned by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.engine import registry
from repro.engine.result import RunResult
from repro.errors import ExperimentError


def _resolve_protocol(protocol) -> tuple[Optional[str], object]:
    """``(registry key, instance)`` from a name or an instance."""
    if isinstance(protocol, str):
        return protocol, registry.make_protocol(protocol)
    return registry.protocol_key(protocol), protocol


def select_backend(
    protocol: object,
    graph,
    config=None,
    *,
    key: Optional[str] = None,
    daemon: str = "synchronous",
    backend: str = "auto",
    record_history: bool = False,
    **options,
) -> registry.Backend:
    """The backend :func:`run` would dispatch this call to.

    ``protocol`` is a protocol *instance* (use :func:`run` for names).
    Raises :class:`ExperimentError` for an unknown explicit backend, or
    an explicit backend whose ``supports`` predicate rejects the run.
    """
    if key is None:
        key = registry.protocol_key(protocol)
    query: dict = dict(options)
    query["record_history"] = record_history
    if backend == "auto":
        if key is not None:
            for candidate in registry.backends_for(key, daemon):
                if candidate.supports(protocol, graph, config, query):
                    return candidate
        # unregistered protocol type: the reference engine runs anything
        return registry.reference_backend(key or "?", daemon)
    if key is None:
        if backend == "reference":
            return registry.reference_backend("?", daemon)
        raise ExperimentError(
            f"backend {backend!r} requires a registered protocol; "
            f"register_protocol() the type of {type(protocol).__name__} first"
        )
    chosen = registry.get_backend(key, daemon, backend)
    if not chosen.supports(protocol, graph, config, query):
        wanted = sorted(k for k, v in query.items() if v)
        raise ExperimentError(
            f"backend {backend!r} does not support this run of {key!r}"
            + (f" (requested: {wanted})" if wanted else "")
            + "; use backend='reference' or backend='auto'"
        )
    return chosen


#: Option name → the registry capability it requires.  Options not
#: listed here require a capability of their own name (``monitors`` →
#: ``"monitors"``, ``telemetry`` → ``"telemetry"``, ``active_set`` →
#: ``"active_set"``, an injected chooser or daemon strategy → itself),
#: which only backends that implement them advertise.
_OPTION_CAPABILITIES = {"record_history": "history", "fault_plan": "faults"}


def fallback_backend(
    protocol: str,
    daemon: str = "synchronous",
    backend: str = "reference",
    *,
    record_history: bool = False,
    monitors: object = (),
    telemetry: bool = False,
    **options: object,
) -> str:
    """Statically degrade a *requested* backend name to ``"reference"``
    when it is not registered for ``(protocol, daemon)`` or lacks a
    needed capability.

    Experiments use this when building heterogeneous spec batches
    (e.g. E5 mixes SMM with central-daemon Hsu–Huang): the user's
    ``--backend vectorized`` applies where it exists and the rest run
    on the reference engine instead of erroring.  ``"auto"`` and
    ``"reference"`` pass through untouched — ``auto`` already degrades
    per run, dynamically.

    *Every* truthy capability-bearing option degrades, not just
    ``record_history``: ``monitors``, the ``telemetry`` flag, and any
    extra runner option (mapped to a capability via
    :data:`_OPTION_CAPABILITIES`, or to a capability of its own name).
    Since every built-in backend advertises ``"telemetry"``,
    ``telemetry=True`` alone never degrades.

    A degradation increments ``repro_backend_fallbacks_total`` in the
    ambient metrics registry (when one is installed) — fallbacks are
    visible, never silent.
    """
    if backend in ("auto", "reference"):
        return backend
    found = registry.BACKENDS.get((protocol, daemon, backend))
    requested = dict(options)
    requested["record_history"] = record_history
    requested["monitors"] = monitors
    requested["telemetry"] = telemetry
    degraded = found is None
    if not degraded:
        for option, value in requested.items():
            if not value:
                continue
            capability = _OPTION_CAPABILITIES.get(option, option)
            if capability not in found.capabilities:
                degraded = True
                break
    if not degraded:
        return backend
    from repro.observability import metrics as _metrics

    registry_now = _metrics.current_registry()
    if registry_now is not None:
        registry_now.counter(
            "repro_backend_fallbacks_total",
            "Requested backends statically degraded to the reference "
            "engine (missing registration or capability)",
        ).inc(protocol=protocol, requested=backend)
    return "reference"


def run(
    protocol,
    graph,
    config=None,
    *,
    daemon: str = "synchronous",
    backend: str = "auto",
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    **options,
) -> RunResult:
    """Run ``protocol`` on ``graph`` through the selected backend.

    Parameters
    ----------
    protocol:
        A registered protocol name (``"smm"``, ``"sis"``, ...) or a
        protocol instance.
    daemon:
        One of :data:`repro.engine.registry.DAEMONS`.
    backend:
        ``"auto"`` (default; highest-priority applicable backend, the
        reference engine as the universal fallback) or an explicit
        registered backend name.
    rng / max_rounds / record_history / raise_on_timeout / options:
        Forwarded to the backend runner.  ``max_rounds`` is the budget
        whatever the daemon calls it (moves for central, steps for
        distributed); each backend applies the reference engine's
        documented default when omitted.  Extra ``options`` (monitors,
        daemon strategy, ``active_set``, ``telemetry=True``, ...)
        participate in backend selection: a backend that cannot honour
        them is skipped by ``auto`` and rejected when explicit.  Every
        built-in backend implements ``telemetry``, so requesting it
        keeps plain SMM/SIS runs on the vectorized kernel.

    Returns
    -------
    RunResult
        With ``result.backend`` naming the backend that ran.

    Notes
    -----
    When a tracer is ambiently installed
    (:func:`repro.observability.use_tracer` — the CLI's ``--trace``),
    the call is wrapped in a ``run:<protocol>`` span.  Runs that carry
    telemetry — ``telemetry=True``, or a fault campaign (which always
    attaches it) — additionally get ``setup`` / ``rounds`` /
    ``finalize`` phase children synthesized from the telemetry
    wall-clocks.  Tracing never asks the backend for anything: a plain
    traced run stays on the exact code path of an untraced one (span
    bookkeeping is two clock reads around the call), which is what
    keeps the observability overhead inside the benchmark pin
    (``benchmarks/test_bench_observability.py``).

    Every result is stamped with ``elapsed`` — the wall-clock of the
    backend call — which the metrics layer turns into the
    ``repro_trial_latency_seconds`` histogram without collecting
    telemetry.
    """
    key, instance = _resolve_protocol(protocol)
    if daemon not in registry.DAEMONS:
        raise ExperimentError(
            f"unknown daemon {daemon!r}; known: {list(registry.DAEMONS)}"
        )
    chosen = select_backend(
        instance,
        graph,
        config,
        key=key,
        daemon=daemon,
        backend=backend,
        record_history=record_history,
        **options,
    )
    from repro.observability import tracing

    tracer = tracing.current_tracer()
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"run:{key or type(instance).__name__}",
            protocol=key or type(instance).__name__,
            daemon=daemon,
            backend=chosen.name,
        )
    start = time.perf_counter()
    try:
        result = chosen.runner(
            instance,
            graph,
            config,
            rng=rng,
            max_rounds=max_rounds,
            record_history=record_history,
            raise_on_timeout=raise_on_timeout,
            **options,
        )
    finally:
        if span is not None:
            tracer.end(span)
    result.elapsed = time.perf_counter() - start
    if span is not None:
        span.attrs.update(
            rounds=result.rounds,
            moves=result.moves,
            stabilized=result.stabilized,
            n=getattr(graph, "n", None),
        )
        _add_phase_spans(span, result.telemetry)
    result.backend = chosen.name
    return result


def _add_phase_spans(span, telemetry) -> None:
    """Synthesize ``setup``/``rounds``/``finalize`` children of a run
    span from the telemetry phase wall-clocks.

    The recorder's phases are sequential, so the children tile the run
    span: setup from the start, finalize up to the end, rounds the
    stretch between — which by construction contains any fault-event
    spans the campaign driver recorded live during stepping.
    """
    if telemetry is None or not telemetry.timings:
        return
    start, end = span.ts, span.ts + span.dur
    setup = float(telemetry.timings.get("setup", 0.0))
    finalize = float(telemetry.timings.get("finalize", 0.0))
    rounds_start = min(start + setup, end)
    rounds_end = max(end - finalize, rounds_start)
    span.child("phase:setup", start, rounds_start - start)
    span.child(
        "phase:rounds",
        rounds_start,
        rounds_end - rounds_start,
        rounds=telemetry.rounds,
    )
    span.child("phase:finalize", rounds_end, end - rounds_end)
