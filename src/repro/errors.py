"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine bugs (``TypeError``/``ValueError`` from misuse are
still raised directly where appropriate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library-specific exceptions."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or graph operations."""


class NotConnectedError(GraphError):
    """Raised when an operation requires a connected topology.

    The paper's system model (Section 2) assumes the network graph stays
    connected; generators and mutators raise this when the assumption
    cannot be met.
    """


class ProtocolError(ReproError):
    """Raised when a protocol definition or its use is inconsistent."""


class InvalidConfigurationError(ProtocolError):
    """Raised when a configuration does not type-check for a protocol.

    Examples: a matching pointer referring to a non-neighbour, or an SIS
    flag that is not 0/1.
    """


class StabilizationTimeout(ReproError):
    """Raised when an execution exceeds its round/move budget.

    Carries the partial :class:`repro.core.executor.Execution` so that
    callers (e.g. the non-stabilization counterexample in experiment E4)
    can inspect the divergent run.
    """

    def __init__(self, message: str, execution: object | None = None) -> None:
        super().__init__(message)
        self.execution = execution


class SimulationError(ReproError):
    """Raised for inconsistencies inside the ad hoc network simulator."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is configured inconsistently."""
