"""Experiment harness: one module per reproduced paper artefact.

Every experiment exposes a ``run(...) -> ExperimentResult`` with seeded
defaults small enough for CI; the benchmarks call the same entry points
with paper-scale parameters.  See DESIGN.md §3 for the experiment
index (E1–E10) and EXPERIMENTS.md for recorded outcomes.
"""

from repro.experiments.common import (
    ExperimentResult,
    exhaustive_configurations,
    graph_workloads,
    initial_configurations,
)
from repro.experiments import (
    e1_smm_convergence,
    e2_sis_convergence,
    e3_transitions,
    e4_counterexample,
    e5_baseline,
    e6_growth,
    e7_churn,
    e8_adhoc,
    e9_transform,
    e10_scaling,
    e11_ablations,
    e12_id_sensitivity,
    e13_fault_recovery,
)

__all__ = [
    "ExperimentResult",
    "graph_workloads",
    "initial_configurations",
    "exhaustive_configurations",
    "e1_smm_convergence",
    "e2_sis_convergence",
    "e3_transitions",
    "e4_counterexample",
    "e5_baseline",
    "e6_growth",
    "e7_churn",
    "e8_adhoc",
    "e9_transform",
    "e10_scaling",
    "e11_ablations",
    "e12_id_sensitivity",
    "e13_fault_recovery",
]
