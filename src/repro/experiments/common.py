"""Shared experiment plumbing: result records, workload sweeps and
initial-configuration samplers.

Self-stabilization claims quantify over *all* initial configurations.
The harness approximates that quantifier three ways, matching DESIGN.md
§2's substitution note:

* **clean** — the protocol's designed start (all pointers null, all
  bits zero): measures the "deployment" cost;
* **random** — uniform over each node's local state space: measures the
  post-fault recovery cost the self-stabilization definition is about;
* **exhaustive** — for tiny graphs, literally every configuration:
  turns Theorem 1/2's universal claims into finite, fully-checked
  statements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.protocol import Protocol
from repro.core.faults import random_configuration
from repro.engine import RunResult, fallback_backend
from repro.errors import ExperimentError
from repro.graphs.generators import family as graph_family
from repro.graphs.graph import Graph
from repro.analysis.tables import render_table
from repro.parallel import TrialRunner, TrialSpec, run_trials
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId

__all__ = [
    "ExperimentResult",
    "RunResult",
    "SpecCell",
    "TrialRunner",
    "TrialSpec",
    "detect_cycle",
    "exhaustive_configurations",
    "fallback_backend",
    "graph_workloads",
    "initial_configurations",
    "local_state_space",
    "run_spec_groups",
    "run_trials",
]


@dataclass
class ExperimentResult:
    """Uniform result record printed by every experiment/benchmark."""

    experiment: str
    paper_artifact: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: object) -> None:
        self.rows.append(dict(row))

    def note(self, message: str) -> None:
        self.notes.append(message)

    def table(self, *, float_digits: int = 2) -> str:
        title = f"[{self.experiment}] {self.paper_artifact}"
        body = render_table(
            self.columns, self.rows, title=title, float_digits=float_digits
        )
        if self.notes:
            body += "\n" + "\n".join(f"  * {note}" for note in self.notes)
        return body

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]


# ----------------------------------------------------------------------
# workload sweeps
# ----------------------------------------------------------------------
def graph_workloads(
    families: Sequence[str],
    sizes: Sequence[int],
    seed: int,
    *,
    graphs_per_cell: int = 1,
) -> Iterator[Tuple[str, int, Graph, np.random.Generator]]:
    """Yield ``(family, n, graph, trial_rng)`` for a full sweep.

    Random families get ``graphs_per_cell`` independent samples per
    (family, n) cell; deterministic families yield one.  Every cell
    receives its own spawned RNG so cells are independently
    reproducible.
    """
    parent = ensure_rng(seed)
    for name in families:
        make = graph_family(name)
        deterministic = name in ("cycle", "path", "star", "complete")
        for n in sizes:
            count = 1 if deterministic else graphs_per_cell
            for _ in range(count):
                cell_rng = parent.spawn(1)[0]
                graph = make(n, cell_rng)
                yield name, n, graph, cell_rng


# ----------------------------------------------------------------------
# spec batches
# ----------------------------------------------------------------------
#: ``(family, graph, label, lo, hi)`` — one group of specs inside the
#: flat batch that :func:`run_spec_groups` executed: the group's results
#: are ``executions[lo:hi]``.
SpecCell = Tuple[str, Graph, object, int, int]


def run_spec_groups(
    families: Sequence[str],
    sizes: Sequence[int],
    seed: int,
    groups_for,
    *,
    jobs: Optional[int] = 1,
    telemetry: Optional[str] = None,
) -> Tuple[List["RunResult"], List[SpecCell]]:
    """Sweep workloads, collect trial specs, run them as one batch.

    The shape shared by E1/E2/E5/E6: walk :func:`graph_workloads`, build
    every cell's trial specs up front (so all RNG draws happen here, in
    the parent, in sweep order — the parallel fan-out stays bit-identical
    to serial execution), then fan the flat batch across ``jobs``.

    ``groups_for(family, graph, rng)`` yields ``(label, specs)`` pairs —
    one per output row the caller wants to aggregate (e.g. one per
    init mode).  Returns ``(executions, cells)`` where each cell
    ``(family, graph, label, lo, hi)`` marks its group's slice of the
    execution list.

    ``telemetry`` is a JSONL path: every spec is run with per-round
    telemetry collection (workers send it back inside their pickled
    results) and one record per trial is appended to the file, in spec
    order — deterministic whatever ``jobs`` is.
    """
    import dataclasses

    specs: List[TrialSpec] = []
    cells: List[SpecCell] = []
    for family, _n, graph, rng in graph_workloads(families, sizes, seed):
        for label, group in groups_for(family, graph, rng):
            start = len(specs)
            specs.extend(group)
            cells.append((family, graph, label, start, len(specs)))
    if telemetry is not None:
        specs = [dataclasses.replace(spec, telemetry=True) for spec in specs]
    executions = run_trials(specs, jobs=jobs)
    if telemetry is not None:
        from repro.observability import TelemetrySink

        sink = TelemetrySink(telemetry)
        records = []
        for family, graph, label, lo, hi in cells:
            for idx in range(lo, hi):
                result = executions[idx]
                records.append(
                    {
                        "family": family,
                        "n": graph.n,
                        "label": str(label),
                        "trial": idx - lo,
                        "telemetry": (
                            result.telemetry.to_dict()
                            if result.telemetry is not None
                            else None
                        ),
                    }
                )
        sink.write_many(records)
    return executions, cells


# ----------------------------------------------------------------------
# initial configurations
# ----------------------------------------------------------------------
def initial_configurations(
    protocol: Protocol,
    graph: Graph,
    mode: str,
    trials: int,
    rng: RngLike,
) -> Iterator[Configuration]:
    """Yield ``trials`` initial configurations of the requested mode.

    Modes: ``clean`` (one configuration, repeated), ``random``.
    Use :func:`exhaustive_configurations` for the exhaustive mode.
    """
    gen = ensure_rng(rng)
    if mode == "clean":
        clean = Configuration(
            {node: protocol.initial_state(node, graph) for node in graph.nodes}
        )
        for _ in range(trials):
            yield clean
    elif mode == "random":
        for _ in range(trials):
            yield random_configuration(protocol, graph, gen)
    else:
        raise ExperimentError(f"unknown initial-configuration mode {mode!r}")


def local_state_space(
    protocol: Protocol, graph: Graph, node: NodeId
) -> List[object]:
    """Enumerate a node's local state space for exhaustive sweeps.

    Supported protocols: pointer protocols (``{None} ∪ N(i)``) and bit
    protocols (``{0, 1}``), detected via their ``random_state``
    signature conventions — pointer protocols expose ``sanitize_state``;
    bit protocols validate 0/1.
    """
    # pointer protocols (matching family)
    if hasattr(protocol, "sanitize_state"):
        return [None, *graph.neighbors(node)]
    # bit protocols
    try:
        protocol.validate_state(node, graph, 0)
        protocol.validate_state(node, graph, 1)
        return [0, 1]
    except Exception as exc:  # pragma: no cover - defensive
        raise ExperimentError(
            f"cannot enumerate state space of {protocol.name}: {exc}"
        ) from exc


def exhaustive_configurations(
    protocol: Protocol, graph: Graph, *, limit: int = 500_000
) -> Iterator[Configuration]:
    """Every configuration of ``protocol`` on ``graph``.

    Raises :class:`ExperimentError` when the space exceeds ``limit``
    (the universal quantifier is only checkable on tiny graphs — e.g.
    SMM on C_4 has 3^4 = 81 configurations, SIS on any 8-node graph
    2^8 = 256).
    """
    spaces = [local_state_space(protocol, graph, node) for node in graph.nodes]
    total = 1
    for s in spaces:
        total *= len(s)
        if total > limit:
            raise ExperimentError(
                f"state space too large for exhaustion (> {limit})"
            )
    nodes = graph.nodes
    for combo in itertools.product(*spaces):
        yield Configuration(dict(zip(nodes, combo)))


def detect_cycle(
    history: Sequence[Configuration],
) -> Optional[Tuple[int, int]]:
    """Detect a repeated configuration in a run history.

    Returns ``(first_index, period)`` for the earliest recurrence, or
    ``None``.  Under a deterministic protocol and daemon, a recurrence
    proves a livelock — the certificate experiment E4 produces for the
    paper's counterexample.
    """
    seen: Dict[Configuration, int] = {}
    for idx, config in enumerate(history):
        if config in seen:
            return seen[config], idx - seen[config]
        seen[config] = idx
    return None
