"""E10 — engineering scaling: reference engine vs vectorized kernels.

Not a paper artefact — this experiment documents that the reproduction
itself scales (per the HPC guides: vectorize the measured hot loop and
verify equivalence).  For increasing n on sparse random graphs:

* the reference executor and the NumPy kernel run the same initial
  configuration; rounds must agree exactly and the final configurations
  must be identical (equivalence is also pinned by unit tests);
* wall-clock times for both give the speedup curve.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.experiments.common import ExperimentResult
from repro.graphs.generators import erdos_renyi_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.smm_vectorized import VectorizedSMM
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.sis_vectorized import VectorizedSIS
from repro.rng import ensure_rng

DEFAULT_SIZES = (64, 128, 256, 512)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    seed: int = 100,
    reference_cap: int = 512,
) -> ExperimentResult:
    """Time reference vs vectorized SMM/SIS; see module docstring.

    Sizes above ``reference_cap`` run only the vectorized kernel (the
    reference engine is O(rounds · m) Python and exists for clarity,
    not scale).
    """
    result = ExperimentResult(
        experiment="E10",
        paper_artifact="engineering — vectorized kernels match and outpace the reference engine",
        columns=[
            "protocol",
            "n",
            "rounds_ref",
            "rounds_vec",
            "agree",
            "t_ref_ms",
            "t_vec_ms",
            "speedup",
        ],
    )
    rng = ensure_rng(seed)

    for n in sizes:
        import math

        # expected degree ~ 3 ln n: sparse but connected w.h.p., so the
        # generator's connectivity-repair loop never spins
        p = min(1.0, 3.0 * math.log(max(n, 2)) / n)
        graph = erdos_renyi_graph(n, p, rng)

        # --- SMM ---
        smm = SynchronousMaximalMatching()
        config = random_configuration(smm, graph, rng)
        vec = VectorizedSMM(graph)
        t0 = time.perf_counter()
        vres = vec.run(config)
        t_vec = time.perf_counter() - t0
        if n <= reference_cap:
            t0 = time.perf_counter()
            ref = run_synchronous(smm, graph, config)
            t_ref = time.perf_counter() - t0
            agree = (
                ref.rounds == vres.rounds and vec.decode(vres.final_ptr) == ref.final
            )
            rounds_ref = ref.rounds
        else:
            t_ref, agree, rounds_ref = float("nan"), None, None
        result.add(
            protocol="SMM",
            n=n,
            rounds_ref=rounds_ref,
            rounds_vec=vres.rounds,
            agree=agree,
            t_ref_ms=t_ref * 1e3,
            t_vec_ms=t_vec * 1e3,
            speedup=(t_ref / t_vec) if t_vec > 0 and t_ref == t_ref else None,
        )

        # --- SIS ---
        sis = SynchronousMaximalIndependentSet()
        config = random_configuration(sis, graph, rng)
        vecs = VectorizedSIS(graph)
        t0 = time.perf_counter()
        vres2 = vecs.run(config)
        t_vec = time.perf_counter() - t0
        if n <= reference_cap:
            t0 = time.perf_counter()
            ref = run_synchronous(sis, graph, config)
            t_ref = time.perf_counter() - t0
            agree = (
                ref.rounds == vres2.rounds
                and vecs.decode(vres2.final_x) == ref.final
            )
            rounds_ref = ref.rounds
        else:
            t_ref, agree, rounds_ref = float("nan"), None, None
        result.add(
            protocol="SIS",
            n=n,
            rounds_ref=rounds_ref,
            rounds_vec=vres2.rounds,
            agree=agree,
            t_ref_ms=t_ref * 1e3,
            t_vec_ms=t_vec * 1e3,
            speedup=(t_ref / t_vec) if t_vec > 0 and t_ref == t_ref else None,
        )

    result.note(
        "agree must be yes wherever both engines ran; speedups grow with n"
    )
    return result
