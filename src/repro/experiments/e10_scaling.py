"""E10 — engineering scaling: reference engine vs registered kernels.

Not a paper artefact — this experiment documents that the reproduction
itself scales (per the HPC guides: vectorize the measured hot loop and
verify equivalence).  For increasing n on sparse random graphs, every
non-reference backend registered for the protocol in
:mod:`repro.engine` runs the same initial configuration as the
reference engine:

* rounds, the final configuration, the per-rule move counts and the
  legitimacy verdict must agree exactly (equivalence is also pinned by
  ``tests/test_engine_equivalence.py``);
* wall-clock times give the speedup curve per backend.

The backend list comes from the engine registry, so a newly registered
kernel joins this benchmark without touching this file.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

from repro.core.faults import random_configuration
from repro.engine import backends_for, make_protocol, run as engine_run
from repro.experiments.common import ExperimentResult
from repro.graphs.generators import erdos_renyi_graph
from repro.rng import ensure_rng

DEFAULT_SIZES = (64, 128, 256, 512)

#: the scaling workload: registry keys of the paper's two synchronous
#: protocols, with their display labels
PROTOCOL_KEYS = (("smm", "SMM"), ("sis", "SIS"))


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    seed: int = 100,
    reference_cap: int = 512,
) -> ExperimentResult:
    """Time the reference engine against every registered kernel.

    Sizes above ``reference_cap`` run only the kernels (the reference
    engine is O(rounds · m) Python and exists for clarity, not scale);
    those rows report ``agree=None``.  Kernel timings include backend
    dispatch and per-run kernel construction — the price any caller of
    :func:`repro.engine.run` actually pays.
    """
    result = ExperimentResult(
        experiment="E10",
        paper_artifact="engineering — registered kernels match and outpace the reference engine",
        columns=[
            "protocol",
            "n",
            "backend",
            "rounds_ref",
            "rounds_vec",
            "agree",
            "t_ref_ms",
            "t_vec_ms",
            "speedup",
        ],
    )
    rng = ensure_rng(seed)

    for n in sizes:
        # expected degree ~ 3 ln n: sparse but connected w.h.p., so the
        # generator's connectivity-repair loop never spins
        p = min(1.0, 3.0 * math.log(max(n, 2)) / n)
        graph = erdos_renyi_graph(n, p, rng)

        for key, label in PROTOCOL_KEYS:
            protocol = make_protocol(key)
            config = random_configuration(protocol, graph, rng)

            if n <= reference_cap:
                t0 = time.perf_counter()
                ref = engine_run(key, graph, config, backend="reference")
                t_ref = time.perf_counter() - t0
            else:
                ref, t_ref = None, float("nan")

            kernels = [
                b
                for b in backends_for(key, "synchronous")
                if b.name != "reference"
            ]
            for backend in kernels:
                t0 = time.perf_counter()
                res = engine_run(key, graph, config, backend=backend.name)
                t_vec = time.perf_counter() - t0
                if ref is not None:
                    agree = (
                        res.rounds == ref.rounds
                        and res.final == ref.final
                        and res.moves_by_rule == ref.moves_by_rule
                        and res.legitimate == ref.legitimate
                    )
                else:
                    agree = None
                result.add(
                    protocol=label,
                    n=n,
                    backend=backend.name,
                    rounds_ref=ref.rounds if ref is not None else None,
                    rounds_vec=res.rounds,
                    agree=agree,
                    t_ref_ms=t_ref * 1e3,
                    t_vec_ms=t_vec * 1e3,
                    speedup=(t_ref / t_vec) if t_vec > 0 and t_ref == t_ref else None,
                )

    result.note(
        "agree must be yes wherever both engines ran; speedups grow with n"
    )
    result.note(
        "backends enumerated from the repro.engine registry: "
        + ", ".join(
            f"{key}: {[b.name for b in backends_for(key, 'synchronous')]}"
            for key, _ in PROTOCOL_KEYS
        )
    )
    return result
