"""E11 — ablations of the reproduction's design choices (DESIGN.md §5).

Not a paper artefact; these sweeps justify knobs the paper leaves open:

* **R1 acceptance choice** — the paper says a node "may select" any
  proposer in rule R1 (only R2's choice is pinned to min-id).  The
  ablation runs SMM with min-id, max-id and random acceptance: all
  three must stay correct and within Theorem 1's bound, showing the
  bound's indifference to the R1 choice — and measuring whether the
  choice matters in practice (it barely does).
* **Beacon parameters** — the ad hoc substrate has two robustness
  knobs: beacon loss probability and the neighbour-eviction timeout
  (in beacon intervals).  The ablation sweeps both on a fixed static
  deployment and reports stabilization beacon-time.  Loss slows
  rounds (a node must hear *every* neighbour to act); an aggressive
  timeout near 1 beacon interval causes spurious evictions under
  jitter+loss, visible as extra protocol steps.
"""

from __future__ import annotations

from typing import Sequence

from repro.adhoc.mobility import StaticPlacement
from repro.adhoc.runner import run_until_stable
from repro.analysis.stats import summarize
from repro.analysis.theory import smm_round_bound
from repro.core.executor import run_synchronous
from repro.core.faults import random_configuration
from repro.experiments.common import ExperimentResult, graph_workloads
from repro.graphs.generators import random_geometric_graph
from repro.matching.smm import (
    SynchronousMaximalMatching,
    max_id_chooser,
    min_id_chooser,
)
from repro.matching.variants import RandomizedSMM
from repro.matching.verify import verify_execution
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.rng import ensure_rng


def run_acceptance_choosers(
    families: Sequence[str] = ("cycle", "tree", "er-sparse"),
    sizes: Sequence[int] = (8, 16, 32),
    *,
    trials: int = 10,
    seed: int = 120,
) -> ExperimentResult:
    """Ablate R1's acceptance choice; see module docstring."""
    result = ExperimentResult(
        experiment="E11-choosers",
        paper_artifact="ablation — R1 acceptance choice ('may select') does not affect Theorem 1",
        columns=[
            "family",
            "n",
            "accept",
            "rounds_mean",
            "rounds_max",
            "bound",
            "all_correct",
        ],
    )
    variants = (
        ("min-id", lambda: SynchronousMaximalMatching(accept_chooser=min_id_chooser)),
        ("max-id", lambda: SynchronousMaximalMatching(accept_chooser=max_id_chooser)),
        ("random", RandomizedSMM),  # random acceptance *and* proposal
    )
    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        bound = smm_round_bound(graph.n)
        configs = [
            random_configuration(SynchronousMaximalMatching(), graph, rng)
            for _ in range(trials)
        ]
        for label, make in variants:
            protocol = make()
            rounds = []
            ok = True
            for config in configs:
                budget = bound + 4 if label != "random" else 50 * graph.n
                ex = run_synchronous(
                    protocol, graph, config, rng=rng, max_rounds=budget
                )
                try:
                    verify_execution(graph, ex)
                except AssertionError:
                    ok = False
                    continue
                rounds.append(ex.rounds)
            stats = summarize(rounds)
            result.add(
                family=family,
                n=graph.n,
                accept=label,
                rounds_mean=stats.mean,
                rounds_max=int(stats.maximum),
                bound=bound,
                all_correct=ok,
            )
    result.note(
        "min-id and max-id acceptance stay within the deterministic n+1 "
        "bound (R2's min-id rule is what Theorem 1 needs); the fully "
        "random variant is correct but only almost-surely convergent"
    )
    return result


def run_beacon_parameters(
    n: int = 16,
    loss_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    timeout_factors: Sequence[float] = (1.5, 2.5, 4.0),
    *,
    trials: int = 4,
    seed: int = 121,
    t_b: float = 1.0,
) -> ExperimentResult:
    """Ablate the beacon substrate's loss / timeout knobs."""
    result = ExperimentResult(
        experiment="E11-beacon",
        paper_artifact="ablation — beacon loss and eviction timeout vs stabilization time",
        columns=[
            "protocol",
            "loss",
            "timeout_factor",
            "beacon_rounds_mean",
            "steps_mean",
            "all_stabilized",
        ],
    )
    rng = ensure_rng(seed)
    radius = 0.45
    protocols = (
        ("SIS", SynchronousMaximalIndependentSet),
        ("SMM", SynchronousMaximalMatching),
    )
    for name, make in protocols:
        for loss in loss_rates:
            for tf in timeout_factors:
                times, steps = [], []
                ok = True
                for _ in range(trials):
                    g, pos = random_geometric_graph(
                        n, radius, rng.spawn(1)[0], return_positions=True
                    )
                    res = run_until_stable(
                        make(),
                        StaticPlacement(pos),
                        radius=radius,
                        t_b=t_b,
                        loss=loss,
                        timeout_factor=tf,
                        rng=rng.spawn(1)[0],
                        max_time=400.0,
                    )
                    ok = ok and res.stabilized
                    times.append(res.beacon_rounds)
                    steps.append(res.steps)
                result.add(
                    protocol=name,
                    loss=loss,
                    timeout_factor=tf,
                    beacon_rounds_mean=summarize(times).mean,
                    steps_mean=summarize(steps).mean,
                    all_stabilized=ok,
                )
    result.note(
        "higher loss slows round completion (a node acts only after "
        "hearing every neighbour); timeouts barely above one beacon "
        "interval cause spurious evictions under loss, costing extra "
        "protocol steps"
    )
    return result


def run_contention(
    n: int = 14,
    windows: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    jitters: Sequence[float] = (0.05, 0.2),
    *,
    trials: int = 4,
    seed: int = 122,
    t_b: float = 1.0,
) -> ExperimentResult:
    """Ablate the link-layer contention assumption.

    Section 2 assumes the link layer "resolves any contention for the
    shared medium".  The contention model weakens that: a receiver
    busy with a reception started less than ``window`` ago drops the
    overlapping beacon (later arrival loses).

    The sweep crosses the window with the beacon *jitter*, exposing a
    real systems effect: with near-synchronized beacons (tiny jitter)
    the **same** sender pairs collide every interval — persistent
    asymmetric loss that can stall convergence indefinitely — whereas
    ample jitter decorrelates the collisions round to round, and the
    protocols absorb them like any transient fault.  Beacon phase
    randomization is therefore load-bearing once the contention-free
    assumption is dropped.
    """
    result = ExperimentResult(
        experiment="E11-contention",
        paper_artifact="ablation — weakening the contention-free link-layer assumption",
        columns=[
            "protocol",
            "window",
            "jitter",
            "beacon_rounds_mean",
            "steps_mean",
            "all_stabilized",
        ],
    )
    rng = ensure_rng(seed)
    radius = 0.45
    protocols = (
        ("SIS", SynchronousMaximalIndependentSet),
        ("SMM", SynchronousMaximalMatching),
    )
    for name, make in protocols:
        for window in windows:
            for jitter in jitters:
                times, steps = [], []
                ok = True
                for _ in range(trials):
                    g, pos = random_geometric_graph(
                        n, radius, rng.spawn(1)[0], return_positions=True
                    )
                    res = run_until_stable(
                        make(),
                        StaticPlacement(pos),
                        radius=radius,
                        t_b=t_b,
                        jitter=jitter,
                        contention_window=window,
                        rng=rng.spawn(1)[0],
                        max_time=600.0,
                    )
                    ok = ok and res.stabilized
                    times.append(res.beacon_rounds)
                    steps.append(res.steps)
                result.add(
                    protocol=name,
                    window=window,
                    jitter=jitter,
                    beacon_rounds_mean=summarize(times).mean,
                    steps_mean=summarize(steps).mean,
                    all_stabilized=ok,
                )
    result.note(
        "two findings: (a) beacon phase randomization is load-bearing — "
        "with near-synchronized beacons (jitter 0.05) the same pairs "
        "collide every interval and convergence stalls at windows where "
        "desynchronized beacons (jitter 0.2) still converge; (b) SMM is "
        "markedly more contention-sensitive than SIS — its matching "
        "needs *pairwise-consistent* views (mutual pointers), so "
        "asymmetric beacon loss triggers propose/back-off churn, while "
        "SIS's monotone id-dominance tolerates the same loss"
    )
    return result
