"""E12 — id-assignment sensitivity (extension study).

Unique, totally ordered node ids are the paper's only symmetry-breaking
device: R2 of SMM proposes to the *minimum-id* null neighbour, and both
SIS rules compare neighbour ids.  The theorems hold for *every* id
assignment — but which ids sit where changes the run and, for SIS, the
answer (the unique fixpoint is the greedy MIS *by descending id*).

This experiment samples random relabelings of one fixed topology and
measures, per protocol:

* the distribution of stabilization rounds (how much schedule luck the
  id layout carries);
* the distribution of solution sizes — |matching| for SMM, |MIS| for
  SIS — quantifying how strongly the id layout steers the outcome;
* the bound is asserted for every relabeling, making E12 a randomized
  robustness check of Theorems 1–2 over the id dimension that the
  other experiments keep fixed.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import summarize
from repro.analysis.theory import sis_round_bound, smm_round_bound
from repro.experiments.common import (
    ExperimentResult,
    TrialSpec,
    fallback_backend,
    graph_workloads,
    run_trials,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution as verify_matching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.verify import verify_execution as verify_mis
from repro.rng import ensure_rng

DEFAULT_FAMILIES = ("cycle", "tree", "er-sparse", "udg")
DEFAULT_SIZES = (16, 32)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    relabelings: int = 20,
    seed: int = 130,
    jobs: int = 1,
    backend: str = "reference",
) -> ExperimentResult:
    """Sample id relabelings of each workload topology; see module doc.

    ``jobs`` fans the (independent, deterministic) relabeled runs across
    worker processes; results are bit-identical to ``jobs=1``, for any
    ``backend`` (:mod:`repro.engine`).
    """
    result = ExperimentResult(
        experiment="E12",
        paper_artifact="extension — sensitivity of rounds and solutions to the id assignment",
        columns=[
            "protocol",
            "family",
            "n",
            "relabelings",
            "rounds_mean",
            "rounds_max",
            "bound",
            "size_min",
            "size_max",
            "distinct_solutions",
        ],
    )
    smm = SynchronousMaximalMatching()
    sis = SynchronousMaximalIndependentSet()

    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        gen = ensure_rng(rng)
        perms = []
        nodes = list(graph.nodes)
        for _ in range(relabelings):
            shuffled = list(nodes)
            gen.shuffle(shuffled)
            perms.append(dict(zip(nodes, shuffled)))

        relabeled = [graph.relabeled(mapping) for mapping in perms]
        for name, protocol, bound_fn in (
            ("SMM", smm, smm_round_bound),
            ("SIS", sis, sis_round_bound),
        ):
            executions = run_trials(
                [
                    TrialSpec(
                        name.lower(),
                        g2,
                        max_rounds=bound_fn(g2.n) + 2,
                        backend=fallback_backend(name.lower(), backend=backend),
                    )
                    for g2 in relabeled
                ],
                jobs=jobs,
            )
            rounds, sizes_seen, solutions = [], [], set()
            for mapping, g2, ex in zip(perms, relabeled, executions):
                if name == "SMM":
                    solution = verify_matching(g2, ex)
                    # normalize back to original labels for comparison
                    inverse = {v: k for k, v in mapping.items()}
                    canon = frozenset(
                        (min(inverse[u], inverse[v]), max(inverse[u], inverse[v]))
                        for u, v in solution
                    )
                    sizes_seen.append(len(solution))
                else:
                    in_set = verify_mis(g2, ex, expect_greedy=True)
                    inverse = {v: k for k, v in mapping.items()}
                    canon = frozenset(inverse[x] for x in in_set)
                    sizes_seen.append(len(in_set))
                solutions.add(canon)
                rounds.append(ex.rounds)
                assert ex.rounds <= bound_fn(g2.n)
            rstats = summarize(rounds)
            result.add(
                protocol=name,
                family=family,
                n=graph.n,
                relabelings=relabelings,
                rounds_mean=rstats.mean,
                rounds_max=int(rstats.maximum),
                bound=bound_fn(graph.n),
                size_min=min(sizes_seen),
                size_max=max(sizes_seen),
                distinct_solutions=len(solutions),
            )

    result.note(
        "bounds hold for every relabeling (ids only break symmetry; the "
        "theorems quantify over id assignments)"
    )
    result.note(
        "distinct_solutions counts topologically distinct outcomes over "
        "the same graph: the id layout picks among the graph's many "
        "maximal matchings / MISs"
    )
    return result
