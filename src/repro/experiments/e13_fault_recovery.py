"""E13 — the paper's full fault model, exercised *inside* single runs.

Sections 1–2 claim recovery from transient memory corruption, link
failures/creations, and host crashes/recoveries.  E7 measures one churn
burst per run; this experiment subjects each run to a whole *campaign*
(:mod:`repro.resilience`): a :class:`~repro.resilience.FaultPlan`
schedules a perturbation burst, a churn burst, a crash, the rejoin and a
beacon-loss eviction at increasing rounds, each hitting the system after
it has re-stabilized from the previous one (events are spaced by the
paper's ``n + 1`` stabilization bound).  Per event the campaign driver
records a recovery window into ``telemetry.fault_events``; the table
aggregates those windows per fault kind:

* ``recovered_frac`` — fraction of events whose window re-stabilized
  (the self-stabilization claim: this should be 1.0);
* ``recovery_rounds`` / ``moves`` — mean re-stabilization cost;
* ``touched`` — mean number of nodes that moved during recovery;
* ``radius_max`` — worst containment radius (hops from a fault site to
  a recovering node).

Fault campaigns are an engine capability: with ``backend="auto"`` plain
SMM/SIS campaigns run on the vectorized kernels, and the same plan +
seed is byte-identical across backends (pinned in
``tests/test_engine_equivalence.py``; this experiment re-checks it on
its smallest cell as a self-check).  The sweep runs through the
resilient trial runner — ``trial_timeout``/``retries`` bound hung or
dying workers, ``resume`` checkpoints completed trials to JSONL, and
trials that still fail become skipped records instead of aborting the
experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import summarize
from repro.core.faults import random_configuration
from repro.engine import run as engine_run
from repro.experiments.common import (
    ExperimentResult,
    fallback_backend,
    graph_workloads,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.parallel import FailedTrial, TrialSpec, run_trials
from repro.resilience import FaultEvent, FaultPlan

DEFAULT_FAMILIES = ("tree", "er-sparse", "udg")
DEFAULT_SIZES = (16, 32)

#: Aggregation order for the table rows.
KIND_ORDER = ("perturb", "churn", "crash", "rejoin", "message_loss")


def default_plan(n: int, seed: int = 0) -> FaultPlan:
    """The standard E13 campaign for an ``n``-node graph.

    Five bursts spaced ``n + 2`` rounds apart — past the ``n + 1``
    stabilization bound, so each fault hits a quiescent system and its
    recovery window is attributable to that fault alone.
    """
    step = n + 2
    return FaultPlan(
        events=(
            FaultEvent(round=1 * step, kind="perturb", fraction=0.25),
            FaultEvent(round=2 * step, kind="churn", churn=2),
            FaultEvent(round=3 * step, kind="crash", count=1),
            FaultEvent(round=4 * step, kind="rejoin"),
            FaultEvent(round=5 * step, kind="message_loss", count=1),
        ),
        seed=seed,
    )


def _resolve_plan(
    fault_plan: Union[FaultPlan, str, None], n: int, seed: int
) -> FaultPlan:
    if fault_plan is None:
        return default_plan(n, seed=seed)
    if isinstance(fault_plan, FaultPlan):
        return fault_plan
    return FaultPlan.load(fault_plan)


def _cross_backend_check(spec: TrialSpec, plan: FaultPlan) -> bool:
    """Re-run one campaign spec on both backends and compare counters.

    Returns ``False`` (instead of running nothing) when no vectorized
    backend applies, so the caller can say so in a note.
    """
    vec = fallback_backend(
        spec.protocol, spec.daemon, "vectorized", fault_plan=plan
    )
    if vec == "reference":
        return False
    results = [
        engine_run(
            spec.protocol,
            spec.graph,
            spec.config,
            daemon=spec.daemon,
            backend=which,
            fault_plan=plan,
        )
        for which in ("reference", vec)
    ]
    ref, fast = results
    assert (
        ref.stabilized,
        ref.rounds,
        ref.moves,
        dict(ref.moves_by_rule),
        ref.final,
        ref.legitimate,
        ref.telemetry.fault_events,
    ) == (
        fast.stabilized,
        fast.rounds,
        fast.moves,
        dict(fast.moves_by_rule),
        fast.final,
        fast.legitimate,
        fast.telemetry.fault_events,
    ), "fault campaign diverged between reference and vectorized backends"
    return True


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 5,
    seed: int = 140,
    fault_plan: Union[FaultPlan, str, None] = None,
    jobs: Optional[int] = 1,
    backend: str = "auto",
    trial_timeout: Optional[float] = None,
    retries: int = 0,
    resume: Optional[str] = None,
) -> ExperimentResult:
    """Run fault campaigns and aggregate recovery per fault kind.

    ``fault_plan`` overrides the default campaign: a :class:`FaultPlan`
    or a path to its JSON (the CLI's ``--fault-plan``).  The override is
    applied to every cell, so its event rounds/victims must make sense
    for every graph size in the sweep.
    """
    result = ExperimentResult(
        experiment="E13",
        paper_artifact="Sections 1-2 — recovery from the full fault model",
        columns=[
            "protocol",
            "family",
            "n",
            "kind",
            "events",
            "recovered_frac",
            "recovery_rounds",
            "moves",
            "touched",
            "radius_max",
        ],
    )
    protocols = (
        ("SMM", "smm", SynchronousMaximalMatching()),
        ("SIS", "sis", SynchronousMaximalIndependentSet()),
    )

    specs: List[TrialSpec] = []
    cells = []  # (name, family, n, lo)
    check_spec: Optional[Tuple[TrialSpec, FaultPlan]] = None
    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        plan = _resolve_plan(fault_plan, graph.n, seed)
        for name, key, protocol in protocols:
            lo = len(specs)
            for _ in range(trials):
                spec = TrialSpec(
                    protocol=key,
                    graph=graph,
                    config=random_configuration(protocol, graph, rng),
                    options=(("fault_plan", plan),),
                    backend=fallback_backend(
                        key, "synchronous", backend, fault_plan=plan
                    ),
                )
                specs.append(spec)
                if check_spec is None:
                    check_spec = (spec, plan)
            cells.append((name, family, graph.n, lo))

    executions = run_trials(
        specs,
        jobs=jobs,
        timeout=trial_timeout,
        retries=retries,
        checkpoint=resume,
    )
    failed = sum(1 for e in executions if isinstance(e, FailedTrial))

    for name, family, n, lo in cells:
        by_kind: Dict[str, List[dict]] = {}
        for t in range(trials):
            execution = executions[lo + t]
            if isinstance(execution, FailedTrial):
                continue
            assert execution.stabilized, (
                f"{name} campaign did not re-stabilize on {family} n={n}"
            )
            assert execution.legitimate
            for event in execution.telemetry.fault_events:
                by_kind.setdefault(event["kind"], []).append(event)
        for kind in (*KIND_ORDER, *sorted(set(by_kind) - set(KIND_ORDER))):
            events = by_kind.get(kind)
            if not events:
                continue
            radii = [
                0 if ev["radius"] is None else ev["radius"]
                for ev in events
                if ev["sites"]
            ]
            result.add(
                protocol=name,
                family=family,
                n=n,
                kind=kind,
                events=len(events),
                recovered_frac=(
                    sum(1 for ev in events if ev["recovered"]) / len(events)
                ),
                recovery_rounds=summarize(
                    [ev["recovery_rounds"] for ev in events]
                ).mean,
                moves=summarize([ev["moves"] for ev in events]).mean,
                touched=summarize([ev["touched"] for ev in events]).mean,
                radius_max=int(summarize(radii).maximum) if radii else None,
            )

    if check_spec is not None:
        if _cross_backend_check(*check_spec):
            result.note(
                "self-check: the first campaign spec produced byte-identical "
                "counters and fault_events on the reference and vectorized "
                "backends"
            )
        else:
            result.note(
                "self-check skipped: no vectorized backend supports this "
                "campaign's protocol"
            )
    result.note(
        "recovered_frac = 1.0 reproduces the self-stabilization claim: "
        "every scheduled fault burst (corruption, churn, crash, rejoin, "
        "beacon loss) is followed by re-stabilization within the run"
    )
    if failed:
        result.note(f"{failed} trial(s) failed after retries and were skipped")
    return result
