"""E14 — re-stabilization SLOs under sustained streaming churn.

The paper's system model (claim 6) treats mobility-induced topology
change as a transient fault the protocols self-stabilize out of.  E7
and E13 measure isolated bursts; this experiment measures the
*streaming* regime the ad hoc setting actually implies: one never-
restarting run (:mod:`repro.streaming`) absorbing a Poisson stream of
link churn and state corruption, at increasing event rates.  Per
(protocol, family, n, rate) cell the table reports production-style
SLOs:

* ``recovered_frac`` — fraction of events whose recovery window (to
  the next event) re-stabilized; below 1.0 the engine is falling
  behind the event rate, which is itself the measurement — the
  sustainable-rate frontier;
* ``p50_rounds`` / ``p99_rounds`` — re-stabilization latency
  percentiles, in rounds (exact nearest-rank over all events);
* ``radius_max`` — worst containment radius (hops from an event's
  fault sites to a node that moved during its window);
* ``events_per_sec`` — wall-clock stream throughput of the backend.

Every column except ``events_per_sec`` is deterministic; the smallest
cell re-runs on both the reference and vectorized backends and asserts
:meth:`~repro.streaming.StreamReport.counters` equality as a
self-check (CI's streaming smoke repeats this check standalone).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, graph_workloads
from repro.streaming import poisson_plan, run_stream

DEFAULT_FAMILIES = ("tree", "udg")
DEFAULT_SIZES = (32, 64)
DEFAULT_RATES = (0.05, 0.25, 1.0)
DEFAULT_KINDS = ("churn", "perturb")


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    rates: Sequence[float] = DEFAULT_RATES,
    events: int = 60,
    kinds: Sequence[str] = DEFAULT_KINDS,
    seed: int = 150,
    backend: str = "auto",
    check_backends: bool = True,
    sample_cap: Optional[int] = 4096,
) -> ExperimentResult:
    """Stream Poisson schedules into long-lived runs across event rates.

    ``backend="auto"`` (or ``"vectorized"``/``"batch"``) streams on the
    vectorized kernels; ``"reference"`` uses the reference engine.  The
    schedule for a given (graph, rate, seed) is identical on both, so
    the table is byte-identical apart from ``events_per_sec``.
    """
    result = ExperimentResult(
        experiment="E14",
        paper_artifact="model claim 6 — SLOs under sustained streaming churn",
        columns=[
            "protocol",
            "family",
            "n",
            "rate",
            "events",
            "recovered_frac",
            "p50_rounds",
            "p99_rounds",
            "moves",
            "radius_max",
            "events_per_sec",
        ],
    )
    stream_backend = "reference" if backend == "reference" else "vectorized"
    checked: Optional[bool] = None
    for family, n, graph, _rng in graph_workloads(families, sizes, seed):
        for proto in ("smm", "sis"):
            for rate in rates:
                plan = poisson_plan(
                    graph,
                    rate=rate,
                    events=events,
                    seed=seed + int(round(1000 * rate)),
                    kinds=kinds,
                )
                report = run_stream(
                    proto,
                    graph,
                    plan,
                    backend=stream_backend,
                    sample_cap=sample_cap,
                )
                assert report.events == len(plan.events), (
                    f"stream dropped events: {report.events} of "
                    f"{len(plan.events)}"
                )
                if check_backends and checked is None:
                    other = (
                        "vectorized"
                        if stream_backend == "reference"
                        else "reference"
                    )
                    mirror = run_stream(
                        proto, graph, plan, backend=other, sample_cap=sample_cap
                    )
                    assert report.counters() == mirror.counters(), (
                        "stream SLO counters diverged between reference and "
                        "vectorized backends"
                    )
                    checked = True
                result.add(
                    protocol=proto.upper(),
                    family=family,
                    n=n,
                    rate=rate,
                    events=report.events,
                    recovered_frac=report.recovered_frac,
                    p50_rounds=report.p50_rounds,
                    p99_rounds=report.p99_rounds,
                    moves=report.moves,
                    radius_max=report.radius_max,
                    events_per_sec=round(report.events_per_sec, 1),
                )
    if checked:
        result.note(
            "self-check: the first cell's stream produced byte-identical "
            "SLO counters on the reference and vectorized backends"
        )
    result.note(
        "recovered_frac < 1.0 marks the engine falling behind the event "
        "rate — the recovery window of an event ends when the next event "
        "fires, so sustained-churn capacity is read off the rate column"
    )
    return result
