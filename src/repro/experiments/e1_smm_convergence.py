"""E1 — Theorem 1: SMM stabilizes within n + 1 synchronous rounds.

For every graph family and size in the sweep, SMM runs from clean and
random initial configurations (and, for tiny graphs, from *every*
configuration).  Each row reports the measured round distribution next
to the ``n + 1`` bound; ``within_bound`` must be 1.0 everywhere, and a
single violation falsifies the reproduction.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import summarize
from repro.analysis.theory import smm_round_bound
from repro.experiments.common import (
    ExperimentResult,
    TrialSpec,
    exhaustive_configurations,
    fallback_backend,
    graph_workloads,
    initial_configurations,
    run_spec_groups,
    run_trials,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution

DEFAULT_FAMILIES = ("cycle", "path", "star", "complete", "tree", "grid", "er-sparse", "udg")
DEFAULT_SIZES = (4, 8, 16, 32, 64)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 20,
    seed: int = 10,
    exhaustive_max_n: int = 5,
    verify: bool = True,
    jobs: int = 1,
    backend: str = "reference",
    telemetry: str | None = None,
) -> ExperimentResult:
    """Sweep SMM convergence; see module docstring.

    ``jobs`` fans the (independent, deterministic) trials across worker
    processes; results are bit-identical to ``jobs=1``.  ``backend``
    selects the execution engine (:mod:`repro.engine`) — every backend
    produces identical rows, just at different speed.  ``telemetry``
    (a JSONL path) streams one per-trial telemetry record for the main
    sweep through :class:`repro.observability.TelemetrySink`.
    """
    result = ExperimentResult(
        experiment="E1",
        paper_artifact="Theorem 1 — SMM stabilizes in <= n+1 rounds",
        columns=[
            "family",
            "n",
            "init",
            "trials",
            "rounds_mean",
            "rounds_max",
            "bound",
            "within_bound",
        ],
    )
    protocol = SynchronousMaximalMatching()
    backend = fallback_backend("smm", backend=backend)

    def groups(family, graph, rng):
        bound = smm_round_bound(graph.n)
        for mode in ("clean", "random"):
            mode_trials = 1 if mode == "clean" else trials
            yield mode, [
                TrialSpec(
                    "smm", graph, config, max_rounds=bound + 4, backend=backend
                )
                for config in initial_configurations(
                    protocol, graph, mode, mode_trials, rng
                )
            ]

    executions, cells = run_spec_groups(
        families, sizes, seed, groups, jobs=jobs, telemetry=telemetry
    )

    for family, graph, mode, lo, hi in cells:
        bound = smm_round_bound(graph.n)
        rounds = []
        for execution in executions[lo:hi]:
            if verify:
                verify_execution(graph, execution)
            rounds.append(execution.rounds)
        stats = summarize(rounds)
        result.add(
            family=family,
            n=graph.n,
            init=mode,
            trials=len(rounds),
            rounds_mean=stats.mean,
            rounds_max=int(stats.maximum),
            bound=bound,
            within_bound=float(stats.maximum <= bound),
        )

    # adversarial starts: structured configurations (proposal chains,
    # pessimal cycles, the all-null zipper) that approach the bound
    from repro.matching.adversarial import worst_case_rounds

    for family, n, graph, rng in graph_workloads(families, sizes, seed + 2):
        bound = smm_round_bound(graph.n)
        rounds, label = worst_case_rounds(graph)
        result.add(
            family=family,
            n=graph.n,
            init=f"adv:{label}",
            trials=1,
            rounds_mean=float(rounds),
            rounds_max=rounds,
            bound=bound,
            within_bound=float(rounds <= bound),
        )

    # exhaustive verification on tiny graphs: the literal universal
    # quantifier of Theorem 1
    for family, n, graph, rng in graph_workloads(
        [f for f in families if f in ("cycle", "path", "complete")],
        [s for s in sizes if s <= exhaustive_max_n] or [4],
        seed + 1,
    ):
        bound = smm_round_bound(graph.n)
        executions = run_trials(
            [
                TrialSpec(
                    "smm", graph, config, max_rounds=bound + 4, backend=backend
                )
                for config in exhaustive_configurations(protocol, graph)
            ],
            jobs=jobs,
        )
        rounds = []
        for execution in executions:
            if verify:
                verify_execution(graph, execution)
            rounds.append(execution.rounds)
        stats = summarize(rounds)
        result.add(
            family=family,
            n=graph.n,
            init="exhaustive",
            trials=len(rounds),
            rounds_mean=stats.mean,
            rounds_max=int(stats.maximum),
            bound=bound,
            within_bound=float(stats.maximum <= bound),
        )

    worst = max(
        (row["rounds_max"] / row["bound"] for row in result.rows), default=0.0
    )
    result.note(
        f"worst observed rounds/bound ratio = {worst:.2f} "
        "(Theorem 1 holds iff every within_bound is 1.0)"
    )
    return result
