"""E2 — Theorem 2: SIS stabilizes in O(n) rounds, onto the unique
greedy fixpoint.

Two parts:

1. the same sweep shape as E1, with the concrete envelope ``n`` rounds
   and the additional check that every stabilized run lands on the
   greedy MIS by descending id (the unique stable configuration);
2. a worst-case *series*: ascending-id paths, where entry/exit waves
   cascade along the path — the measured rounds grow linearly in n,
   exhibiting the Θ(n) shape behind Theorem 2's O(n).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import summarize
from repro.analysis.theory import sis_round_bound
from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.experiments.common import (
    ExperimentResult,
    TrialSpec,
    exhaustive_configurations,
    fallback_backend,
    graph_workloads,
    initial_configurations,
    run_spec_groups,
    run_trials,
)
from repro.graphs.generators import path_graph
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.verify import verify_execution

DEFAULT_FAMILIES = ("cycle", "path", "star", "complete", "tree", "grid", "er-sparse", "udg")
DEFAULT_SIZES = (4, 8, 16, 32, 64)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 20,
    seed: int = 20,
    exhaustive_max_n: int = 8,
    verify: bool = True,
    jobs: int = 1,
    backend: str = "reference",
    telemetry: str | None = None,
) -> ExperimentResult:
    """Sweep SIS convergence; see module docstring.

    ``jobs`` fans the (independent, deterministic) trials across worker
    processes; results are bit-identical to ``jobs=1``.  ``backend``
    selects the execution engine (:mod:`repro.engine`) — every backend
    produces identical rows, just at different speed.  ``telemetry``
    (a JSONL path) streams one per-trial telemetry record for the main
    sweep through :class:`repro.observability.TelemetrySink`.
    """
    result = ExperimentResult(
        experiment="E2",
        paper_artifact="Theorem 2 — SIS stabilizes in O(n) rounds (envelope n), unique greedy fixpoint",
        columns=[
            "family",
            "n",
            "init",
            "trials",
            "rounds_mean",
            "rounds_max",
            "bound",
            "within_bound",
            "greedy_fixpoint",
        ],
    )
    protocol = SynchronousMaximalIndependentSet()
    backend = fallback_backend("sis", backend=backend)

    def groups(family, graph, rng):
        bound = sis_round_bound(graph.n)
        for mode in ("clean", "random"):
            mode_trials = 1 if mode == "clean" else trials
            yield mode, [
                TrialSpec(
                    "sis", graph, config, max_rounds=bound + 4, backend=backend
                )
                for config in initial_configurations(
                    protocol, graph, mode, mode_trials, rng
                )
            ]

    executions, cells = run_spec_groups(
        families, sizes, seed, groups, jobs=jobs, telemetry=telemetry
    )

    for family, graph, mode, lo, hi in cells:
        bound = sis_round_bound(graph.n)
        rounds = []
        all_greedy = True
        for execution in executions[lo:hi]:
            if verify:
                verify_execution(graph, execution, expect_greedy=True)
            else:
                all_greedy = all_greedy and execution.legitimate
            rounds.append(execution.rounds)
        stats = summarize(rounds)
        result.add(
            family=family,
            n=graph.n,
            init=mode,
            trials=len(rounds),
            rounds_mean=stats.mean,
            rounds_max=int(stats.maximum),
            bound=bound,
            within_bound=float(stats.maximum <= bound),
            greedy_fixpoint=True if verify else all_greedy,
        )

    # exhaustive part (2^n configurations)
    for family, n, graph, rng in graph_workloads(
        [f for f in families if f in ("cycle", "path", "complete")],
        [s for s in sizes if s <= exhaustive_max_n] or [4],
        seed + 1,
    ):
        bound = sis_round_bound(graph.n)
        executions = run_trials(
            [
                TrialSpec(
                    "sis", graph, config, max_rounds=bound + 4, backend=backend
                )
                for config in exhaustive_configurations(protocol, graph)
            ],
            jobs=jobs,
        )
        rounds = []
        for execution in executions:
            if verify:
                verify_execution(graph, execution, expect_greedy=True)
            rounds.append(execution.rounds)
        stats = summarize(rounds)
        result.add(
            family=family,
            n=graph.n,
            init="exhaustive",
            trials=len(rounds),
            rounds_mean=stats.mean,
            rounds_max=int(stats.maximum),
            bound=bound,
            within_bound=float(stats.maximum <= bound),
            greedy_fixpoint=True,
        )
    return result


def run_worst_case_series(
    sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
) -> ExperimentResult:
    """The Θ(n) cascade on ascending-id paths, from the all-zero start.

    All nodes enter at round 1 (nobody sees a larger in-set
    neighbour); then exit/entry waves peel the path from the largest id
    downwards, two ids per two rounds — linear rounds in n.
    """
    result = ExperimentResult(
        experiment="E2-series",
        paper_artifact="Theorem 2 — linear-round cascade on ascending-id paths",
        columns=["n", "rounds", "bound", "rounds_over_n"],
    )
    protocol = SynchronousMaximalIndependentSet()
    for n in sizes:
        graph = path_graph(n)
        clean = Configuration({i: 0 for i in graph.nodes})
        execution = run_synchronous(
            protocol, graph, clean, max_rounds=sis_round_bound(n) + 4
        )
        verify_execution(graph, execution, expect_greedy=True)
        result.add(
            n=n,
            rounds=execution.rounds,
            bound=sis_round_bound(n),
            rounds_over_n=execution.rounds / n,
        )
    ratios = [row["rounds_over_n"] for row in result.rows]
    result.note(
        f"rounds/n stays within [{min(ratios):.2f}, {max(ratios):.2f}] — "
        "linear growth, the Θ(n) shape behind Theorem 2"
    )
    return result
