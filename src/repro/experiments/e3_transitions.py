"""E3 — Figures 2–3 and Lemmas 1–7: node-type transition diagram.

Replays full SMM histories across the sweep, classifies every node in
every configuration (M / A0 / A1 / PA / PM / PP — Fig. 2), and
aggregates all observed one-round type transitions:

* every observed arrow must appear in Fig. 3
  (:data:`repro.matching.classification.ALLOWED_TRANSITIONS`);
* the transient types A1 and PA must be empty at every round t >= 1
  (Lemma 7);
* the report shows the aggregate arrow counts — an empirical rendering
  of Fig. 3 with edge weights.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.executor import run_synchronous
from repro.experiments.common import (
    ExperimentResult,
    graph_workloads,
    initial_configurations,
)
from repro.matching.classification import (
    ALLOWED_TRANSITIONS,
    TRANSIENT_TYPES,
    NodeType,
    classify,
    observed_transitions,
    validate_transitions,
)
from repro.matching.smm import SynchronousMaximalMatching

DEFAULT_FAMILIES = ("cycle", "path", "complete", "tree", "er-sparse", "udg")
DEFAULT_SIZES = (4, 8, 16, 32)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 25,
    seed: int = 30,
) -> ExperimentResult:
    """Aggregate observed transitions over the sweep; see module doc."""
    result = ExperimentResult(
        experiment="E3",
        paper_artifact="Figs. 2-3 / Lemmas 1-7 — node-type transition diagram",
        columns=["from", "to", "count", "in_figure_3"],
    )
    protocol = SynchronousMaximalMatching()
    totals: Dict[Tuple[NodeType, NodeType], int] = {}
    histories = 0
    transient_seen_at_start = 0

    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        for config in initial_configurations(protocol, graph, "random", trials, rng):
            execution = run_synchronous(protocol, graph, config, record_history=True)
            assert execution.history is not None
            validate_transitions(graph, execution.history)
            histories += 1
            initial_types = classify(graph, execution.history[0]).values()
            if any(t in TRANSIENT_TYPES for t in initial_types):
                transient_seen_at_start += 1
            for arrow, count in observed_transitions(
                graph, execution.history
            ).items():
                totals[arrow] = totals.get(arrow, 0) + count

    for arrow in sorted(totals, key=lambda ab: (ab[0].value, ab[1].value)):
        result.add(
            **{
                "from": arrow[0].value,
                "to": arrow[1].value,
                "count": totals[arrow],
                "in_figure_3": arrow in ALLOWED_TRANSITIONS,
            }
        )

    missing = ALLOWED_TRANSITIONS - set(totals)
    result.note(
        f"{histories} histories validated; every observed arrow is in Fig. 3 "
        "and A1/PA were empty at every round t >= 1 (Lemma 7)"
    )
    result.note(
        f"{transient_seen_at_start} histories started with non-empty "
        "transient sets (A1/PA) — allowed only at t = 0"
    )
    if missing:
        pretty = ", ".join(
            f"{a.value}->{b.value}"
            for a, b in sorted(missing, key=lambda ab: (ab[0].value, ab[1].value))
        )
        result.note(f"Fig. 3 arrows not exercised by this sweep: {pretty}")
    return result
