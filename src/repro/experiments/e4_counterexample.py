"""E4 — Section 3's closing remark: the min-id choice in R2 is
*necessary*.

Three protocols race on even cycles C_n from the all-null start:

* **SMM-arbitrary + clockwise choice** — the paper's counterexample.
  The run never stabilizes; we emit a finite *livelock certificate*: a
  repeated global configuration under a deterministic protocol and
  daemon, which proves an infinite execution (here period 2: all
  propose clockwise, then all back off).
* **SMM (min-id)** — stabilizes within n + 1 rounds (Theorem 1).
* **SMM-randomized** — stabilizes almost surely; the measured round
  counts show the cost of probabilistic symmetry breaking versus the
  deterministic id-based rule.

All three run as registered engine protocols
(``"smm-arbitrary-clockwise"``, ``"smm"``, ``"smm-randomized"`` —
see :mod:`repro.engine.registry`) dispatched through trial specs, so
the race fans across workers like any other sweep.  The clockwise
adversary is :func:`repro.matching.variants.cyclic_successor_chooser`,
which coincides with the paper's clockwise choice on every cycle.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import summarize
from repro.analysis.theory import smm_round_bound
from repro.core.configuration import Configuration
from repro.experiments.common import (
    ExperimentResult,
    TrialSpec,
    detect_cycle,
    run_trials,
)
from repro.graphs.generators import cycle_graph
from repro.matching.verify import verify_execution
from repro.rng import ensure_rng


def run(
    cycle_sizes: Sequence[int] = (4, 8, 12, 16),
    *,
    livelock_rounds: int = 200,
    randomized_trials: int = 20,
    seed: int = 40,
    jobs: int = 1,
) -> ExperimentResult:
    """Race the three R2-choice policies on even cycles.

    ``jobs`` fans the runs across worker processes; the randomized
    trials draw from per-trial integer seeds derived up front in the
    parent, so results are bit-identical to ``jobs=1``.
    """
    result = ExperimentResult(
        experiment="E4",
        paper_artifact="Section 3 remark — arbitrary R2 choice livelocks on C_4",
        columns=[
            "n",
            "variant",
            "stabilized",
            "rounds",
            "livelock_period",
            "bound",
        ],
    )
    rng = ensure_rng(seed)

    specs: list[TrialSpec] = []
    cells = []
    for n in cycle_sizes:
        if n % 2:
            raise ValueError("the counterexample needs even cycles")
        graph = cycle_graph(n)
        all_null = Configuration({i: None for i in graph.nodes})
        bound = smm_round_bound(n)
        start = len(specs)
        # 1. the paper's adversarial clockwise choice (history kept for
        #    the livelock certificate)
        specs.append(
            TrialSpec(
                "smm-arbitrary-clockwise",
                graph,
                all_null,
                max_rounds=livelock_rounds,
                record_history=True,
            )
        )
        # 2. the published min-id rule
        specs.append(TrialSpec("smm", graph, all_null, max_rounds=bound + 4))
        # 3. randomized choice (almost-sure, unbounded worst case)
        for _ in range(randomized_trials):
            specs.append(
                TrialSpec(
                    "smm-randomized",
                    graph,
                    all_null,
                    seed=int(rng.integers(2**63)),
                    max_rounds=50 * n,
                )
            )
        cells.append((n, graph, bound, start, len(specs)))
    executions = run_trials(specs, jobs=jobs)

    for n, graph, bound, lo, hi in cells:
        adversary = executions[lo]
        assert adversary.history is not None
        cycle = detect_cycle(adversary.history)
        result.add(
            n=n,
            variant="arbitrary(clockwise)",
            stabilized=adversary.stabilized,
            rounds=adversary.rounds,
            livelock_period=cycle[1] if cycle else None,
            bound=bound,
        )

        min_id = executions[lo + 1]
        verify_execution(graph, min_id)
        result.add(
            n=n,
            variant="min-id (SMM)",
            stabilized=min_id.stabilized,
            rounds=min_id.rounds,
            livelock_period=None,
            bound=bound,
        )

        rounds = []
        for execution in executions[lo + 2 : hi]:
            if execution.stabilized:
                verify_execution(graph, execution)
                rounds.append(execution.rounds)
        stats = summarize(rounds) if rounds else None
        result.add(
            n=n,
            variant="randomized",
            stabilized=len(rounds) == randomized_trials,
            rounds=stats.mean if stats else None,
            livelock_period=None,
            bound=bound,
        )

    result.note(
        "a livelock_period entry is a certificate of non-stabilization: a "
        "deterministic protocol revisited a configuration"
    )
    result.note(
        "randomized rows report mean rounds over trials; min-id rows are "
        "deterministic single runs within the n+1 bound"
    )
    return result
