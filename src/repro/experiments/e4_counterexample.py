"""E4 — Section 3's closing remark: the min-id choice in R2 is
*necessary*.

Three protocols race on even cycles C_n from the all-null start:

* **SMM-arbitrary + clockwise choice** — the paper's counterexample.
  The run never stabilizes; we emit a finite *livelock certificate*: a
  repeated global configuration under a deterministic protocol and
  daemon, which proves an infinite execution (here period 2: all
  propose clockwise, then all back off).
* **SMM (min-id)** — stabilizes within n + 1 rounds (Theorem 1).
* **SMM-randomized** — stabilizes almost surely; the measured round
  counts show the cost of probabilistic symmetry breaking versus the
  deterministic id-based rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.stats import summarize
from repro.analysis.theory import smm_round_bound
from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.experiments.common import ExperimentResult, detect_cycle
from repro.graphs.generators import cycle_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.variants import ArbitraryChoiceSMM, RandomizedSMM, clockwise_chooser
from repro.matching.verify import verify_execution
from repro.rng import ensure_rng


def run(
    cycle_sizes: Sequence[int] = (4, 8, 12, 16),
    *,
    livelock_rounds: int = 200,
    randomized_trials: int = 20,
    seed: int = 40,
) -> ExperimentResult:
    """Race the three R2-choice policies on even cycles."""
    result = ExperimentResult(
        experiment="E4",
        paper_artifact="Section 3 remark — arbitrary R2 choice livelocks on C_4",
        columns=[
            "n",
            "variant",
            "stabilized",
            "rounds",
            "livelock_period",
            "bound",
        ],
    )
    rng = ensure_rng(seed)

    for n in cycle_sizes:
        if n % 2:
            raise ValueError("the counterexample needs even cycles")
        graph = cycle_graph(n)
        all_null = Configuration({i: None for i in graph.nodes})
        bound = smm_round_bound(n)

        # 1. the paper's adversarial clockwise choice
        adversary = ArbitraryChoiceSMM(clockwise_chooser(n))
        execution = run_synchronous(
            adversary,
            graph,
            all_null,
            max_rounds=livelock_rounds,
            record_history=True,
        )
        assert execution.history is not None
        cycle = detect_cycle(execution.history)
        result.add(
            n=n,
            variant="arbitrary(clockwise)",
            stabilized=execution.stabilized,
            rounds=execution.rounds,
            livelock_period=cycle[1] if cycle else None,
            bound=bound,
        )

        # 2. the published min-id rule
        smm = SynchronousMaximalMatching()
        execution = run_synchronous(smm, graph, all_null, max_rounds=bound + 4)
        verify_execution(graph, execution)
        result.add(
            n=n,
            variant="min-id (SMM)",
            stabilized=execution.stabilized,
            rounds=execution.rounds,
            livelock_period=None,
            bound=bound,
        )

        # 3. randomized choice (almost-sure, unbounded worst case)
        randomized = RandomizedSMM()
        rounds = []
        for _ in range(randomized_trials):
            execution = run_synchronous(
                randomized, graph, all_null, rng=rng, max_rounds=50 * n
            )
            if execution.stabilized:
                verify_execution(graph, execution)
                rounds.append(execution.rounds)
        stats = summarize(rounds) if rounds else None
        result.add(
            n=n,
            variant="randomized",
            stabilized=len(rounds) == randomized_trials,
            rounds=stats.mean if stats else None,
            livelock_period=None,
            bound=bound,
        )

    result.note(
        "a livelock_period entry is a certificate of non-stabilization: a "
        "deterministic protocol revisited a configuration"
    )
    result.note(
        "randomized rows report mean rounds over trials; min-id rows are "
        "deterministic single runs within the n+1 bound"
    )
    return result
