"""E5 — Section 3's comparison claim: the synchronized Hsu–Huang
baseline "is not as fast" as SMM.

For each workload cell, the same initial pointer configuration is run
through:

* **SMM** under the synchronous daemon (rounds);
* **Hsu–Huang** refined to the synchronous model by local mutual
  exclusion with id priorities, rounds counted in *beacon time* (each
  refinement step costs two beacon rounds: state exchange + mutex
  arbitration — see :mod:`repro.core.transform`);
* **Hsu–Huang** refined with randomized priorities (same accounting);
* **Hsu–Huang** under its native central daemon (moves, for context —
  not comparable to rounds but reported to situate the O(n^3) bound).

The claim reproduces as ``slowdown = refined_rounds / smm_rounds > 1``
and growing with n.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import ratio_of_means, summarize
from repro.analysis.theory import hsu_huang_move_bound
from repro.experiments.common import (
    ExperimentResult,
    TrialSpec,
    fallback_backend,
    initial_configurations,
    run_spec_groups,
)
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution

DEFAULT_FAMILIES = ("cycle", "path", "tree", "er-sparse", "udg")
DEFAULT_SIZES = (8, 16, 32, 64)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 10,
    seed: int = 50,
    jobs: int = 1,
    backend: str = "reference",
    telemetry: str | None = None,
) -> ExperimentResult:
    """Head-to-head SMM vs synchronized Hsu–Huang; see module doc.

    ``jobs`` fans the four engine runs of every trial across worker
    processes.  The randomized engines draw from per-trial integer
    seeds derived up front in the parent, so the schedule is a function
    of the spec and ``jobs=N`` output is bit-identical to ``jobs=1``.
    ``backend`` applies where a matching kernel is registered (the SMM
    runs); the Hsu–Huang refinements degrade to the reference engine.
    ``telemetry`` (a JSONL path) streams one per-trial telemetry record
    through :class:`repro.observability.TelemetrySink` — all four
    engines support collection, the refinements on the reference path.
    """
    result = ExperimentResult(
        experiment="E5",
        paper_artifact='Section 3 — converted Hsu-Huang "not as fast" than SMM',
        columns=[
            "family",
            "n",
            "smm_rounds",
            "hh_id_rounds",
            "hh_rand_rounds",
            "slowdown_id",
            "slowdown_rand",
            "hh_central_moves",
            "moves_bound",
        ],
    )
    smm = SynchronousMaximalMatching()
    smm_backend = fallback_backend("smm", backend=backend)
    hh_sync_backend = fallback_backend(
        "hsu-huang", "synchronized-central", backend=backend
    )
    hh_central_backend = fallback_backend("hsu-huang", "central", backend=backend)

    def groups(family, graph, rng):
        configs = list(initial_configurations(smm, graph, "random", trials, rng))
        # per-trial integer seeds for the randomized engines, drawn in
        # the parent so the randomized schedules are functions of the
        # spec (not of which worker runs them, or in which order)
        trial_seeds = [
            (int(rng.integers(2**63)), int(rng.integers(2**63)))
            for _ in configs
        ]
        specs = []
        for config, (seed_rand, seed_central) in zip(configs, trial_seeds):
            specs.append(TrialSpec("smm", graph, config, backend=smm_backend))
            specs.append(
                TrialSpec(
                    "hsu-huang",
                    graph,
                    config,
                    daemon="synchronized-central",
                    options=(("priority", "id"), ("count_beacon_rounds", True)),
                    backend=hh_sync_backend,
                )
            )
            specs.append(
                TrialSpec(
                    "hsu-huang",
                    graph,
                    config,
                    daemon="synchronized-central",
                    seed=seed_rand,
                    options=(("priority", "random"), ("count_beacon_rounds", True)),
                    backend=hh_sync_backend,
                )
            )
            specs.append(
                TrialSpec(
                    "hsu-huang",
                    graph,
                    config,
                    daemon="central",
                    seed=seed_central,
                    options=(("strategy", "random"),),
                    backend=hh_central_backend,
                )
            )
        yield None, specs

    executions, cells = run_spec_groups(
        families, sizes, seed, groups, jobs=jobs, telemetry=telemetry
    )

    for family, graph, _label, lo, hi in cells:
        smm_rounds, id_rounds, rand_rounds, central_moves = [], [], [], []
        for k in range(lo, hi, 4):
            ex_smm, ex_id, ex_rand, ex_central = executions[k : k + 4]
            for ex in (ex_smm, ex_id, ex_rand, ex_central):
                verify_execution(graph, ex)
            smm_rounds.append(ex_smm.rounds)
            id_rounds.append(ex_id.rounds)
            rand_rounds.append(ex_rand.rounds)
            central_moves.append(ex_central.moves)

        result.add(
            family=family,
            n=graph.n,
            smm_rounds=summarize(smm_rounds).mean,
            hh_id_rounds=summarize(id_rounds).mean,
            hh_rand_rounds=summarize(rand_rounds).mean,
            slowdown_id=ratio_of_means(id_rounds, smm_rounds),
            slowdown_rand=ratio_of_means(rand_rounds, smm_rounds),
            hh_central_moves=summarize(central_moves).mean,
            moves_bound=hsu_huang_move_bound(graph.n),
        )

    slowdowns = [row["slowdown_id"] for row in result.rows]
    result.note(
        f"id-priority slowdown range {min(slowdowns):.1f}x..{max(slowdowns):.1f}x "
        "— the refined baseline is never faster than SMM and degrades with n"
    )
    result.note(
        "rounds for the refined runs are beacon rounds (2 per refinement "
        "step: state exchange + mutex arbitration)"
    )
    return result
