"""E5 — Section 3's comparison claim: the synchronized Hsu–Huang
baseline "is not as fast" as SMM.

For each workload cell, the same initial pointer configuration is run
through:

* **SMM** under the synchronous daemon (rounds);
* **Hsu–Huang** refined to the synchronous model by local mutual
  exclusion with id priorities, rounds counted in *beacon time* (each
  refinement step costs two beacon rounds: state exchange + mutex
  arbitration — see :mod:`repro.core.transform`);
* **Hsu–Huang** refined with randomized priorities (same accounting);
* **Hsu–Huang** under its native central daemon (moves, for context —
  not comparable to rounds but reported to situate the O(n^3) bound).

The claim reproduces as ``slowdown = refined_rounds / smm_rounds > 1``
and growing with n.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import ratio_of_means, summarize
from repro.analysis.theory import hsu_huang_move_bound
from repro.core.executor import run_central, run_synchronous
from repro.core.transform import run_synchronized_central
from repro.experiments.common import (
    ExperimentResult,
    graph_workloads,
    initial_configurations,
)
from repro.matching.hsu_huang import HsuHuangMatching
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution

DEFAULT_FAMILIES = ("cycle", "path", "tree", "er-sparse", "udg")
DEFAULT_SIZES = (8, 16, 32, 64)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 10,
    seed: int = 50,
) -> ExperimentResult:
    """Head-to-head SMM vs synchronized Hsu–Huang; see module doc."""
    result = ExperimentResult(
        experiment="E5",
        paper_artifact='Section 3 — converted Hsu-Huang "not as fast" than SMM',
        columns=[
            "family",
            "n",
            "smm_rounds",
            "hh_id_rounds",
            "hh_rand_rounds",
            "slowdown_id",
            "slowdown_rand",
            "hh_central_moves",
            "moves_bound",
        ],
    )
    smm = SynchronousMaximalMatching()
    hh = HsuHuangMatching()

    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        smm_rounds, id_rounds, rand_rounds, central_moves = [], [], [], []
        for config in initial_configurations(smm, graph, "random", trials, rng):
            ex = run_synchronous(smm, graph, config)
            verify_execution(graph, ex)
            smm_rounds.append(ex.rounds)

            ex = run_synchronized_central(
                hh, graph, config, priority="id", count_beacon_rounds=True
            )
            verify_execution(graph, ex)
            id_rounds.append(ex.rounds)

            ex = run_synchronized_central(
                hh,
                graph,
                config,
                priority="random",
                rng=rng,
                count_beacon_rounds=True,
            )
            verify_execution(graph, ex)
            rand_rounds.append(ex.rounds)

            ex = run_central(hh, graph, config, strategy="random", rng=rng)
            verify_execution(graph, ex)
            central_moves.append(ex.moves)

        result.add(
            family=family,
            n=graph.n,
            smm_rounds=summarize(smm_rounds).mean,
            hh_id_rounds=summarize(id_rounds).mean,
            hh_rand_rounds=summarize(rand_rounds).mean,
            slowdown_id=ratio_of_means(id_rounds, smm_rounds),
            slowdown_rand=ratio_of_means(rand_rounds, smm_rounds),
            hh_central_moves=summarize(central_moves).mean,
            moves_bound=hsu_huang_move_bound(graph.n),
        )

    slowdowns = [row["slowdown_id"] for row in result.rows]
    result.note(
        f"id-priority slowdown range {min(slowdowns):.1f}x..{max(slowdowns):.1f}x "
        "— the refined baseline is never faster than SMM and degrades with n"
    )
    result.note(
        "rounds for the refined runs are beacon rounds (2 per refinement "
        "step: state exchange + mutex arbitration)"
    )
    return result
