"""E6 — Lemmas 1, 9, 10: monotone matching growth.

Replays SMM histories and tracks the matched-node set ``M_t`` round by
round:

* **Lemma 1** — ``M_t ⊆ M_{t+1}``: matched nodes never unmatch (checked
  as set containment, stronger than cardinality monotonicity);
* **Lemmas 9–10** — from t >= 1, whenever moves happen at rounds t and
  t+1, ``|M_{t+2}| >= |M_t| + 2``: every two active rounds the matching
  grows by at least one edge, which is exactly the engine of
  Theorem 1's n+1 bound.

Rows aggregate per workload cell: number of histories, violations
(must be 0), and the observed minimum two-round growth over active
round pairs.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentResult,
    TrialSpec,
    fallback_backend,
    initial_configurations,
    run_spec_groups,
)
from repro.matching.classification import NodeType, classify
from repro.matching.smm import SynchronousMaximalMatching

DEFAULT_FAMILIES = ("cycle", "path", "complete", "tree", "er-sparse", "udg")
DEFAULT_SIZES = (4, 8, 16, 32)


def matched_sets(graph, history):
    """The sequence of matched-node sets M_t along a history."""
    out = []
    for config in history:
        types = classify(graph, config)
        out.append(frozenset(n for n, t in types.items() if t is NodeType.M))
    return out


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 20,
    seed: int = 60,
    jobs: int = 1,
    backend: str = "reference",
    telemetry: str | None = None,
) -> ExperimentResult:
    """Check Lemmas 1/9/10 over the sweep; see module docstring.

    ``jobs`` fans the (independent, deterministic) history replays
    across worker processes; results are bit-identical to ``jobs=1``.
    The lemma checks replay full histories, which only the reference
    engine records — a ``backend`` without the ``history`` capability
    degrades to ``"reference"``.  ``telemetry`` (a JSONL path) streams
    one per-trial telemetry record through
    :class:`repro.observability.TelemetrySink`.
    """
    result = ExperimentResult(
        experiment="E6",
        paper_artifact="Lemmas 1, 9, 10 — monotone matching growth (>= 2 nodes per 2 active rounds)",
        columns=[
            "family",
            "n",
            "histories",
            "lemma1_violations",
            "lemma10_violations",
            "min_two_round_growth",
        ],
    )
    protocol = SynchronousMaximalMatching()

    from repro.matching.lemmas import check_lemma_1, check_lemma_10

    backend = fallback_backend("smm", backend=backend, record_history=True)

    def groups(family, graph, rng):
        yield None, [
            TrialSpec("smm", graph, config, record_history=True, backend=backend)
            for config in initial_configurations(protocol, graph, "random", trials, rng)
        ]

    all_executions, cells = run_spec_groups(
        families, sizes, seed, groups, jobs=jobs, telemetry=telemetry
    )

    for family, graph, _label, lo, hi in cells:
        lemma1_bad = 0
        lemma10_bad = 0
        min_growth = None
        histories = 0
        for execution in all_executions[lo:hi]:
            assert execution.history is not None and execution.stabilized
            sets = matched_sets(graph, execution.history)
            histories += 1

            lemma1_bad += len(check_lemma_1(graph, execution.history))
            lemma10_bad += len(
                check_lemma_10(graph, execution.history, execution.move_log)
            )

            # observed minimum two-active-round growth (for the table)
            moves = execution.move_log
            for t in range(1, len(moves) - 1):
                if moves[t] and moves[t + 1]:
                    growth = len(sets[t + 2]) - len(sets[t])
                    if min_growth is None or growth < min_growth:
                        min_growth = growth

        result.add(
            family=family,
            n=graph.n,
            histories=histories,
            lemma1_violations=lemma1_bad,
            lemma10_violations=lemma10_bad,
            min_two_round_growth=min_growth,
        )

    total_bad = sum(
        row["lemma1_violations"] + row["lemma10_violations"] for row in result.rows
    )
    result.note(
        f"total violations across all histories: {total_bad} "
        "(the lemmas hold iff 0)"
    )
    return result
