"""E7 — Sections 1–2's fault-tolerance claim: re-stabilization after
topology changes.

"Our algorithms are fault tolerant (reliable) in the sense that the
algorithms can detect occasional link failures and/or new link
creations in the network (due to mobility of the hosts) and can
readjust the global predicates."

Protocol runs are stabilized, the topology is then perturbed with k
random link changes (add / remove / rewire, connectivity preserved),
the stabilized configuration is migrated across the change (dangling
pointers sanitized — the link-layer notification), and the protocol
re-runs.  Reported per cell:

* ``recovery_rounds`` — mean rounds to re-stabilize after churn;
* ``fresh_rounds`` — mean rounds from a random configuration on the
  same perturbed graph (the "recompute from scratch" cost);
* ``touched`` — mean number of nodes that moved during recovery
  (fault containment: recovery is local when churn is small);
* ``radius_max`` — worst containment radius observed: the maximum hop
  distance from a changed link's endpoints to any node that moved
  during recovery (see :mod:`repro.analysis.containment`).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.containment import containment_radius, edge_fault_sites
from repro.analysis.stats import summarize
from repro.core.executor import run_synchronous
from repro.core.faults import migrate_configuration, random_configuration
from repro.experiments.common import ExperimentResult, graph_workloads
from repro.graphs.mutations import apply_churn
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution as verify_matching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.verify import verify_execution as verify_mis

DEFAULT_FAMILIES = ("tree", "er-sparse", "udg")
DEFAULT_SIZES = (16, 32, 64)
DEFAULT_CHURN = (1, 2, 4, 8)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    churn_levels: Sequence[int] = DEFAULT_CHURN,
    *,
    trials: int = 10,
    seed: int = 70,
) -> ExperimentResult:
    """Measure recovery cost after link churn; see module docstring."""
    result = ExperimentResult(
        experiment="E7",
        paper_artifact="Sections 1-2 — readjustment after link failures/creations",
        columns=[
            "protocol",
            "family",
            "n",
            "churn",
            "recovery_rounds",
            "fresh_rounds",
            "touched",
            "touched_frac",
            "radius_max",
        ],
    )
    protocols = (
        ("SMM", SynchronousMaximalMatching(), verify_matching),
        ("SIS", SynchronousMaximalIndependentSet(), verify_mis),
    )

    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        for name, protocol, verify in protocols:
            for k in churn_levels:
                recovery, fresh, touched = [], [], []
                radii = []
                for _ in range(trials):
                    # stabilize on the original topology
                    start = random_configuration(protocol, graph, rng)
                    ex0 = run_synchronous(protocol, graph, start)
                    assert ex0.stabilized

                    # perturb and migrate
                    new_graph, events = apply_churn(graph, k, rng)
                    migrated = migrate_configuration(
                        protocol, graph, new_graph, ex0.final
                    )
                    ex1 = run_synchronous(protocol, new_graph, migrated)
                    verify(new_graph, ex1)
                    recovery.append(ex1.rounds)
                    touched.append(len(ex1.moved_nodes()))
                    sites = edge_fault_sites(
                        e for ev in events for e in (*ev.added, *ev.removed)
                    )
                    if sites:
                        radius = containment_radius(
                            new_graph, sites, ex1.moved_nodes()
                        )
                        radii.append(0 if radius is None else radius)

                    # fresh-start cost on the same perturbed topology
                    ex2 = run_synchronous(
                        protocol,
                        new_graph,
                        random_configuration(protocol, new_graph, rng),
                    )
                    assert ex2.stabilized
                    fresh.append(ex2.rounds)

                result.add(
                    protocol=name,
                    family=family,
                    n=graph.n,
                    churn=k,
                    recovery_rounds=summarize(recovery).mean,
                    fresh_rounds=summarize(fresh).mean,
                    touched=summarize(touched).mean,
                    touched_frac=summarize(touched).mean / graph.n,
                    radius_max=int(summarize(radii).maximum) if radii else None,
                )

    result.note(
        "recovery_rounds < fresh_rounds and touched_frac << 1 demonstrate "
        "the self-stabilizing readjustment the paper promises: small "
        "topology changes are absorbed locally instead of recomputed "
        "globally"
    )
    return result
