"""E7 — Sections 1–2's fault-tolerance claim: re-stabilization after
topology changes.

"Our algorithms are fault tolerant (reliable) in the sense that the
algorithms can detect occasional link failures and/or new link
creations in the network (due to mobility of the hosts) and can
readjust the global predicates."

Each trial is one *fault campaign* (:mod:`repro.resilience`): the
protocol stabilizes from a random configuration, then at round
``n + 2`` — safely past the paper's ``n + 1`` stabilization bound, so
the system is quiescent when the fault hits — a churn event applies
``k`` random link changes (add / remove / rewire, connectivity
preserved, with :func:`~repro.core.faults.migrate_configuration`
sanitization), and the run continues *in place* until it re-stabilizes.
The recovery metrics come straight from
``telemetry.fault_events[0]``.  Reported per cell:

* ``recovery_rounds`` — mean rounds to re-stabilize after churn;
* ``fresh_rounds`` — mean rounds from a random configuration on the
  same perturbed graph (the "recompute from scratch" cost);
* ``touched`` — mean number of nodes that moved during recovery
  (fault containment: recovery is local when churn is small);
* ``radius_max`` — worst containment radius observed: the maximum hop
  distance from a changed link's endpoints to any node that moved
  during recovery (see :mod:`repro.analysis.containment`).

The sweep runs through the resilient trial runner: ``jobs`` fans trials
across processes, ``trial_timeout``/``retries`` bound a hung or dying
worker, and ``resume`` checkpoints completed trials to a JSONL file so
a killed sweep picks up where it left off.  Trials that still fail are
skipped (and counted in a note) instead of aborting the experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.stats import summarize
from repro.core.faults import random_configuration
from repro.experiments.common import (
    ExperimentResult,
    fallback_backend,
    graph_workloads,
)
from repro.graphs.mutations import apply_churn, edge_difference
from repro.matching.smm import SynchronousMaximalMatching
from repro.matching.verify import verify_execution as verify_matching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.mis.verify import verify_execution as verify_mis
from repro.parallel import FailedTrial, TrialSpec, run_trials
from repro.resilience import FaultEvent, FaultPlan

DEFAULT_FAMILIES = ("tree", "er-sparse", "udg")
DEFAULT_SIZES = (16, 32, 64)
DEFAULT_CHURN = (1, 2, 4, 8)


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    churn_levels: Sequence[int] = DEFAULT_CHURN,
    *,
    trials: int = 10,
    seed: int = 70,
    jobs: Optional[int] = 1,
    backend: str = "reference",
    trial_timeout: Optional[float] = None,
    retries: int = 0,
    resume: Optional[str] = None,
) -> ExperimentResult:
    """Measure recovery cost after link churn; see module docstring."""
    result = ExperimentResult(
        experiment="E7",
        paper_artifact="Sections 1-2 — readjustment after link failures/creations",
        columns=[
            "protocol",
            "family",
            "n",
            "churn",
            "recovery_rounds",
            "fresh_rounds",
            "touched",
            "touched_frac",
            "radius_max",
        ],
    )
    protocols = (
        ("SMM", "smm", SynchronousMaximalMatching(), verify_matching),
        ("SIS", "sis", SynchronousMaximalIndependentSet(), verify_mis),
    )

    # build every spec up front (all RNG draws happen here, in sweep
    # order, so the parallel fan-out stays bit-identical to serial)
    specs = []
    cells = []  # (name, verify, family, n, churn level, new_graphs, lo)
    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        for name, key, protocol, verify in protocols:
            for k in churn_levels:
                lo = len(specs)
                new_graphs = []
                for _ in range(trials):
                    start = random_configuration(protocol, graph, rng)
                    new_graph, _events = apply_churn(graph, k, rng)
                    # net link changes: sequential churn may undo its own
                    # edits, and with_edges validates against the original
                    created, destroyed = edge_difference(graph, new_graph)
                    if created or destroyed:
                        event = FaultEvent(
                            round=graph.n + 2,
                            kind="churn",
                            add_edges=tuple(sorted(created)),
                            remove_edges=tuple(sorted(destroyed)),
                        )
                    else:
                        # churn that cancelled itself out: a zero-victim
                        # perturb keeps the recovery record without
                        # triggering the random-churn fallback
                        event = FaultEvent(
                            round=graph.n + 2, kind="perturb", count=0
                        )
                    plan = FaultPlan(events=(event,), seed=0)
                    specs.append(
                        TrialSpec(
                            protocol=key,
                            graph=graph,
                            config=start,
                            options=(("fault_plan", plan),),
                            backend=fallback_backend(
                                key, "synchronous", backend, fault_plan=plan
                            ),
                        )
                    )
                    specs.append(
                        TrialSpec(
                            protocol=key,
                            graph=new_graph,
                            config=random_configuration(
                                protocol, new_graph, rng
                            ),
                            backend=fallback_backend(key, "synchronous", backend),
                        )
                    )
                    new_graphs.append(new_graph)
                cells.append((name, verify, family, graph.n, k, new_graphs, lo))

    executions = run_trials(
        specs,
        jobs=jobs,
        timeout=trial_timeout,
        retries=retries,
        checkpoint=resume,
    )
    failed = sum(1 for e in executions if isinstance(e, FailedTrial))

    for name, verify, family, n, k, new_graphs, lo in cells:
        recovery, fresh, touched, radii = [], [], [], []
        for t in range(trials):
            campaign = executions[lo + 2 * t]
            fresh_run = executions[lo + 2 * t + 1]
            if isinstance(campaign, FailedTrial) or isinstance(
                fresh_run, FailedTrial
            ):
                continue
            verify(new_graphs[t], campaign)
            event = campaign.telemetry.fault_events[0]
            recovery.append(event["recovery_rounds"])
            touched.append(event["touched"])
            radius = event["radius"]
            if event["sites"]:
                radii.append(0 if radius is None else radius)
            assert fresh_run.stabilized
            fresh.append(fresh_run.rounds)
        if not recovery:
            continue
        result.add(
            protocol=name,
            family=family,
            n=n,
            churn=k,
            recovery_rounds=summarize(recovery).mean,
            fresh_rounds=summarize(fresh).mean,
            touched=summarize(touched).mean,
            touched_frac=summarize(touched).mean / n,
            radius_max=int(summarize(radii).maximum) if radii else None,
        )

    result.note(
        "recovery_rounds < fresh_rounds and touched_frac << 1 demonstrate "
        "the self-stabilizing readjustment the paper promises: small "
        "topology changes are absorbed locally instead of recomputed "
        "globally"
    )
    result.note(
        "recovery is measured in-run: a scheduled churn event hits the "
        "stabilized system at round n+2 and telemetry.fault_events "
        "records the re-stabilization window (repro.resilience)"
    )
    if failed:
        result.note(f"{failed} trial(s) failed after retries and were skipped")
    return result
