"""E8 — Section 2's system model: the protocols over real beacons.

Part 1 (static): random geometric deployments run through the full
beacon machinery (neighbour discovery, timers, per-node round
detection).  The time to reach a legitimate, quiescent configuration —
in beacon intervals — is compared with the synchronous executor's round
count on the same topology: the beacon model should cost a small
constant factor (rounds complete asynchronously, timers add slack), not
change the shape.

Part 2 (mobile): random-waypoint hosts at increasing speeds.  Reported
per speed: predicate availability (fraction of sampled instants at
which the true topology/configuration pair satisfies the predicate),
topology change counts, and mean recovery time per illegitimacy
episode — the paper's "readjust the global predicates" made
quantitative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.adhoc.mobility import RandomWaypoint, StaticPlacement
from repro.adhoc.runner import run_until_stable, run_with_mobility
from repro.analysis.stats import summarize
from repro.core.executor import run_synchronous
from repro.experiments.common import ExperimentResult
from repro.graphs.generators import random_geometric_graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.mis.sis import SynchronousMaximalIndependentSet
from repro.rng import ensure_rng

DEFAULT_SIZES = (10, 20, 40)
DEFAULT_SPEEDS = (0.0, 0.01, 0.03, 0.06)


def _radius(n: int) -> float:
    """Connectivity-safe unit-disk radius for n uniform nodes."""
    return float(min(1.2, np.sqrt(3.0 * np.log(max(n, 2)) / max(n, 2))))


def run_static(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 5,
    seed: int = 80,
    t_b: float = 1.0,
    loss: float = 0.0,
) -> ExperimentResult:
    """Part 1 — beacon-time stabilization on static deployments."""
    result = ExperimentResult(
        experiment="E8-static",
        paper_artifact="Section 2 — beacon rounds vs synchronous rounds (static hosts)",
        columns=[
            "protocol",
            "n",
            "sync_rounds",
            "beacon_rounds",
            "beacons_per_node",
            "stabilized",
        ],
    )
    rng = ensure_rng(seed)
    protocols = (
        ("SMM", SynchronousMaximalMatching),
        ("SIS", SynchronousMaximalIndependentSet),
    )
    for n in sizes:
        radius = _radius(n)
        for name, make in protocols:
            sync_rounds, beacon_rounds, beacons = [], [], []
            all_ok = True
            for _ in range(trials):
                graph, pos = random_geometric_graph(
                    n, radius, rng, return_positions=True
                )
                protocol = make()
                ex = run_synchronous(protocol, graph)
                sync_rounds.append(ex.rounds)
                res = run_until_stable(
                    protocol,
                    StaticPlacement(pos),
                    radius=radius,
                    t_b=t_b,
                    loss=loss,
                    rng=rng,
                )
                all_ok = all_ok and res.stabilized
                beacon_rounds.append(res.beacon_rounds)
                beacons.append(res.beacons / n)
            result.add(
                protocol=name,
                n=n,
                sync_rounds=summarize(sync_rounds).mean,
                beacon_rounds=summarize(beacon_rounds).mean,
                beacons_per_node=summarize(beacons).mean,
                stabilized=all_ok,
            )
    result.note(
        "beacon_rounds tracks sync_rounds up to a small constant: the "
        "beacon model realizes the paper's synchronous rounds"
    )
    return result


def run_mobile(
    n: int = 20,
    speeds: Sequence[float] = DEFAULT_SPEEDS,
    *,
    horizon: float = 150.0,
    seed: int = 81,
    t_b: float = 1.0,
) -> ExperimentResult:
    """Part 2 — predicate availability under random-waypoint mobility."""
    result = ExperimentResult(
        experiment="E8-mobile",
        paper_artifact="Sections 1-2 — predicate availability under host mobility",
        columns=[
            "protocol",
            "speed",
            "availability",
            "topology_changes",
            "episodes",
            "mean_recovery_s",
        ],
    )
    rng = ensure_rng(seed)
    radius = _radius(n) * 1.3  # denser radio to keep the graph mostly connected
    protocols = (
        ("SMM", SynchronousMaximalMatching),
        ("SIS", SynchronousMaximalIndependentSet),
    )
    for name, make in protocols:
        for speed in speeds:
            if speed == 0.0:
                mobility = StaticPlacement.uniform(n, rng.spawn(1)[0])
            else:
                mobility = RandomWaypoint(
                    n,
                    v_min=max(speed / 2, 1e-3),
                    v_max=speed,
                    pause=2.0,
                    rng=rng.spawn(1)[0],
                )
            res = run_with_mobility(
                make(),
                mobility,
                radius=radius,
                horizon=horizon,
                t_b=t_b,
                rng=rng.spawn(1)[0],
            )
            result.add(
                protocol=name,
                speed=speed,
                availability=res.availability,
                topology_changes=res.topology_changes,
                episodes=len(res.episodes),
                mean_recovery_s=res.mean_recovery_time(),
            )
    result.note(
        "availability degrades smoothly with speed while each episode "
        "recovers in a few beacon intervals — graceful degradation, not "
        "collapse"
    )
    return result
