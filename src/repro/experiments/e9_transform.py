"""E9 — the conclusion's claim: "problems that are solvable with
self-stabilizing algorithms using the centralized model, are generally
solvable using the synchronous model.  However, there is no guarantee
that the synchronous algorithm will be fast."

Three central-daemon protocols — Hsu–Huang matching, Grundy colouring
and the (x, m) minimal dominating set — are run:

* natively under a random central daemon (moves);
* through the local-mutex refinement with id and randomized priorities
  (synchronous rounds; legitimate final configurations).

None of them stabilizes under the *raw* synchronous daemon (each
livelocks on symmetric states — the raw-livelock column demonstrates
this on a canonical bad start), so the refinement is genuinely needed;
and its measured round counts, compared against the purpose-built SMM/
SIS, quantify the "no guarantee it will be fast" caveat.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import summarize
from repro.core.configuration import Configuration
from repro.core.executor import run_central, run_synchronous
from repro.core.faults import random_configuration
from repro.core.transform import run_synchronized_central
from repro.experiments.common import ExperimentResult, graph_workloads
from repro.coloring.grundy import GrundyColoring
from repro.domination.mds import MinimalDominatingSet
from repro.graphs.generators import cycle_graph
from repro.matching.hsu_huang import HsuHuangMatching

DEFAULT_FAMILIES = ("cycle", "tree", "er-sparse")
DEFAULT_SIZES = (8, 16, 32)


def _raw_livelock_demo(protocol, graph):
    """A (protocol-instance, configuration) pair that livelocks the raw
    synchronous daemon for each protocol family (used on even cycles).

    Hsu–Huang permits an *arbitrary* propose choice, so its raw-daemon
    demo instantiates the adversarial clockwise chooser (the paper's
    counterexample); with the benign min-id default the rules coincide
    with SMM and would stabilize.
    """
    from repro.matching.variants import clockwise_chooser

    if isinstance(protocol, HsuHuangMatching):
        adversarial = HsuHuangMatching(propose_chooser=clockwise_chooser(graph.n))
        return adversarial, Configuration({i: None for i in graph.nodes})
    if isinstance(protocol, GrundyColoring):
        return protocol, Configuration({i: 0 for i in graph.nodes})
    if isinstance(protocol, MinimalDominatingSet):
        return protocol, Configuration({i: (1, 2) for i in graph.nodes})
    raise ValueError(f"no canonical livelock demo for {protocol.name}")


def run(
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    trials: int = 8,
    seed: int = 90,
    livelock_rounds: int = 120,
) -> ExperimentResult:
    """Refine three central protocols to the synchronous model."""
    result = ExperimentResult(
        experiment="E9",
        paper_artifact="Conclusion — central-daemon protocols port to the synchronous model via refinement",
        columns=[
            "protocol",
            "family",
            "n",
            "central_moves",
            "refined_id_rounds",
            "refined_rand_rounds",
            "all_legitimate",
        ],
    )
    protocols = (HsuHuangMatching(), GrundyColoring(), MinimalDominatingSet())

    for family, n, graph, rng in graph_workloads(families, sizes, seed):
        for protocol in protocols:
            moves, id_rounds, rand_rounds = [], [], []
            ok = True
            for _ in range(trials):
                config = random_configuration(protocol, graph, rng)

                ex = run_central(protocol, graph, config, strategy="random", rng=rng)
                ok = ok and ex.stabilized and ex.legitimate
                moves.append(ex.moves)

                ex = run_synchronized_central(protocol, graph, config, priority="id")
                ok = ok and ex.stabilized and ex.legitimate
                id_rounds.append(ex.rounds)

                ex = run_synchronized_central(
                    protocol, graph, config, priority="random", rng=rng
                )
                ok = ok and ex.stabilized and ex.legitimate
                rand_rounds.append(ex.rounds)

            result.add(
                protocol=protocol.name,
                family=family,
                n=graph.n,
                central_moves=summarize(moves).mean,
                refined_id_rounds=summarize(id_rounds).mean,
                refined_rand_rounds=summarize(rand_rounds).mean,
                all_legitimate=ok,
            )

    # raw synchronous livelock demonstrations (even cycle, symmetric start)
    demo_graph = cycle_graph(8)
    for protocol in protocols:
        demo_protocol, demo_config = _raw_livelock_demo(protocol, demo_graph)
        ex = run_synchronous(
            demo_protocol,
            demo_graph,
            demo_config,
            max_rounds=livelock_rounds,
        )
        result.note(
            f"{protocol.name} raw synchronous daemon on C_8 (symmetric "
            f"start): stabilized={ex.stabilized} after {ex.rounds} rounds "
            "— refinement is genuinely required"
        )
    result.note(
        "randomized-priority refinement beats id-priority on round counts "
        "(parallel moves) but both are far slower than the purpose-built "
        "SMM/SIS — the conclusion's 'no guarantee the synchronous "
        "algorithm will be fast'"
    )
    return result
