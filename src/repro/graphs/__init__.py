"""Graph substrate: topologies on which the protocols run.

The paper's system model (Section 2) is an undirected graph with a fixed
node set, unique node ids, bidirectional links and a connected topology
whose *edge set* changes over time as hosts move.  This subpackage
provides:

* :class:`~repro.graphs.graph.Graph` — an immutable adjacency-list graph
  tuned for neighbourhood queries (the only graph operation the
  protocols perform);
* :mod:`~repro.graphs.generators` — workload topologies: cycles, paths,
  trees, grids, complete and bipartite graphs, Erdős–Rényi graphs and
  random geometric (unit-disk) graphs that model ad hoc radio ranges;
* :mod:`~repro.graphs.mutations` — link churn operators used to model
  mobility-induced topology changes (experiment E7);
* :mod:`~repro.graphs.properties` — predicate checkers (matchings,
  independent sets, domination) used everywhere in verification.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    complete_graph,
    complete_bipartite_graph,
    cycle_graph,
    erdos_renyi_graph,
    from_networkx,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    star_graph,
)
from repro.graphs.mutations import (
    add_random_edge,
    apply_churn,
    remove_random_edge,
    rewire_random_edge,
)
from repro.graphs.properties import (
    is_dominating_set,
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    matched_nodes,
)

__all__ = [
    "Graph",
    "complete_graph",
    "complete_bipartite_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "from_networkx",
    "grid_graph",
    "path_graph",
    "random_geometric_graph",
    "random_tree",
    "star_graph",
    "add_random_edge",
    "apply_churn",
    "remove_random_edge",
    "rewire_random_edge",
    "is_dominating_set",
    "is_independent_set",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "matched_nodes",
]
