"""Topology generators used as experiment workloads.

Deterministic families (cycles, paths, trees, grids, complete and
bipartite graphs) exercise extreme structure: the paper's own
counterexample lives on a 4-cycle, Theorem 2's worst case is a path, and
complete graphs maximize guard contention.  Random families model ad hoc
deployments: Erdős–Rényi graphs for arbitrary multi-hop topologies and
random geometric (unit-disk) graphs for radio connectivity, the standard
abstraction for the mobile networks the paper targets.

All generators return :class:`repro.graphs.graph.Graph` with node ids
``0..n-1`` unless stated otherwise, and all randomized generators accept
a seed or generator via :func:`repro.rng.ensure_rng`.
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

import networkx as nx
import numpy as np

from repro.errors import GraphError, NotConnectedError
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (``n >= 3``).

    ``C_4`` is the paper's non-stabilization counterexample topology for
    the arbitrary-choice variant of rule R2.
    """
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    return Graph(range(n), [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """The path ``P_n`` (``n >= 1``)."""
    if n < 1:
        raise GraphError("a path needs at least 1 node")
    return Graph(range(n), [(i, i + 1) for i in range(n - 1)])


def star_graph(n: int) -> Graph:
    """The star ``K_{1,n-1}``: node 0 is the hub (``n >= 2``)."""
    if n < 2:
        raise GraphError("a star needs at least 2 nodes")
    return Graph(range(n), [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (``n >= 1``)."""
    if n < 1:
        raise GraphError("a complete graph needs at least 1 node")
    return Graph(range(n), itertools.combinations(range(n), 2))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError("both parts must be non-empty")
    return Graph(range(a + b), [(i, a + j) for i in range(a) for j in range(b)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid; node ``(r, c)`` gets id ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((r * cols + c, r * cols + c + 1))
            if r + 1 < rows:
                edges.append((r * cols + c, (r + 1) * cols + c))
    return Graph(range(rows * cols), edges)


def random_tree(n: int, rng: RngLike = None) -> Graph:
    """A uniformly random labelled tree on ``n`` nodes (Prüfer sequence)."""
    if n < 1:
        raise GraphError("a tree needs at least 1 node")
    if n == 1:
        return Graph([0], [])
    if n == 2:
        return Graph([0, 1], [(0, 1)])
    gen = ensure_rng(rng)
    prufer = [int(gen.integers(n)) for _ in range(n - 2)]
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    edges = []
    # classic linear-time Prüfer decoding
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph(range(n), edges)


def erdos_renyi_graph(
    n: int,
    p: float,
    rng: RngLike = None,
    *,
    connected: bool = True,
    max_tries: int = 200,
) -> Graph:
    """A ``G(n, p)`` random graph.

    With ``connected=True`` (the default — the paper assumes a connected
    topology) the generator resamples up to ``max_tries`` times and, as
    a last resort, adds a random spanning structure between components;
    this keeps small/sparse sweeps from failing while preserving the
    G(n,p) character for the overwhelmingly common case.
    """
    if n < 1:
        raise GraphError("need at least 1 node")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability {p} outside [0, 1]")
    gen = ensure_rng(rng)

    def sample() -> Graph:
        if n < 2:
            return Graph(range(n), [])
        # vectorized pair selection: never materialize all C(n, 2)
        # pairs in Python (prohibitive for n in the thousands)
        iu, ju = np.triu_indices(n, k=1)
        mask = gen.random(iu.shape[0]) < p
        edges = zip(iu[mask].tolist(), ju[mask].tolist())
        return Graph(range(n), edges)

    g = sample()
    if not connected:
        return g
    tries = 0
    while not g.is_connected() and tries < max_tries:
        g = sample()
        tries += 1
    if not g.is_connected():
        g = _connect_components(g, gen)
    return g


def random_geometric_graph(
    n: int,
    radius: float,
    rng: RngLike = None,
    *,
    connected: bool = True,
    max_tries: int = 200,
    return_positions: bool = False,
):
    """A random geometric (unit-disk) graph on the unit square.

    Nodes are placed uniformly at random in ``[0,1]^2`` and joined iff
    their Euclidean distance is at most ``radius`` — the standard model
    of omnidirectional radios with a fixed transmission range, i.e. the
    ad hoc networks of the paper's Section 2.

    When ``return_positions`` is true the function returns
    ``(graph, positions)`` where ``positions`` is an ``(n, 2)`` float
    array; the ad hoc simulator uses these as initial coordinates.
    """
    if n < 1:
        raise GraphError("need at least 1 node")
    if radius <= 0:
        raise GraphError("radius must be positive")
    gen = ensure_rng(rng)

    def sample():
        pos = gen.random((n, 2))
        g = unit_disk_graph(pos, radius)
        return g, pos

    g, pos = sample()
    tries = 0
    while connected and not g.is_connected() and tries < max_tries:
        g, pos = sample()
        tries += 1
    if connected and not g.is_connected():
        raise NotConnectedError(
            f"could not sample a connected RGG(n={n}, r={radius}) "
            f"in {max_tries} tries; increase the radius"
        )
    if return_positions:
        return g, pos
    return g


def unit_disk_graph(positions: np.ndarray, radius: float) -> Graph:
    """The unit-disk graph of fixed ``positions`` (``(n, 2)`` array).

    This is the pure connectivity function: the mobility simulator calls
    it on every repositioning to derive the instantaneous topology.
    Vectorized with a full pairwise-distance computation — fine for the
    n ≤ a few thousand this library targets.
    """
    pts = np.asarray(positions, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GraphError("positions must be an (n, 2) array")
    n = pts.shape[0]
    if n == 0:
        return Graph([], [])
    diff = pts[:, None, :] - pts[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    iu, ju = np.triu_indices(n, k=1)
    close = dist2[iu, ju] <= radius * radius + 1e-12
    edges = [(int(u), int(v)) for u, v, c in zip(iu, ju, close) if c]
    return Graph(range(n), edges)


def from_networkx(g: nx.Graph) -> Graph:
    """Convert a networkx graph with integer node labels."""
    for node in g.nodes:
        if not isinstance(node, int):
            raise GraphError(f"node {node!r} is not an int; relabel first")
    return Graph(g.nodes, g.edges)


def _connect_components(g: Graph, gen: np.random.Generator) -> Graph:
    """Add one random edge between successive components until connected."""
    comps = g.connected_components()
    extra = []
    for a, b in zip(comps, comps[1:]):
        u = int(gen.choice(sorted(a)))
        v = int(gen.choice(sorted(b)))
        extra.append((u, v))
    return g.with_edges(add=extra)


#: Named deterministic + random families used by the experiment sweeps.
#: Each entry maps a family name to a callable ``(n, rng) -> Graph``.
def family(name: str):
    """Return a ``(n, rng) -> Graph`` factory for a named graph family.

    Recognized names: ``cycle``, ``path``, ``star``, ``complete``,
    ``tree``, ``grid`` (nearest square), ``er-sparse`` (p = 2 ln n / n),
    ``er-dense`` (p = 0.5), ``udg`` (radius chosen for likely
    connectivity, ``r = sqrt(2.5 ln n / n)``).
    """
    deterministic = {
        "cycle": lambda n, rng=None: cycle_graph(n),
        "path": lambda n, rng=None: path_graph(n),
        "star": lambda n, rng=None: star_graph(n),
        "complete": lambda n, rng=None: complete_graph(n),
    }
    if name in deterministic:
        return deterministic[name]
    if name == "tree":
        return lambda n, rng=None: random_tree(n, rng)
    if name == "grid":
        def make_grid(n: int, rng=None) -> Graph:
            rows = max(1, int(math.isqrt(n)))
            cols = max(1, (n + rows - 1) // rows)
            g = grid_graph(rows, cols)
            # trim to exactly n nodes while staying connected (drop the
            # tail of the last row, which leaves a connected grid)
            if g.n > n:
                g = g.subgraph(range(n))
            return g
        return make_grid
    if name == "er-sparse":
        def make_er_sparse(n: int, rng=None) -> Graph:
            p = min(1.0, 2.0 * math.log(max(n, 2)) / max(n, 2))
            return erdos_renyi_graph(n, p, rng)
        return make_er_sparse
    if name == "er-dense":
        return lambda n, rng=None: erdos_renyi_graph(n, 0.5, rng)
    if name == "udg":
        def make_udg(n: int, rng=None) -> Graph:
            r = min(1.5, math.sqrt(2.5 * math.log(max(n, 2)) / max(n, 2)))
            return random_geometric_graph(n, r, rng)
        return make_udg
    raise GraphError(f"unknown graph family {name!r}")


#: The family names exercised by the experiment sweeps, in display order.
FAMILY_NAMES: Sequence[str] = (
    "cycle",
    "path",
    "star",
    "complete",
    "tree",
    "grid",
    "er-sparse",
    "er-dense",
    "udg",
)
