"""An immutable undirected graph with fast neighbourhood queries.

Why not use :class:`networkx.Graph` directly?  The protocols evaluate
guards of the form "does some neighbour satisfy P" millions of times per
experiment sweep; a frozen adjacency representation with tuple
neighbour lists is measurably faster and, being immutable, can be shared
freely between configurations, daemons and history snapshots without
defensive copying.  Conversions to/from networkx are provided for
interoperability (generators lean on networkx where convenient).

Node identifiers are ints with the natural total order, matching the
paper's assumption of unique, comparable ids (Section 2: "we assume
each node is assigned a unique ID").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

import networkx as nx

from repro.errors import GraphError
from repro.types import Edge, NodeId, canonical_edge


class Graph:
    """Immutable undirected graph over integer node ids.

    Parameters
    ----------
    nodes:
        Iterable of node ids.  Ids must be unique ints.
    edges:
        Iterable of ``(u, v)`` pairs.  Both endpoints must appear in
        ``nodes``; self loops and duplicate edges are rejected so that
        accidental workload bugs surface early.

    Notes
    -----
    Neighbour lists are stored sorted ascending.  Rule R2 of Algorithm
    SMM needs the *minimum-id* neighbour satisfying a predicate; sorted
    adjacency makes that a simple first-match scan.
    """

    __slots__ = ("_adj", "_nodes", "_edges", "_hash", "_csr")

    def __init__(self, nodes: Iterable[NodeId], edges: Iterable[Tuple[NodeId, NodeId]]):
        node_list = list(nodes)
        node_set = set(node_list)
        if len(node_set) != len(node_list):
            raise GraphError("duplicate node ids")
        for n in node_list:
            if not isinstance(n, int):
                raise GraphError(f"node id {n!r} is not an int")

        adj: Dict[NodeId, list[NodeId]] = {n: [] for n in node_list}
        edge_set: set[Edge] = set()
        for u, v in edges:
            e = canonical_edge(u, v)
            if e in edge_set:
                raise GraphError(f"duplicate edge {e}")
            if u not in node_set or v not in node_set:
                raise GraphError(f"edge {e} references unknown node")
            edge_set.add(e)
            adj[u].append(v)
            adj[v].append(u)

        self._adj: Dict[NodeId, Tuple[NodeId, ...]] = {
            n: tuple(sorted(neigh)) for n, neigh in adj.items()
        }
        self._nodes: Tuple[NodeId, ...] = tuple(sorted(node_list))
        self._edges: frozenset[Edge] = frozenset(edge_set)
        self._hash: int | None = None
        self._csr: tuple | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node ids, ascending."""
        return self._nodes

    @property
    def edges(self) -> frozenset[Edge]:
        """All edges in canonical ``(min, max)`` form."""
        return self._edges

    @property
    def n(self) -> int:
        """Number of nodes (the paper's ``n``)."""
        return len(self._nodes)

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Neighbours of ``node``, ascending.  ``N(i)`` in the paper."""
        try:
            return self._adj[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def closed_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """``N[i] = N(i) ∪ {i}``, ascending."""
        neigh = self.neighbors(node)
        out = list(neigh)
        out.append(node)
        out.sort()
        return tuple(out)

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    def max_degree(self) -> int:
        """``Δ(G)``; 0 for the empty graph."""
        return max((len(a) for a in self._adj.values()), default=0)

    def has_node(self, node: NodeId) -> bool:
        return node in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nodes, self._edges))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m})"

    def __getstate__(self):
        # Keep pickles lean: the CSR cache and hash are derived data and
        # rebuilt lazily on the receiving side (e.g. in pool workers).
        return {"_adj": self._adj, "_nodes": self._nodes, "_edges": self._edges}

    def __setstate__(self, state) -> None:
        self._adj = state["_adj"]
        self._nodes = state["_nodes"]
        self._edges = state["_edges"]
        self._hash = None
        self._csr = None

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the graph is connected (vacuously true when empty)."""
        if self.n == 0:
            return True
        seen = {self._nodes[0]}
        stack = [self._nodes[0]]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def connected_components(self) -> list[frozenset[NodeId]]:
        """Connected components as frozensets, ordered by smallest member."""
        seen: set[NodeId] = set()
        comps: list[frozenset[NodeId]] = []
        for start in self._nodes:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        stack.append(v)
            seen |= comp
            comps.append(frozenset(comp))
        return comps

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_edges(
        self,
        add: Iterable[Tuple[NodeId, NodeId]] = (),
        remove: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> "Graph":
        """Return a new graph with edges added/removed (nodes unchanged).

        This is the primitive behind topology churn: the paper's model
        keeps the node set fixed while links appear and disappear.
        """
        edge_set = set(self._edges)
        for u, v in remove:
            e = canonical_edge(u, v)
            if e not in edge_set:
                raise GraphError(f"cannot remove absent edge {e}")
            edge_set.remove(e)
        for u, v in add:
            e = canonical_edge(u, v)
            if e in edge_set:
                raise GraphError(f"cannot add existing edge {e}")
            edge_set.add(e)
        return Graph(self._nodes, edge_set)

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        for nd in keep:
            if nd not in self._adj:
                raise GraphError(f"unknown node {nd!r}")
        edges = [e for e in self._edges if e[0] in keep and e[1] in keep]
        return Graph(keep, edges)

    def relabeled(self, mapping: Mapping[NodeId, NodeId]) -> "Graph":
        """Return an isomorphic graph with node ids relabelled.

        Used by experiments that randomize the *id assignment* while
        keeping the topology fixed (both SMM's R2 and SIS's guards are
        id-sensitive, so the id permutation is part of the workload).
        """
        if set(mapping) != set(self._nodes):
            raise GraphError("relabel mapping must cover exactly the node set")
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping must be injective")
        nodes = [mapping[n] for n in self._nodes]
        edges = [(mapping[u], mapping[v]) for u, v in self._edges]
        return Graph(nodes, edges)

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (copies the structure)."""
        g = nx.Graph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self._edges)
        return g

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], n: int | None = None
    ) -> "Graph":
        """Build a graph from an edge list.

        If ``n`` is given, the node set is ``0..n-1``; otherwise it is
        the set of endpoints appearing in ``edges``.
        """
        edge_list = [canonical_edge(u, v) for u, v in edges]
        if n is not None:
            nodes: Sequence[NodeId] = range(n)
            for u, v in edge_list:
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphError(f"edge ({u}, {v}) outside 0..{n - 1}")
        else:
            nodes = sorted({x for e in edge_list for x in e})
        return cls(nodes, edge_list)

    @classmethod
    def from_csr_arrays(cls, indptr, indices, ids) -> "Graph":
        """Rebuild a graph from its own ``adjacency_arrays()`` output.

        Trusted input: the arrays are assumed to come from a validated
        graph (the zero-copy shared-memory handoff in
        :mod:`repro.parallel.shared_graph`), so the constructor's
        duplicate/unknown-node validation is skipped and the CSR cache
        is seeded with the given arrays *as views* — kernels built on
        the result read the caller's buffers without copying.
        """
        graph = cls.__new__(cls)
        ptr = indptr.tolist()
        ind = indices.tolist()
        nodes = tuple(int(i) for i in ids)
        adj: Dict[NodeId, Tuple[NodeId, ...]] = {}
        edge_set: set[Edge] = set()
        for k, node in enumerate(nodes):
            row = ind[ptr[k]:ptr[k + 1]]
            adj[node] = tuple(nodes[j] for j in row)
            for j in row:
                if j > k:  # nodes ascend, so (k, j) is already canonical
                    edge_set.add((node, nodes[j]))
        graph._adj = adj
        graph._nodes = nodes
        graph._edges = frozenset(edge_set)
        graph._hash = None
        graph._csr = (indptr, indices, ids, {node: k for k, node in enumerate(nodes)})
        return graph

    def adjacency_arrays(self):
        """CSR-style adjacency ``(indptr, indices, ids)`` as numpy arrays.

        The vectorized kernels (``repro.matching.smm_vectorized`` and
        ``repro.mis.sis_vectorized``) consume this flat layout; see the
        HPC guide note in DESIGN.md §5 (contiguous arrays, views not
        copies).  ``ids[k]`` maps dense index ``k`` back to the node id;
        ``indices`` holds *dense* neighbour indices.

        The arrays are built once per graph and cached (the graph is
        immutable), so repeated kernel construction over one graph —
        the E10 sweep inner loop — costs O(1) after the first call.
        Callers must treat the returned arrays as read-only.
        """
        indptr, indices, ids, _ = self._csr_cache()
        return indptr, indices, ids

    def dense_index(self):
        """Cached ``{node id -> dense index}`` mapping (the inverse of
        ``adjacency_arrays()``'s ``ids``).  Treat as read-only."""
        return self._csr_cache()[3]

    def _csr_cache(self):
        if self._csr is None:
            import numpy as np

            ids = np.asarray(self._nodes, dtype=np.int64)
            pos = {node: k for k, node in enumerate(self._nodes)}
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            for k, node in enumerate(self._nodes):
                indptr[k + 1] = indptr[k] + len(self._adj[node])
            indices = np.empty(int(indptr[-1]), dtype=np.int64)
            cursor = 0
            for node in self._nodes:
                for v in self._adj[node]:
                    indices[cursor] = pos[v]
                    cursor += 1
            self._csr = (indptr, indices, ids, pos)
        return self._csr
