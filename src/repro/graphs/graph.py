"""An immutable undirected graph with fast neighbourhood queries.

Why not use :class:`networkx.Graph` directly?  The protocols evaluate
guards of the form "does some neighbour satisfy P" millions of times per
experiment sweep; a frozen adjacency representation with tuple
neighbour lists is measurably faster and, being immutable, can be shared
freely between configurations, daemons and history snapshots without
defensive copying.  Conversions to/from networkx are provided for
interoperability (generators lean on networkx where convenient).

Node identifiers are ints with the natural total order, matching the
paper's assumption of unique, comparable ids (Section 2: "we assume
each node is assigned a unique ID").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

import networkx as nx

from repro.errors import GraphError
from repro.types import Edge, NodeId, canonical_edge


class Graph:
    """Immutable undirected graph over integer node ids.

    Parameters
    ----------
    nodes:
        Iterable of node ids.  Ids must be unique ints.
    edges:
        Iterable of ``(u, v)`` pairs.  Both endpoints must appear in
        ``nodes``; self loops and duplicate edges are rejected so that
        accidental workload bugs surface early.

    Notes
    -----
    Neighbour lists are stored sorted ascending.  Rule R2 of Algorithm
    SMM needs the *minimum-id* neighbour satisfying a predicate; sorted
    adjacency makes that a simple first-match scan.
    """

    __slots__ = ("_adj", "_nodes", "_edges", "_hash", "_csr")

    def __init__(self, nodes: Iterable[NodeId], edges: Iterable[Tuple[NodeId, NodeId]]):
        node_list = list(nodes)
        node_set = set(node_list)
        if len(node_set) != len(node_list):
            raise GraphError("duplicate node ids")
        for n in node_list:
            if not isinstance(n, int):
                raise GraphError(f"node id {n!r} is not an int")

        adj: Dict[NodeId, list[NodeId]] = {n: [] for n in node_list}
        edge_set: set[Edge] = set()
        for u, v in edges:
            e = canonical_edge(u, v)
            if e in edge_set:
                raise GraphError(f"duplicate edge {e}")
            if u not in node_set or v not in node_set:
                raise GraphError(f"edge {e} references unknown node")
            edge_set.add(e)
            adj[u].append(v)
            adj[v].append(u)

        self._adj: Dict[NodeId, Tuple[NodeId, ...]] = {
            n: tuple(sorted(neigh)) for n, neigh in adj.items()
        }
        self._nodes: Tuple[NodeId, ...] = tuple(sorted(node_list))
        self._edges: frozenset[Edge] = frozenset(edge_set)
        self._hash: int | None = None
        self._csr: tuple | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node ids, ascending."""
        return self._nodes

    @property
    def edges(self) -> frozenset[Edge]:
        """All edges in canonical ``(min, max)`` form.

        Graphs derived via :meth:`with_updates` materialize this set
        lazily from the adjacency dict: the streaming engine derives a
        graph per topology event, and an eager O(m) edge-set rebuild
        would dwarf the incremental CSR patch it exists to avoid.
        """
        if self._edges is None:
            self._edges = frozenset(
                (n, v) for n, row in self._adj.items() for v in row if n < v
            )
        return self._edges

    @property
    def n(self) -> int:
        """Number of nodes (the paper's ``n``)."""
        return len(self._nodes)

    @property
    def m(self) -> int:
        """Number of edges."""
        if self._edges is not None:
            return len(self._edges)
        if self._csr is not None:
            return int(self._csr[1].size) // 2
        return sum(len(row) for row in self._adj.values()) // 2

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Neighbours of ``node``, ascending.  ``N(i)`` in the paper."""
        try:
            return self._adj[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def closed_neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """``N[i] = N(i) ∪ {i}``, ascending."""
        neigh = self.neighbors(node)
        out = list(neigh)
        out.append(node)
        out.sort()
        return tuple(out)

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    def max_degree(self) -> int:
        """``Δ(G)``; 0 for the empty graph."""
        return max((len(a) for a in self._adj.values()), default=0)

    def has_node(self, node: NodeId) -> bool:
        return node in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        if u == v:
            return False
        if self._edges is not None:
            return canonical_edge(u, v) in self._edges
        return v in self._adj.get(u, ())

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._nodes == other._nodes and self.edges == other.edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nodes, self.edges))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m})"

    def __getstate__(self):
        # Keep pickles lean: the CSR cache and hash are derived data and
        # rebuilt lazily on the receiving side (e.g. in pool workers).
        # ``_edges`` may itself be lazily None on derived graphs.
        return {"_adj": self._adj, "_nodes": self._nodes, "_edges": self._edges}

    def __setstate__(self, state) -> None:
        self._adj = state["_adj"]
        self._nodes = state["_nodes"]
        self._edges = state["_edges"]
        self._hash = None
        self._csr = None

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the graph is connected (vacuously true when empty)."""
        if self.n == 0:
            return True
        seen = {self._nodes[0]}
        stack = [self._nodes[0]]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def connected_components(self) -> list[frozenset[NodeId]]:
        """Connected components as frozensets, ordered by smallest member."""
        seen: set[NodeId] = set()
        comps: list[frozenset[NodeId]] = []
        for start in self._nodes:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        stack.append(v)
            seen |= comp
            comps.append(frozenset(comp))
        return comps

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_edges(
        self,
        add: Iterable[Tuple[NodeId, NodeId]] = (),
        remove: Iterable[Tuple[NodeId, NodeId]] = (),
    ) -> "Graph":
        """Return a new graph with edges added/removed (nodes unchanged).

        This is the primitive behind topology churn: the paper's model
        keeps the node set fixed while links appear and disappear.
        """
        return self.with_updates(add_edges=add, remove_edges=remove)

    def with_updates(
        self,
        *,
        add_edges: Iterable[Tuple[NodeId, NodeId]] = (),
        remove_edges: Iterable[Tuple[NodeId, NodeId]] = (),
        add_nodes: Iterable[NodeId] = (),
        remove_nodes: Iterable[NodeId] = (),
    ) -> "Graph":
        """Derive a graph with nodes and edges added/removed incrementally.

        Unlike constructing ``Graph(nodes, edges)`` from scratch, this
        patches the derived structures: the adjacency dict copies
        untouched rows, and — crucially for the streaming engine — a
        cached CSR (:meth:`adjacency_arrays` / :meth:`dense_index`) is
        carried over by splicing only the changed rows instead of the
        O(n + m) Python rebuild.  The patched arrays are byte-identical
        to a from-scratch rebuild (pinned by ``tests/test_streaming.py``).

        Removing a node drops its incident edges implicitly.  Added
        nodes start isolated; edges may reference them in the same call
        (nodes are applied before edges).
        """
        add_edge_list = [canonical_edge(u, v) for u, v in add_edges]
        remove_edge_list = [canonical_edge(u, v) for u, v in remove_edges]
        add_node_list = list(add_nodes)
        remove_node_list = list(remove_nodes)

        removed_nodes: set[NodeId] = set()
        for nd in remove_node_list:
            if nd not in self._adj:
                raise GraphError(f"unknown node {nd!r}")
            if nd in removed_nodes:
                raise GraphError("duplicate node ids")
            removed_nodes.add(nd)
        added_nodes: set[NodeId] = set()
        for nd in add_node_list:
            if not isinstance(nd, int):
                raise GraphError(f"node id {nd!r} is not an int")
            if nd in self._adj or nd in removed_nodes:
                raise GraphError(f"cannot add existing node {nd}")
            if nd in added_nodes:
                raise GraphError("duplicate node ids")
            added_nodes.add(nd)

        edge_remove: set[Edge] = set()
        for e in remove_edge_list:
            if e[1] not in self._adj.get(e[0], ()) or e in edge_remove:
                raise GraphError(f"cannot remove absent edge {e}")
            edge_remove.add(e)
        for nd in removed_nodes:
            for v in self._adj[nd]:
                edge_remove.add(canonical_edge(nd, v))

        def _present(x: NodeId) -> bool:
            return (x in self._adj and x not in removed_nodes) or x in added_nodes

        edge_add: set[Edge] = set()
        for e in add_edge_list:
            present = e[1] in self._adj.get(e[0], ())
            if (present and e not in edge_remove) or e in edge_add:
                raise GraphError(f"cannot add existing edge {e}")
            if not _present(e[0]) or not _present(e[1]):
                raise GraphError(f"edge {e} references unknown node")
            edge_add.add(e)

        # Net per-row adjacency deltas (an edge both removed and added
        # in one call is a no-op and must not dirty its rows).
        net_removed = edge_remove - edge_add
        net_added = edge_add - edge_remove
        deltas: Dict[NodeId, Tuple[set, set]] = {}
        for u, v in net_removed:
            for x, y in ((u, v), (v, u)):
                if x not in removed_nodes:
                    deltas.setdefault(x, (set(), set()))[0].add(y)
        for u, v in net_added:
            for x, y in ((u, v), (v, u)):
                deltas.setdefault(x, (set(), set()))[1].add(y)

        adj = dict(self._adj)
        for nd in removed_nodes:
            del adj[nd]
        for nd in added_nodes:
            adj[nd] = ()
        for node, (gone, new) in deltas.items():
            row = set(self._adj.get(node, ()))
            row.difference_update(gone)
            row.update(new)
            adj[node] = tuple(sorted(row))

        graph = Graph.__new__(Graph)
        graph._adj = adj
        if removed_nodes or added_nodes:
            graph._nodes = tuple(sorted((set(self._nodes) - removed_nodes) | added_nodes))
        else:
            graph._nodes = self._nodes
        # Lazy: materialized from ``_adj`` on first ``.edges`` access.
        # An eager frozenset rebuild here is O(m) and would dominate the
        # per-event cost the incremental CSR patch keeps at O(changed).
        graph._edges = None
        graph._hash = None
        graph._csr = None
        if self._csr is not None:
            if removed_nodes or added_nodes:
                graph._csr = self._csr_patch_nodes(
                    graph, deltas, removed_nodes, added_nodes
                )
            else:
                graph._csr = self._csr_patch_edges(graph, deltas)
        return graph

    def _csr_patch_edges(self, graph: "Graph", deltas) -> tuple:
        """Patch the cached CSR for edge-only changes (node set fixed).

        Only the rows whose adjacency changed are rebuilt; everything
        else is spliced over with C-level array copies.  Returns a new
        ``(indptr, indices, ids, pos)`` tuple byte-identical to what
        :meth:`_csr_cache` would rebuild from scratch (``ids``/``pos``
        are shared with ``self`` — they are treated as read-only).
        """
        indptr, indices, ids, pos = self._csr
        if not deltas:
            return self._csr
        import numpy as np

        changed = sorted(pos[node] for node in deltas)
        delta = np.zeros(self.n, dtype=np.int64)
        parts = []
        prev = 0
        for k in changed:
            row = graph._adj[self._nodes[k]]
            delta[k] = len(row) - int(indptr[k + 1] - indptr[k])
            parts.append(indices[prev:int(indptr[k])])
            parts.append(np.fromiter((pos[v] for v in row), dtype=np.int64, count=len(row)))
            prev = int(indptr[k + 1])
        parts.append(indices[prev:])
        new_indices = np.concatenate(parts)
        new_indptr = indptr.copy()
        np.cumsum(delta, out=delta)
        new_indptr[1:] += delta
        return (new_indptr, new_indices, ids, pos)

    def _csr_patch_nodes(self, graph: "Graph", deltas, removed_nodes, added_nodes) -> tuple:
        """Patch the cached CSR across a node-set change.

        Surviving rows are filtered and remapped with vectorized masks
        (dense indices shift when nodes enter/leave the sorted id
        order); only rows with edge deltas and the new empty rows are
        rebuilt.  Byte-identical to a from-scratch rebuild.
        """
        import bisect

        import numpy as np

        old_indptr, old_indices, old_ids, old_pos = self._csr
        new_nodes = graph._nodes
        new_n = len(new_nodes)
        new_ids = np.asarray(new_nodes, dtype=np.int64)
        new_pos = {node: k for k, node in enumerate(new_nodes)}

        old_n = self.n
        keep = np.ones(old_n, dtype=bool)
        for nd in removed_nodes:
            keep[old_pos[nd]] = False
        remap = np.full(old_n, -1, dtype=np.int64)
        remap[keep] = np.searchsorted(new_ids, old_ids[keep])

        # Drop entries in removed rows or pointing at removed nodes,
        # then remap survivors to their new dense indices (monotone, so
        # per-row sortedness is preserved).
        row_of = np.repeat(np.arange(old_n), np.diff(old_indptr))
        ekeep = keep[row_of] & keep[old_indices] if old_indices.size else np.zeros(0, bool)
        kept_entries = remap[old_indices[ekeep]]
        kept_counts = np.bincount(row_of[ekeep], minlength=old_n)[keep]
        kept_indptr = np.zeros(kept_counts.size + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=kept_indptr[1:])

        added_positions = sorted(new_pos[nd] for nd in added_nodes)
        special = sorted(
            set(added_positions) | {new_pos[nd] for nd in deltas if nd in new_pos}
        )

        def kept_row(k: int) -> int:
            return k - bisect.bisect_left(added_positions, k)

        parts = []
        prev_k = 0
        for k in special:
            if prev_k < k:
                parts.append(kept_entries[kept_indptr[kept_row(prev_k)]:kept_indptr[kept_row(k)]])
            row = graph._adj[new_nodes[k]]
            parts.append(np.fromiter((new_pos[v] for v in row), dtype=np.int64, count=len(row)))
            prev_k = k + 1
        if prev_k < new_n:
            parts.append(kept_entries[kept_indptr[kept_row(prev_k)]:])
        if parts:
            new_indices = np.concatenate(parts)
        else:
            new_indices = np.empty(0, dtype=np.int64)

        new_indptr = np.zeros(new_n + 1, dtype=np.int64)
        for k, node in enumerate(new_nodes):
            new_indptr[k + 1] = new_indptr[k] + len(graph._adj[node])
        return (new_indptr, new_indices, new_ids, new_pos)

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        for nd in keep:
            if nd not in self._adj:
                raise GraphError(f"unknown node {nd!r}")
        edges = [e for e in self.edges if e[0] in keep and e[1] in keep]
        return Graph(keep, edges)

    def relabeled(self, mapping: Mapping[NodeId, NodeId]) -> "Graph":
        """Return an isomorphic graph with node ids relabelled.

        Used by experiments that randomize the *id assignment* while
        keeping the topology fixed (both SMM's R2 and SIS's guards are
        id-sensitive, so the id permutation is part of the workload).
        """
        if set(mapping) != set(self._nodes):
            raise GraphError("relabel mapping must cover exactly the node set")
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("relabel mapping must be injective")
        nodes = [mapping[n] for n in self._nodes]
        edges = [(mapping[u], mapping[v]) for u, v in self.edges]
        return Graph(nodes, edges)

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (copies the structure)."""
        g = nx.Graph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], n: int | None = None
    ) -> "Graph":
        """Build a graph from an edge list.

        If ``n`` is given, the node set is ``0..n-1``; otherwise it is
        the set of endpoints appearing in ``edges``.
        """
        edge_list = [canonical_edge(u, v) for u, v in edges]
        if n is not None:
            nodes: Sequence[NodeId] = range(n)
            for u, v in edge_list:
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphError(f"edge ({u}, {v}) outside 0..{n - 1}")
        else:
            nodes = sorted({x for e in edge_list for x in e})
        return cls(nodes, edge_list)

    @classmethod
    def from_csr_arrays(cls, indptr, indices, ids) -> "Graph":
        """Rebuild a graph from its own ``adjacency_arrays()`` output.

        Trusted input: the arrays are assumed to come from a validated
        graph (the zero-copy shared-memory handoff in
        :mod:`repro.parallel.shared_graph`), so the constructor's
        duplicate/unknown-node validation is skipped and the CSR cache
        is seeded with the given arrays *as views* — kernels built on
        the result read the caller's buffers without copying.
        """
        graph = cls.__new__(cls)
        ptr = indptr.tolist()
        ind = indices.tolist()
        nodes = tuple(int(i) for i in ids)
        adj: Dict[NodeId, Tuple[NodeId, ...]] = {}
        edge_set: set[Edge] = set()
        for k, node in enumerate(nodes):
            row = ind[ptr[k]:ptr[k + 1]]
            adj[node] = tuple(nodes[j] for j in row)
            for j in row:
                if j > k:  # nodes ascend, so (k, j) is already canonical
                    edge_set.add((node, nodes[j]))
        graph._adj = adj
        graph._nodes = nodes
        graph._edges = frozenset(edge_set)
        graph._hash = None
        graph._csr = (indptr, indices, ids, {node: k for k, node in enumerate(nodes)})
        return graph

    def adjacency_arrays(self):
        """CSR-style adjacency ``(indptr, indices, ids)`` as numpy arrays.

        The vectorized kernels (``repro.matching.smm_vectorized`` and
        ``repro.mis.sis_vectorized``) consume this flat layout; see the
        HPC guide note in DESIGN.md §5 (contiguous arrays, views not
        copies).  ``ids[k]`` maps dense index ``k`` back to the node id;
        ``indices`` holds *dense* neighbour indices.

        The arrays are built once per graph and cached (the graph is
        immutable), so repeated kernel construction over one graph —
        the E10 sweep inner loop — costs O(1) after the first call.
        Callers must treat the returned arrays as read-only.
        """
        indptr, indices, ids, _ = self._csr_cache()
        return indptr, indices, ids

    def dense_index(self):
        """Cached ``{node id -> dense index}`` mapping (the inverse of
        ``adjacency_arrays()``'s ``ids``).  Treat as read-only."""
        return self._csr_cache()[3]

    def _csr_cache(self):
        if self._csr is None:
            import numpy as np

            ids = np.asarray(self._nodes, dtype=np.int64)
            pos = {node: k for k, node in enumerate(self._nodes)}
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            for k, node in enumerate(self._nodes):
                indptr[k + 1] = indptr[k] + len(self._adj[node])
            indices = np.empty(int(indptr[-1]), dtype=np.int64)
            cursor = 0
            for node in self._nodes:
                for v in self._adj[node]:
                    indices[cursor] = pos[v]
                    cursor += 1
            self._csr = (indptr, indices, ids, pos)
        return self._csr
