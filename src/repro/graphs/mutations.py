"""Topology churn operators modelling mobility-induced link changes.

The paper's fault model (Sections 1–2) is exactly this: "occasional link
failures and/or new link creations in the network (due to mobility of
the hosts)".  Experiment E7 stabilizes a protocol, perturbs the topology
with these operators and measures the rounds needed to re-stabilize.

All operators keep the node set fixed and (by default) preserve
connectivity, matching the model's standing assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

from repro.errors import GraphError, NotConnectedError
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import Edge, NodeId, canonical_edge


def _non_edges(g: Graph) -> list[Edge]:
    """All node pairs that are not currently linked."""
    out: list[Edge] = []
    nodes = g.nodes
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if not g.has_edge(u, v):
                out.append((u, v))
    return out


def _removable_edges(g: Graph, keep_connected: bool) -> list[Edge]:
    """Edges whose removal is allowed (non-bridges if staying connected).

    Bridges are found once with Tarjan's algorithm (via networkx) —
    O(n + m) — instead of per-edge connectivity probes.
    """
    candidates = sorted(g.edges)
    if not keep_connected:
        return candidates
    import networkx as nx

    # nx.bridges handles disconnected graphs per component, so the
    # criterion "removal must not increase the component count" holds
    # in general
    bridges = {canonical_edge(u, v) for u, v in nx.bridges(g.to_networkx())}
    return [e for e in candidates if e not in bridges]


def add_random_edge(g: Graph, rng: RngLike = None) -> Tuple[Graph, Edge]:
    """Create a random new link (a pair of hosts moved into range).

    Returns the new graph and the edge added.  Raises
    :class:`GraphError` if the graph is already complete.
    """
    gen = ensure_rng(rng)
    candidates = _non_edges(g)
    if not candidates:
        raise GraphError("graph is complete; no edge can be added")
    e = candidates[int(gen.integers(len(candidates)))]
    return g.with_edges(add=[e]), e


def remove_random_edge(
    g: Graph, rng: RngLike = None, *, keep_connected: bool = True
) -> Tuple[Graph, Edge]:
    """Fail a random link (a pair of hosts moved out of range).

    With ``keep_connected=True`` only non-bridge edges are candidates,
    honouring the paper's assumption that "the network topology remains
    connected".  Raises :class:`NotConnectedError` when no edge can be
    removed without disconnecting.
    """
    gen = ensure_rng(rng)
    candidates = _removable_edges(g, keep_connected)
    if not candidates:
        raise NotConnectedError("no edge can be removed under the constraints")
    e = candidates[int(gen.integers(len(candidates)))]
    return g.with_edges(remove=[e]), e


def rewire_random_edge(
    g: Graph, rng: RngLike = None, *, keep_connected: bool = True
) -> Tuple[Graph, Edge, Edge]:
    """Remove one random link and add another (a host that moved).

    Returns ``(graph, removed, added)``.
    """
    g2, removed = remove_random_edge(g, rng, keep_connected=keep_connected)
    g3, added = add_random_edge(g2, rng)
    return g3, removed, added


@dataclass(frozen=True)
class ChurnEvent:
    """One applied topology change, for experiment logging."""

    kind: str  # "add" | "remove" | "rewire"
    added: Tuple[Edge, ...] = field(default=())
    removed: Tuple[Edge, ...] = field(default=())


def apply_churn(
    g: Graph,
    k: int,
    rng: RngLike = None,
    *,
    kinds: Sequence[str] = ("add", "remove", "rewire"),
    keep_connected: bool = True,
) -> Tuple[Graph, list[ChurnEvent]]:
    """Apply ``k`` random topology changes drawn uniformly from ``kinds``.

    Each change is one of:

    * ``"add"``     — a new link appears,
    * ``"remove"``  — an existing (non-bridge) link fails,
    * ``"rewire"``  — one link fails and another appears.

    Changes that are impossible in the current graph (e.g. ``add`` on a
    complete graph) fall back to another kind; if no kind is applicable
    the churn stops early.  Returns the final graph plus the event log.
    """
    if k < 0:
        raise GraphError("churn count must be non-negative")
    for kind in kinds:
        if kind not in ("add", "remove", "rewire"):
            raise GraphError(f"unknown churn kind {kind!r}")
    gen = ensure_rng(rng)
    events: list[ChurnEvent] = []
    current = g
    for _ in range(k):
        order = list(kinds)
        gen.shuffle(order)
        applied = False
        for kind in order:
            try:
                if kind == "add":
                    current, e = add_random_edge(current, gen)
                    events.append(ChurnEvent("add", added=(e,)))
                elif kind == "remove":
                    current, e = remove_random_edge(
                        current, gen, keep_connected=keep_connected
                    )
                    events.append(ChurnEvent("remove", removed=(e,)))
                else:
                    current, rem, add = rewire_random_edge(
                        current, gen, keep_connected=keep_connected
                    )
                    events.append(ChurnEvent("rewire", added=(add,), removed=(rem,)))
                applied = True
                break
            except (GraphError, NotConnectedError):
                continue
        if not applied:
            break
    return current, events


def edge_difference(before: Graph, after: Graph) -> Tuple[set[Edge], set[Edge]]:
    """Return ``(created, destroyed)`` link sets between two topologies."""
    if before.nodes != after.nodes:
        raise GraphError("edge_difference requires identical node sets")
    created = set(after.edges) - set(before.edges)
    destroyed = set(before.edges) - set(after.edges)
    return created, destroyed
