"""Predicate checkers for the global properties the protocols maintain.

These are the *specifications* against which every protocol run is
verified: a stabilized SMM configuration must induce a maximal matching
(paper Lemma 8), a stabilized SIS configuration a maximal independent
set (Lemma 13).  Maximal independent sets are also dominating sets, a
fact the MIS tests exploit.

All checkers are pure functions over a :class:`~repro.graphs.graph.Graph`
plus a candidate set, written for clarity rather than speed (they run
once per trial, not once per round).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.types import Edge, NodeId, canonical_edge


def _as_edge_set(edges: Iterable[Tuple[NodeId, NodeId]]) -> Set[Edge]:
    return {canonical_edge(u, v) for u, v in edges}


def is_matching(g: Graph, edges: Iterable[Tuple[NodeId, NodeId]]) -> bool:
    """True iff ``edges`` is a matching of ``g``.

    A matching is a subset of E whose members are pairwise disjoint
    (paper Section 3).  Edges outside the graph disqualify immediately.
    """
    m = _as_edge_set(edges)
    if not all(e in g.edges for e in m):
        return False
    used: set[NodeId] = set()
    for u, v in m:
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True


def matched_nodes(edges: Iterable[Tuple[NodeId, NodeId]]) -> frozenset[NodeId]:
    """The set of endpoints of a matching (the paper's ``M_t`` node set)."""
    out: set[NodeId] = set()
    for u, v in _as_edge_set(edges):
        out.add(u)
        out.add(v)
    return frozenset(out)


def is_maximal_matching(g: Graph, edges: Iterable[Tuple[NodeId, NodeId]]) -> bool:
    """True iff ``edges`` is a matching no proper superset of which matches.

    Equivalently: a matching such that every edge of ``g`` touches a
    matched node (otherwise that edge could be added).
    """
    m = _as_edge_set(edges)
    if not is_matching(g, m):
        return False
    covered = matched_nodes(m)
    return all(u in covered or v in covered for u, v in g.edges)


def is_independent_set(g: Graph, nodes: AbstractSet[NodeId]) -> bool:
    """True iff no two members of ``nodes`` are adjacent in ``g``."""
    s = set(nodes)
    for nd in s:
        if nd not in g:
            return False
    return all(not (u in s and v in s) for u, v in g.edges)


def is_dominating_set(g: Graph, nodes: AbstractSet[NodeId]) -> bool:
    """True iff every node is in ``nodes`` or adjacent to a member."""
    s = set(nodes)
    for nd in s:
        if nd not in g:
            return False
    return all(
        node in s or any(x in s for x in g.neighbors(node)) for node in g.nodes
    )


def is_maximal_independent_set(g: Graph, nodes: AbstractSet[NodeId]) -> bool:
    """True iff ``nodes`` is independent and inclusion-maximal.

    An independent set is maximal iff it is also dominating: a
    non-dominated node could be added without breaking independence.
    """
    return is_independent_set(g, nodes) and is_dominating_set(g, nodes)


def greedy_mis_by_descending_id(g: Graph) -> frozenset[NodeId]:
    """The unique stable set of Algorithm SIS: greedy MIS by descending id.

    A stable SIS configuration satisfies ``x(i) = 1`` iff no neighbour
    ``j > i`` has ``x(j) = 1``; resolving that recursion from the
    largest id downward yields exactly this greedy set.  Experiment E2
    checks that every stabilized run lands on this set.
    """
    in_set: set[NodeId] = set()
    for node in sorted(g.nodes, reverse=True):
        if not any(j in in_set for j in g.neighbors(node) if j > node):
            in_set.add(node)
    return frozenset(in_set)


def greedy_maximal_matching(g: Graph) -> frozenset[Edge]:
    """A deterministic sequential maximal matching (offline comparator).

    Scans edges in canonical order and adds every edge whose endpoints
    are both free.  Used as the classical (non-fault-tolerant) baseline:
    it produces a valid maximal matching but must be recomputed from
    scratch on any topology change, unlike SMM which self-repairs.
    """
    used: set[NodeId] = set()
    out: set[Edge] = set()
    for u, v in sorted(g.edges):
        if u not in used and v not in used:
            out.add((u, v))
            used.add(u)
            used.add(v)
    return frozenset(out)


def pointer_matching(pointers: Mapping[NodeId, NodeId | None]) -> frozenset[Edge]:
    """Extract the matched edges from a pointer configuration.

    An edge ``{i, j}`` is matched iff the pointers reciprocate
    (``i -> j`` and ``j -> i`` — the paper's ``i <-> j``).
    """
    out: set[Edge] = set()
    for i, p in pointers.items():
        if p is None or p == i:
            continue
        if pointers.get(p) == i:
            out.add(canonical_edge(i, p))
    return frozenset(out)


def matching_number_upper_bound(g: Graph) -> int:
    """A trivial upper bound on the matching size: ``floor(n / 2)``."""
    return g.n // 2


def maximum_matching_size(g: Graph) -> int:
    """The maximum matching size, via networkx (Blossom algorithm).

    Used by tests to check the classical guarantee that any *maximal*
    matching has at least half the maximum size.
    """
    import networkx as nx

    return len(nx.max_weight_matching(g.to_networkx(), maxcardinality=True))
