"""Shared CSR helpers for the vectorized active-set kernels.

Both NumPy round kernels (:mod:`repro.matching.smm_vectorized` and
:mod:`repro.mis.sis_vectorized`) step a *frontier* of dirty nodes: after
each round only the nodes whose closed neighbourhood changed need their
decision recomputed.  The helpers here turn a set of dirty rows of a CSR
adjacency into flat entry positions without any per-row Python loop.
"""

from __future__ import annotations

import numpy as np


def csr_entry_positions(indptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR entry positions of ``rows``.

    Returns ``(positions, counts)`` where ``positions`` is the
    concatenation of ``range(indptr[r], indptr[r+1])`` over ``rows`` (in
    row order) and ``counts[j]`` is the degree of ``rows[j]``.  This is
    the standard "concatenate ranges" construction: one ``arange`` plus
    one ``repeat``, no Python loop.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.arange(total, dtype=np.int64) + np.repeat(starts - shift, counts)
    return positions, counts


def closed_neighborhood(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Sorted unique dense indices of ``rows`` plus all their neighbours
    (``N[rows]`` — the next round's dirty set)."""
    positions, _ = csr_entry_positions(indptr, rows)
    return np.unique(np.concatenate((rows, indices[positions])))
