"""Shared CSR and packed-state helpers for the vectorized kernels.

Both NumPy round kernels (:mod:`repro.matching.smm_vectorized` and
:mod:`repro.mis.sis_vectorized`) step a *frontier* of dirty nodes: after
each round only the nodes whose closed neighbourhood changed need their
decision recomputed.  The helpers here turn a set of dirty rows of a CSR
adjacency into flat entry positions without any per-row Python loop, and
provide the packed state layout primitives shared by the single-run and
batch kernels:

* :func:`state_dtype` — the narrowest signed integer dtype that can hold
  a dense pointer value plus the ``n`` "+inf" sentinel used by segmented
  minima (int32 up to ~2**31 nodes, int64 beyond).
* :func:`segment_min` / :func:`segment_any` — per-CSR-row reductions via
  ``ufunc.reduceat`` (contiguous segments), replacing the buffered
  ``ufunc.at`` scatter which is an order of magnitude slower.
* :func:`pack_bits` / :func:`unpack_bits` — bitset packing for the SIS
  0/1 membership arrays (8 nodes per byte, little bit order, so node
  ``k`` is bit ``k % 8`` of byte ``k // 8``).

See docs/performance.md ("State layout & memory") for the layout rules.
"""

from __future__ import annotations

import numpy as np

#: Explicit NULL-pointer sentinel of the packed SMM layout (dense pointer
#: arrays hold values in ``{SMM_NULL} ∪ {0..n-1}``).
SMM_NULL = -1


def state_dtype(n: int) -> np.dtype:
    """Narrowest signed dtype for dense pointer/index state over ``n`` nodes.

    Segmented minima use ``n`` itself as a "+inf" sentinel, so ``n`` (not
    just ``n - 1``) must be representable; int32 therefore covers
    ``n <= 2**31 - 2`` and anything larger falls back to int64.
    """
    return np.dtype(np.int32) if n <= 2**31 - 2 else np.dtype(np.int64)


def csr_entry_positions(indptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR entry positions of ``rows``.

    Returns ``(positions, counts)`` where ``positions`` is the
    concatenation of ``range(indptr[r], indptr[r+1])`` over ``rows`` (in
    row order) and ``counts[j]`` is the degree of ``rows[j]``.  This is
    the standard "concatenate ranges" construction: one ``arange`` plus
    one ``repeat``, no Python loop.
    """
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.arange(total, dtype=np.int64) + np.repeat(starts - shift, counts)
    return positions, counts


def closed_neighborhood(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Sorted unique dense indices of ``rows`` plus all their neighbours
    (``N[rows]`` — the next round's dirty set)."""
    positions, _ = csr_entry_positions(indptr, rows)
    return np.unique(np.concatenate((rows, indices[positions])))


def segment_min(vals: np.ndarray, indptr: np.ndarray, sentinel: int) -> np.ndarray:
    """Per-segment minimum of contiguous segments of ``vals``.

    ``indptr`` delimits ``len(indptr) - 1`` segments exactly like a CSR
    row pointer.  Empty segments yield ``sentinel``.  ``reduceat`` on an
    empty segment returns the *next* segment's first element (documented
    NumPy behaviour), so empty segments are masked explicitly, and start
    offsets are clipped into range for trailing empty segments.
    """
    nseg = indptr.size - 1
    if vals.size == 0:
        return np.full(nseg, sentinel, dtype=vals.dtype)
    empty = indptr[:-1] == indptr[1:]
    starts = np.minimum(indptr[:-1], vals.size - 1)
    out = np.minimum.reduceat(vals, starts)
    out[empty] = sentinel
    return out


def segment_any(mask: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment logical OR of contiguous segments of a boolean ``mask``.

    Same segment convention and empty-segment handling as
    :func:`segment_min`; empty segments yield ``False``.
    """
    nseg = indptr.size - 1
    if mask.size == 0:
        return np.zeros(nseg, dtype=bool)
    empty = indptr[:-1] == indptr[1:]
    starts = np.minimum(indptr[:-1], mask.size - 1)
    out = np.logical_or.reduceat(mask, starts)
    out[empty] = False
    return out


def pack_bits(x: np.ndarray) -> np.ndarray:
    """Pack a 0/1 membership array into a bitset (uint8, 8 nodes/byte).

    Little bit order: node ``k`` is bit ``k % 8`` of byte ``k // 8``.
    """
    return np.packbits(np.asarray(x, dtype=np.uint8), bitorder="little")


def unpack_bits(bits: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``n`` bits as a uint8 0/1
    array."""
    return np.unpackbits(bits, count=n, bitorder="little")
