"""Maximal matching protocols (paper Section 3).

* :class:`~repro.matching.smm.SynchronousMaximalMatching` — Algorithm
  SMM (Fig. 1): rules R1 (accept proposal), R2 (propose to the
  minimum-id null neighbour), R3 (back off).  Stabilizes to a maximal
  matching in at most n+1 synchronous rounds (Theorem 1).
* :mod:`~repro.matching.variants` — the arbitrary-choice variant whose
  non-stabilization on even cycles motivates the min-id requirement,
  plus a randomized-choice variant used as an ablation.
* :class:`~repro.matching.hsu_huang.HsuHuangMatching` — the central
  daemon baseline of Hsu & Huang (IPL 1992) that the paper compares
  against.
* :mod:`~repro.matching.classification` — the node-type taxonomy of
  Figs. 2–3 (M / A0 / A1 / PA / PM / PP) and the transition-diagram
  validator.
* :mod:`~repro.matching.smm_vectorized` — a NumPy kernel for the SMM
  synchronous round, used by the scaling benchmarks.
"""

from repro.matching.smm import (
    MatchingProtocolBase,
    SynchronousMaximalMatching,
    min_id_chooser,
    max_id_chooser,
    random_chooser,
)
from repro.matching.variants import (
    ArbitraryChoiceSMM,
    RandomizedSMM,
    clockwise_chooser,
)
from repro.matching.hsu_huang import HsuHuangMatching
from repro.matching.classification import (
    ALLOWED_TRANSITIONS,
    TRANSIENT_TYPES,
    NodeType,
    classify,
    classify_node,
    observed_transitions,
    type_counts,
    validate_transitions,
)
from repro.matching.verify import (
    matching_of,
    is_stable_configuration,
    verify_execution,
)

__all__ = [
    "MatchingProtocolBase",
    "SynchronousMaximalMatching",
    "ArbitraryChoiceSMM",
    "RandomizedSMM",
    "HsuHuangMatching",
    "min_id_chooser",
    "max_id_chooser",
    "random_chooser",
    "clockwise_chooser",
    "NodeType",
    "ALLOWED_TRANSITIONS",
    "TRANSIENT_TYPES",
    "classify",
    "classify_node",
    "type_counts",
    "observed_transitions",
    "validate_transitions",
    "matching_of",
    "is_stable_configuration",
    "verify_execution",
]
