"""Adversarial initial configurations for SMM worst-case probing.

Random initial states recover quickly (a couple of rounds — see E1's
``random`` rows); the configurations that push SMM towards its n+1
bound are *structured*.  This module builds them:

* :func:`proposal_chain` — on a path, every node points to its right
  neighbour: a chain of unreciprocated proposals.  Back-offs and
  re-proposals then ripple down the path.
* :func:`pessimal_cycle` — on a cycle, everyone points clockwise: the
  rotational analogue, maximally symmetric.
* :func:`all_null` — the clean start, which on id-ordered cycles/paths
  already exhibits the slow "zipper": node 0 proposes to 1, they match,
  node 2's proposal to 1 dies, 2 proposes to 3, ... — Θ(n) rounds, the
  family behind Theorem 1's tightness.
* :func:`worst_case_rounds` — sweep all three on one graph and report
  the slowest, used by experiment E1's ``adversarial`` rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.configuration import Configuration
from repro.core.executor import run_synchronous
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.matching.smm import SynchronousMaximalMatching
from repro.types import NodeId, Pointer


def all_null(graph: Graph) -> Configuration:
    """The clean start ``i -> *`` for every node."""
    return Configuration({node: None for node in graph.nodes})


def proposal_chain(graph: Graph) -> Configuration:
    """Each node points to its smallest *larger-id* neighbour (the last
    node of each chain stays null).

    On a path with ascending ids this is the canonical proposal chain
    0 -> 1 -> 2 -> ...; on general graphs it induces a forest of
    pointer chains ordered by id — a dense tangle of unreciprocated
    proposals that all have to unwind.
    """
    states: Dict[NodeId, Pointer] = {}
    for node in graph.nodes:
        larger = [j for j in graph.neighbors(node) if j > node]
        states[node] = min(larger) if larger else None
    return Configuration(states)


def reverse_proposal_chain(graph: Graph) -> Configuration:
    """Each node points to its largest *smaller-id* neighbour — the
    mirror tangle (proposals point away from where R2 would send
    them)."""
    states: Dict[NodeId, Pointer] = {}
    for node in graph.nodes:
        smaller = [j for j in graph.neighbors(node) if j < node]
        states[node] = max(smaller) if smaller else None
    return Configuration(states)


def pessimal_cycle(graph: Graph) -> Configuration:
    """On a cycle with ids ``0..n-1``, everyone points clockwise.

    This is the *state* of the paper's counterexample; under the
    min-id rule it is perfectly legal as an initial configuration and
    forces a global back-off wave before any matching can form.
    """
    n = graph.n
    expected = {(i, (i + 1) % n) for i in range(n)}
    canonical = {(min(e), max(e)) for e in expected}
    if set(graph.edges) != canonical:
        raise GraphError("pessimal_cycle needs the standard cycle 0..n-1")
    return Configuration({i: (i + 1) % n for i in range(n)})


def adversarial_configurations(graph: Graph) -> Iterable[Tuple[str, Configuration]]:
    """All applicable adversarial starts for ``graph``, with labels."""
    yield "all-null", all_null(graph)
    yield "proposal-chain", proposal_chain(graph)
    yield "reverse-chain", reverse_proposal_chain(graph)
    try:
        yield "pessimal-cycle", pessimal_cycle(graph)
    except GraphError:
        pass


def worst_case_rounds(
    graph: Graph, *, max_rounds: int | None = None
) -> Tuple[int, str]:
    """Rounds of the slowest adversarial start (and its label).

    Every run is verified to stabilize within Theorem 1's bound; a
    budget overrun raises through the executor.
    """
    protocol = SynchronousMaximalMatching()
    budget = max_rounds if max_rounds is not None else graph.n + 2
    worst = (-1, "none")
    for label, config in adversarial_configurations(graph):
        execution = run_synchronous(
            protocol, graph, config, max_rounds=budget, raise_on_timeout=True
        )
        if execution.rounds > worst[0]:
            worst = (execution.rounds, label)
    return worst
