"""Node-type taxonomy and transition diagram (paper Figs. 2–3).

For any configuration the paper classifies every node (M = matched,
P = pointing, A = aloof):

* ``M``  — matched: ``i <-> j`` for some neighbour ``j``;
* ``A``  — aloof: null pointer; refined into
  * ``A0`` (the paper's ``A^∅``) — aloof with **no** suitor
    (``¬∃ j ∈ N(i): j -> i``),
  * ``A1`` — aloof with at least one suitor;
* ``P``  — pointing, unreciprocated (``i -> j``, ``j ̸-> i``); refined
  by the pointee's class into ``PA`` (pointee aloof), ``PM`` (pointee
  matched), ``PP`` (pointee pointing).

``{M, A, P}`` weakly partitions V; ``{A0, A1}`` partitions A and
``{PA, PM, PP}`` partitions P.

Lemmas 1–6 prove that the only possible one-round type transitions are
the arrows of Fig. 3, encoded here in :data:`ALLOWED_TRANSITIONS`:

* ``M -> M``                       (Lemma 1: matched nodes stay matched)
* ``PM -> A0``, ``PP -> A0``       (Lemmas 2–3: back-off, and no new
  suitor can arrive at a node that was not null)
* ``PA -> M | PM``                 (Lemma 4: the aloof pointee must
  accept *someone*)
* ``A1 -> M``                      (Lemma 5: a suitor is accepted and
  suitors cannot move)
* ``A0 -> A0 | M | PM | PP``       (Lemma 6)

Since no arrow *enters* ``A1`` or ``PA``, both are empty from round 1
on (Lemma 7) — :data:`TRANSIENT_TYPES`.  Experiment E3 replays
histories through :func:`observed_transitions` and checks containment
in the diagram via :func:`validate_transitions`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.errors import ProtocolError
from repro.graphs.graph import Graph
from repro.types import NodeId, Pointer


class NodeType(enum.Enum):
    """The six node types of Fig. 2."""

    M = "M"    # matched
    A0 = "A0"  # aloof, no suitors (the paper's A^∅)
    A1 = "A1"  # aloof, has suitors
    PA = "PA"  # pointing at an aloof node
    PM = "PM"  # pointing at a matched node
    PP = "PP"  # pointing at a pointing node

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_aloof(self) -> bool:
        return self in (NodeType.A0, NodeType.A1)

    @property
    def is_pointing(self) -> bool:
        return self in (NodeType.PA, NodeType.PM, NodeType.PP)


#: Fig. 3's arrows as (source, destination) pairs, including the
#: self-loops.  A transition observed outside this set falsifies one of
#: Lemmas 1–6.
ALLOWED_TRANSITIONS: frozenset[Tuple[NodeType, NodeType]] = frozenset(
    {
        (NodeType.M, NodeType.M),
        (NodeType.PM, NodeType.A0),
        (NodeType.PP, NodeType.A0),
        (NodeType.PA, NodeType.M),
        (NodeType.PA, NodeType.PM),
        (NodeType.A1, NodeType.M),
        (NodeType.A0, NodeType.A0),
        (NodeType.A0, NodeType.M),
        (NodeType.A0, NodeType.PM),
        (NodeType.A0, NodeType.PP),
    }
)

#: Types with no incoming arrow: possibly non-empty only at t = 0
#: (Lemma 7).
TRANSIENT_TYPES: frozenset[NodeType] = frozenset({NodeType.A1, NodeType.PA})


def classify(
    graph: Graph, config: Mapping[NodeId, Pointer]
) -> Dict[NodeId, NodeType]:
    """Classify every node of ``config`` per Fig. 2."""
    # pass 1: coarse classes
    matched: set[NodeId] = set()
    aloof: set[NodeId] = set()
    for node in graph.nodes:
        p = config[node]
        if p is None:
            aloof.add(node)
        elif config[p] == node:
            matched.add(node)

    out: Dict[NodeId, NodeType] = {}
    for node in graph.nodes:
        p = config[node]
        if node in matched:
            out[node] = NodeType.M
        elif node in aloof:
            has_suitor = any(config[j] == node for j in graph.neighbors(node))
            out[node] = NodeType.A1 if has_suitor else NodeType.A0
        else:
            # pointing, unreciprocated
            assert p is not None
            if p in matched:
                out[node] = NodeType.PM
            elif p in aloof:
                out[node] = NodeType.PA
            else:
                out[node] = NodeType.PP
    return out


def classify_node(
    graph: Graph, config: Mapping[NodeId, Pointer], node: NodeId
) -> NodeType:
    """The Fig. 2 type of a single node (convenience wrapper)."""
    return classify(graph, config)[node]


def type_counts(
    graph: Graph, config: Mapping[NodeId, Pointer]
) -> Dict[NodeType, int]:
    """Histogram of node types — the paper's |M_t|, |A0_t|, ... ."""
    counts = {t: 0 for t in NodeType}
    for t in classify(graph, config).values():
        counts[t] += 1
    return counts


def matched_count(graph: Graph, config: Mapping[NodeId, Pointer]) -> int:
    """|M_t| — the number of matched *nodes* (twice the matched edges)."""
    return type_counts(graph, config)[NodeType.M]


def observed_transitions(
    graph: Graph, history: Sequence[Mapping[NodeId, Pointer]]
) -> Dict[Tuple[NodeType, NodeType], int]:
    """Count every per-node type transition along a run history.

    ``history[t]`` is the configuration after round ``t`` (with
    ``history[0]`` the initial configuration, as produced by
    ``record_history=True``).
    """
    if len(history) < 1:
        raise ProtocolError("history must contain at least one configuration")
    counts: Dict[Tuple[NodeType, NodeType], int] = {}
    previous = classify(graph, history[0])
    for config in history[1:]:
        current = classify(graph, config)
        for node in graph.nodes:
            key = (previous[node], current[node])
            counts[key] = counts.get(key, 0) + 1
        previous = current
    return counts


def validate_transitions(
    graph: Graph, history: Sequence[Mapping[NodeId, Pointer]]
) -> None:
    """Assert a history respects Fig. 3 and Lemma 7.

    Raises ``AssertionError`` naming the offending arrow or the
    non-empty transient set.  Used by experiment E3 and the SMM tests.
    """
    observed = observed_transitions(graph, history)
    illegal = {arrow for arrow in observed if arrow not in ALLOWED_TRANSITIONS}
    if illegal:
        pretty = ", ".join(f"{a}->{b}" for a, b in sorted(
            illegal, key=lambda ab: (ab[0].value, ab[1].value)
        ))
        raise AssertionError(f"transitions outside Fig. 3: {pretty}")
    # Lemma 7: A1 and PA empty for every t >= 1
    for t, config in enumerate(history[1:], start=1):
        types = classify(graph, config)
        bad = {n: ty for n, ty in types.items() if ty in TRANSIENT_TYPES}
        if bad:
            raise AssertionError(
                f"Lemma 7 violated at round {t}: transient-typed nodes {bad}"
            )


def transition_matrix(
    counts: Mapping[Tuple[NodeType, NodeType], int]
) -> List[List[int]]:
    """Render transition counts as a dense matrix in NodeType order
    (rows = source, columns = destination) for table output."""
    order = list(NodeType)
    index = {t: k for k, t in enumerate(order)}
    matrix = [[0] * len(order) for _ in order]
    for (src, dst), c in counts.items():
        matrix[index[src]][index[dst]] += c
    return matrix
