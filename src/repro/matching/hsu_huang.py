"""The Hsu–Huang (1992) central-daemon maximal matching baseline.

Su-Chu Hsu and Shing-Tsaan Huang, "A self-stabilizing algorithm for
maximal matching", *Information Processing Letters* 43:77–81, 1992 —
reference [15] of the paper, and the algorithm the paper positions SMM
against:

    "While the central daemon algorithm of [15] may be converted into a
    synchronous model protocol using the techniques of [1, 16], the
    resulting protocol is not as fast."

The rules are the same pointer dance as SMM's — accept / propose /
back off — but designed for the **central daemon** (one privileged node
moves at a time) and with an *arbitrary* choice of null neighbour in
the propose rule (no min-id requirement; under a central daemon the
serial schedule already prevents the livelock).  Hsu & Huang bound the
stabilization at ``O(n^3)`` moves (later analyses tightened this; the
move-count experiments report measured values).

Run it with :func:`repro.core.executor.run_central` for the native
model, or with :func:`repro.core.transform.run_synchronized_central`
for the synchronous conversion that experiment E5 compares against SMM.
Running it raw under the synchronous daemon reproduces the livelock —
that is exactly the arbitrary-choice variant of experiment E4.
"""

from __future__ import annotations

from repro.matching.smm import Chooser, MatchingProtocolBase, min_id_chooser


class HsuHuangMatching(MatchingProtocolBase):
    """Hsu–Huang's three rules, parameterized by the propose choice.

    The default chooser is min-id so that deterministic runs are
    reproducible, but any chooser is correct under the central daemon —
    pass :func:`repro.matching.smm.max_id_chooser` or a custom one to
    probe schedule sensitivity.
    """

    name = "HsuHuang92"

    def __init__(
        self,
        propose_chooser: Chooser = min_id_chooser,
        accept_chooser: Chooser = min_id_chooser,
    ) -> None:
        super().__init__(
            accept_chooser=accept_chooser, propose_chooser=propose_chooser
        )


def central_move_bound(n: int) -> int:
    """Hsu–Huang's published move bound under the central daemon,
    ``O(n^3)`` — returned as the concrete ``n^3`` envelope used by the
    tests (measured runs sit far below it)."""
    return n ** 3
