"""Executable statements of the paper's Lemmas 1–10.

Each function takes a graph and a recorded SMM history (plus the move
log where needed) and returns the list of violations — empty iff the
lemma held on that run.  The experiment harness (E3, E6) and the test
suite both call these, so the paper's proof obligations exist in
exactly one place.

Indexing convention (matches :class:`repro.core.executor.Execution`):
``history[t]`` is the configuration at time ``t`` (``history[0]`` the
initial one), and ``move_log[t]`` lists the nodes that moved *at time
t*, i.e. during the transition ``history[t] -> history[t+1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.graphs.graph import Graph
from repro.matching.classification import (
    ALLOWED_TRANSITIONS,
    TRANSIENT_TYPES,
    NodeType,
    classify,
)
from repro.types import NodeId, Pointer


@dataclass(frozen=True)
class Violation:
    """One counterexample to a lemma, with enough context to debug."""

    lemma: str
    time: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lemma} @ t={self.time}] {self.detail}"


def _matched_sets(graph: Graph, history) -> List[frozenset[NodeId]]:
    out = []
    for config in history:
        types = classify(graph, config)
        out.append(frozenset(n for n, t in types.items() if t is NodeType.M))
    return out


def check_lemma_1(graph: Graph, history: Sequence[Mapping[NodeId, Pointer]]) -> List[Violation]:
    """Lemma 1: ``M_t ⊆ M_{t+1}`` — matched nodes stay matched."""
    sets = _matched_sets(graph, history)
    out = []
    for t, (a, b) in enumerate(zip(sets, sets[1:])):
        lost = a - b
        if lost:
            out.append(
                Violation("Lemma 1", t, f"nodes unmatched: {sorted(lost)}")
            )
    return out


def _type_sequences(graph: Graph, history) -> List[Dict[NodeId, NodeType]]:
    return [classify(graph, config) for config in history]


def _containment(
    name: str,
    source: NodeType,
    targets: frozenset,
    graph: Graph,
    history,
) -> List[Violation]:
    """Generic 'every source-typed node lands in targets next round'."""
    types = _type_sequences(graph, history)
    out = []
    for t, (now, nxt) in enumerate(zip(types, types[1:])):
        for node, ty in now.items():
            if ty is source and nxt[node] not in targets:
                out.append(
                    Violation(
                        name,
                        t,
                        f"node {node}: {source.value} -> {nxt[node].value}",
                    )
                )
    return out


def check_lemma_2(graph, history) -> List[Violation]:
    """Lemma 2: ``PM_t ⊆ A_{t+1}`` (in fact A0: the suitors of a PM
    node are PP nodes and back off in the same round)."""
    return _containment(
        "Lemma 2", NodeType.PM, frozenset({NodeType.A0}), graph, history
    )


def check_lemma_3(graph, history) -> List[Violation]:
    """Lemma 3: ``PP_t ⊆ A_{t+1}`` (again, specifically A0)."""
    return _containment(
        "Lemma 3", NodeType.PP, frozenset({NodeType.A0}), graph, history
    )


def check_lemma_4(graph, history) -> List[Violation]:
    """Lemma 4: ``PA_t ⊆ M_{t+1} ∪ PM_{t+1}``."""
    return _containment(
        "Lemma 4", NodeType.PA, frozenset({NodeType.M, NodeType.PM}), graph, history
    )


def check_lemma_5(graph, history) -> List[Violation]:
    """Lemma 5: ``A1_t ⊆ M_{t+1}`` — a node with suitors gets matched."""
    return _containment(
        "Lemma 5", NodeType.A1, frozenset({NodeType.M}), graph, history
    )


def check_lemma_6(graph, history) -> List[Violation]:
    """Lemma 6: ``A0_t ⊆ A0_{t+1} ∪ PM_{t+1} ∪ M_{t+1} ∪ PP_{t+1}``."""
    return _containment(
        "Lemma 6",
        NodeType.A0,
        frozenset({NodeType.A0, NodeType.PM, NodeType.M, NodeType.PP}),
        graph,
        history,
    )


def check_lemma_7(graph, history) -> List[Violation]:
    """Lemma 7: for all ``t >= 1``, ``A1_t = PA_t = ∅``."""
    out = []
    for t, config in enumerate(history):
        if t == 0:
            continue
        types = classify(graph, config)
        bad = {n: ty for n, ty in types.items() if ty in TRANSIENT_TYPES}
        if bad:
            pretty = ", ".join(f"{n}:{ty.value}" for n, ty in sorted(bad.items()))
            out.append(Violation("Lemma 7", t, f"transient nodes {pretty}"))
    return out


def check_lemma_9(graph, history, move_log) -> List[Violation]:
    """Lemma 9: for ``t >= 1``, if some A0 node moves at time t then
    ``|M_{t+1}| >= |M_t| + 2``."""
    types = _type_sequences(graph, history)
    sets = _matched_sets(graph, history)
    out = []
    for t, movers in enumerate(move_log):
        if t == 0 or t + 1 >= len(sets):
            continue
        if any(types[t][node] is NodeType.A0 for node in movers):
            growth = len(sets[t + 1]) - len(sets[t])
            if growth < 2:
                out.append(
                    Violation(
                        "Lemma 9", t, f"A0 moved but |M| grew by {growth}"
                    )
                )
    return out


def check_lemma_10(graph, history, move_log) -> List[Violation]:
    """Lemma 10: for ``t >= 1``, moves at t and t+1 imply
    ``|M_{t+2}| >= |M_t| + 2``."""
    sets = _matched_sets(graph, history)
    out = []
    for t in range(1, len(move_log) - 1):
        if move_log[t] and move_log[t + 1]:
            growth = len(sets[t + 2]) - len(sets[t])
            if growth < 2:
                out.append(
                    Violation(
                        "Lemma 10",
                        t,
                        f"active rounds t,t+1 but |M| grew by {growth}",
                    )
                )
    return out


def check_figure_3(graph, history) -> List[Violation]:
    """Figs. 2–3: every observed per-node transition is one of the ten
    arrows of the transition diagram."""
    types = _type_sequences(graph, history)
    out = []
    for t, (now, nxt) in enumerate(zip(types, types[1:])):
        for node in graph.nodes:
            arrow = (now[node], nxt[node])
            if arrow not in ALLOWED_TRANSITIONS:
                out.append(
                    Violation(
                        "Figure 3",
                        t,
                        f"node {node}: {arrow[0].value} -> {arrow[1].value}",
                    )
                )
    return out


def check_all(graph, execution) -> List[Violation]:
    """Run every lemma check over a recorded execution.

    ``execution`` must have been produced with ``record_history=True``.
    Returns the concatenated violation list (empty iff the paper's
    Section 3 analysis held on this run).
    """
    history = execution.history
    if history is None:
        raise ValueError("execution must be recorded with record_history=True")
    move_log = execution.move_log
    out: List[Violation] = []
    out += check_lemma_1(graph, history)
    out += check_lemma_2(graph, history)
    out += check_lemma_3(graph, history)
    out += check_lemma_4(graph, history)
    out += check_lemma_5(graph, history)
    out += check_lemma_6(graph, history)
    out += check_lemma_7(graph, history)
    out += check_lemma_9(graph, history, move_log)
    out += check_lemma_10(graph, history, move_log)
    out += check_figure_3(graph, history)
    return out
