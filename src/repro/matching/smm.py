"""Algorithm SMM — Synchronous Maximal Matching (paper Fig. 1).

Each node ``i`` maintains a single pointer variable that is either null
(``i -> *``, encoded ``None``) or designates one neighbour (``i -> j``).
Node ``i`` is *matched* when ``i -> j`` and ``j -> i`` (``i <-> j``).
The three rules, verbatim from the paper:

``R1``  if ``(i -> *) ∧ (∃ j ∈ N(i): j -> i)``
        then ``i -> j``                                 *(accept proposal)*

``R2``  if ``(i -> *) ∧ (∀ k ∈ N(i): k ̸-> i) ∧ (∃ j ∈ N(i): j -> *)``
        then ``i -> min{ j ∈ N(i) : j -> * }``          *(make proposal)*

``R3``  if ``(i -> j ∧ j -> k ≠ * ∧ k ≠ i)``
        then ``i -> *``                                 *(back off)*

Under the synchronous daemon the protocol stabilizes, from any initial
configuration, to a configuration whose reciprocated pointers form a
maximal matching — in at most ``n + 1`` rounds (Theorem 1).

Rule R1's choice among proposers is unconstrained in the paper ("may
select"); rule R2's choice **must** be the minimum-id null neighbour —
Section 3 shows a 4-cycle oscillating forever under an arbitrary
choice (see :mod:`repro.matching.variants` and experiment E4).  Both
choices are injectable here so baselines and counterexamples reuse this
class; :class:`SynchronousMaximalMatching` pins R2 to min-id.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError, ProtocolError
from repro.graphs.graph import Graph
from repro.graphs.properties import is_maximal_matching, pointer_matching
from repro.types import NodeId, Pointer

#: A chooser picks one node among a non-empty ascending candidate tuple,
#: given the chooser's local view (for id- or randomness-based picks).
Chooser = Callable[[View, Tuple[NodeId, ...]], NodeId]


def min_id_chooser(view: View, candidates: Tuple[NodeId, ...]) -> NodeId:
    """The minimum-id candidate — the choice Theorem 1 requires for R2."""
    return candidates[0]


def max_id_chooser(view: View, candidates: Tuple[NodeId, ...]) -> NodeId:
    """The maximum-id candidate (an 'arbitrary but deterministic' pick)."""
    return candidates[-1]


def random_chooser(view: View, candidates: Tuple[NodeId, ...]) -> NodeId:
    """A uniformly random candidate driven by the node's per-round
    variate (requires a protocol with ``uses_randomness = True``)."""
    index = min(int(view.rand * len(candidates)), len(candidates) - 1)
    return candidates[index]


class MatchingProtocolBase(Protocol[Pointer]):
    """Pointer-based matching rules with injectable choice functions.

    The local state is ``None`` (null) or a neighbour id.  Subclasses /
    instances fix the two choosers:

    * ``accept_chooser`` — R1's pick among current proposers;
    * ``propose_chooser`` — R2's pick among null neighbours.
    """

    name = "pointer-matching"

    def __init__(
        self,
        accept_chooser: Chooser = min_id_chooser,
        propose_chooser: Chooser = min_id_chooser,
    ) -> None:
        self._accept = accept_chooser
        self._propose = propose_chooser
        self._rules = (
            Rule(
                name="R1",
                guard=self._r1_guard,
                action=self._r1_action,
                description="accept proposal",
            ),
            Rule(
                name="R2",
                guard=self._r2_guard,
                action=self._r2_action,
                description="make proposal",
            ),
            Rule(
                name="R3",
                guard=self._r3_guard,
                action=self._r3_action,
                description="back off",
            ),
        )

    # ------------------------------------------------------------------
    # rules (guards read only the local view, as the model requires)
    # ------------------------------------------------------------------
    @staticmethod
    def _proposers(view: View) -> Tuple[NodeId, ...]:
        """Neighbours currently pointing at this node."""
        me = view.node
        return view.neighbors_where(lambda j, s: s == me)

    @staticmethod
    def _null_neighbors(view: View) -> Tuple[NodeId, ...]:
        return view.neighbors_where(lambda j, s: s is None)

    def _r1_guard(self, view: View) -> bool:
        return view.state is None and bool(self._proposers(view))

    def _r1_action(self, view: View) -> Pointer:
        return self._choose(self._accept, view, self._proposers(view))

    def _r2_guard(self, view: View) -> bool:
        return (
            view.state is None
            and not self._proposers(view)
            and bool(self._null_neighbors(view))
        )

    def _r2_action(self, view: View) -> Pointer:
        return self._choose(self._propose, view, self._null_neighbors(view))

    @staticmethod
    def _r3_guard(view: View) -> bool:
        j = view.state
        if j is None:
            return False
        target = view.state_of(j)
        return target is not None and target != view.node

    @staticmethod
    def _r3_action(view: View) -> Pointer:
        return None

    def _choose(
        self, chooser: Chooser, view: View, candidates: Tuple[NodeId, ...]
    ) -> NodeId:
        pick = chooser(view, candidates)
        if pick not in candidates:
            raise ProtocolError(
                f"chooser returned {pick!r}, not one of {candidates!r}"
            )
        return pick

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def rules(self) -> Sequence[Rule[Pointer]]:
        return self._rules

    def initial_state(self, node: NodeId, graph: Graph) -> Pointer:
        """Clean start: every pointer null (the paper's ``i -> *``)."""
        return None

    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> Pointer:
        """Uniform over the local state space ``{null} ∪ N(i)``."""
        options: list[Pointer] = [None, *graph.neighbors(node)]
        return options[int(rng.integers(len(options)))]

    def validate_state(self, node: NodeId, graph: Graph, state: Pointer) -> None:
        if state is None:
            return
        if state == node or not graph.has_edge(node, state):
            raise InvalidConfigurationError(
                f"node {node}: pointer {state!r} is not a neighbour"
            )

    def sanitize_state(self, node: NodeId, graph: Graph, state: Pointer) -> Pointer:
        """Reset pointers dangling over failed links (Section 2: the
        neighbour-discovery protocol evicts vanished neighbours)."""
        if state is not None and (state == node or not graph.has_edge(node, state)):
            return None
        return state

    def is_legitimate(
        self, graph: Graph, config: Mapping[NodeId, Pointer]
    ) -> bool:
        """Lemma 8's characterization of stable configurations: the
        reciprocated pointers form a *maximal* matching and every
        unmatched node has a null pointer."""
        matching = pointer_matching(dict(config))
        if not is_maximal_matching(graph, matching):
            return False
        matched = {x for e in matching for x in e}
        return all(
            config[node] is None for node in graph.nodes if node not in matched
        )


class SynchronousMaximalMatching(MatchingProtocolBase):
    """Algorithm SMM exactly as published: R2 picks the minimum-id null
    neighbour (required for Theorem 1's n+1-round stabilization); R1
    accepts the minimum-id proposer (any deterministic choice is
    admissible — "may select").
    """

    name = "SMM"

    def __init__(self, accept_chooser: Chooser = min_id_chooser) -> None:
        super().__init__(
            accept_chooser=accept_chooser, propose_chooser=min_id_chooser
        )


def theoretical_round_bound(graph: Graph) -> int:
    """Theorem 1's bound on SMM stabilization: ``n + 1`` rounds."""
    return graph.n + 1
