"""Batch-vectorized SMM: step many independent runs simultaneously.

Experiment sweeps run the same protocol on the same graph from many
initial configurations (E1: dozens of random starts per cell; the
exhaustive sweeps: hundreds).  Stepping them one at a time leaves
vectorization on the table — the round kernel is embarrassingly
parallel across runs.  :class:`BatchSMM` holds a ``(k, n)`` pointer
matrix (one row per run) and advances all non-stabilized rows each
round with the same CSR-segment operations as the single-run kernel,
vectorized over the batch axis.

Equivalence with the single-run kernel (hence, transitively, with the
reference engine) is pinned by ``tests/test_batch_kernels.py``.

Implementation note (per the HPC guides' broadcasting advice): the
segmented minima run as ``np.minimum.reduceat`` along the entry axis —
CSR rows are contiguous segments, so one reduceat per rule replaces the
buffered flat ``ufunc.at`` scatter, and the pointer matrix is packed to
:func:`repro.kernels.state_dtype` (int32 for every practical graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import StabilizationTimeout
from repro.graphs.graph import Graph
from repro.kernels import SMM_NULL, state_dtype
from repro.matching.smm_vectorized import VectorizedSMM


@dataclass
class BatchResult:
    """Summary of a batch run."""

    stabilized: np.ndarray   #: (k,) bool — per-run stabilization flag
    rounds: np.ndarray       #: (k,) int — rounds used by each run
    final_ptr: np.ndarray    #: (k, n) final pointer matrix
    #: per-rule firing counts, (k,) int array per rule name — always
    #: populated by :meth:`BatchSMM.run_batch`
    moves_by_rule: Dict[str, np.ndarray]

    @property
    def all_stabilized(self) -> bool:
        return bool(self.stabilized.all())

    def max_rounds(self) -> int:
        return int(self.rounds.max(initial=0))


class BatchSMM:
    """SMM rounds vectorized across a batch of runs on one graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.single = VectorizedSMM(graph)  # reused for encode/decode
        indptr, indices, ids = graph.adjacency_arrays()
        self.n = graph.n
        self._dtype = state_dtype(self.n)
        self._indices = self.single._indices  # already packed
        self._row = self.single._row
        self._arange_n = self.single._arange
        # reduceat segment boundaries (CSR rows are contiguous along the
        # entry axis); empty rows are masked explicitly — reduceat on an
        # empty segment would return the next segment's first element
        self._seg_empty = indptr[:-1] == indptr[1:]
        self._seg_starts = (
            np.minimum(indptr[:-1], indices.size - 1) if indices.size else None
        )

    # ------------------------------------------------------------------
    def encode_batch(self, configs: Sequence) -> np.ndarray:
        """Stack ``{node: pointer}`` mappings into a (k, n) matrix."""
        return np.stack([self.single.encode(cfg) for cfg in configs])

    def decode_batch(self, ptrs: np.ndarray):
        return [self.single.decode(ptrs[i]) for i in range(ptrs.shape[0])]

    # ------------------------------------------------------------------
    def step_batch(self, ptrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One synchronous round for every row.

        Returns ``(new_ptrs, moved)`` where ``moved`` is a (k,) bool
        array flagging rows in which at least one rule fired.
        """
        new_ptrs, r1, r2, r3 = self._step_rules(ptrs)
        return new_ptrs, (r1 | r2 | r3).any(axis=1)

    def _step_rules(
        self, ptrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One round, returning the per-rule firing masks as well —
        ``(new_ptrs, r1, r2, r3)``, each mask (k, n) bool."""
        k, n = ptrs.shape
        assert n == self.n
        indices = self._indices
        row = self._row
        sentinel = n

        is_null = ptrs < 0                          # (k, n)
        if self._seg_starts is None:  # edgeless graph: nothing proposes
            min_proposer = np.full((k, n), sentinel, dtype=ptrs.dtype)
            min_null = min_proposer
        else:
            neighbor_ptr = ptrs[:, indices]         # (k, E)
            proposer_entry = neighbor_ptr == row    # (k, E) broadcast row
            vals = np.where(proposer_entry, indices, sentinel)
            min_proposer = np.minimum.reduceat(vals, self._seg_starts, axis=1)
            min_proposer[:, self._seg_empty] = sentinel

            null_entry = neighbor_ptr < 0
            vals2 = np.where(null_entry, indices, sentinel)
            min_null = np.minimum.reduceat(vals2, self._seg_starts, axis=1)
            min_null[:, self._seg_empty] = sentinel
        has_proposer = min_proposer < sentinel
        has_null = min_null < sentinel

        r1 = is_null & has_proposer
        r2 = is_null & ~has_proposer & has_null

        safe_target = np.where(is_null, 0, ptrs)
        target_ptr = np.take_along_axis(ptrs, safe_target, axis=1)
        r3 = (~is_null) & (target_ptr >= 0) & (target_ptr != self._arange_n)

        new_ptrs = ptrs.copy()
        new_ptrs[r1] = min_proposer[r1]
        new_ptrs[r2] = min_null[r2]
        new_ptrs[r3] = SMM_NULL
        return new_ptrs, r1, r2, r3

    # ------------------------------------------------------------------
    def run_batch(
        self,
        configs,
        *,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
    ) -> BatchResult:
        """Run every row to stabilization (or the shared round budget).

        ``configs`` is a sequence of mappings or a prepared (k, n) int
        matrix.  Already-stabilized rows are frozen (their pointers no
        longer change), so mixed batches cost only as many rounds as
        the slowest member.
        """
        if isinstance(configs, np.ndarray):
            ptrs = configs.astype(self._dtype, copy=True)
        else:
            ptrs = self.encode_batch(configs)
        k = ptrs.shape[0]
        budget = max_rounds if max_rounds is not None else self.n + 8

        rounds = np.zeros(k, dtype=np.int64)
        moves_by_rule = {
            name: np.zeros(k, dtype=np.int64) for name in ("R1", "R2", "R3")
        }
        # Row compaction: each round steps only the rows still moving.
        # A quiescent row is at its fixpoint (no rule can fire again
        # under the synchronous daemon), so dropping it changes nothing
        # observable — counts, rounds and finals stay byte-identical —
        # while the per-round cost shrinks from k·n to |live|·n.  At
        # most `budget` rounds are applied — same cap as the single-run
        # kernel and the reference engine, so round counts agree even
        # on timeouts.
        live = np.arange(k)
        for _ in range(budget):
            new_sub, r1, r2, r3 = self._step_rules(ptrs[live])
            moved_sub = (r1 | r2 | r3).any(axis=1)
            if not moved_sub.any():
                live = live[:0]
                break
            moved_idx = live[moved_sub]
            for name, mask in (("R1", r1), ("R2", r2), ("R3", r3)):
                moves_by_rule[name][moved_idx] += mask[moved_sub].sum(axis=1)
            ptrs[moved_idx] = new_sub[moved_sub]
            rounds[moved_idx] += 1
            live = moved_idx
        else:  # budget exhausted: which live rows are still moving?
            if live.size:
                _, moved_sub = self.step_batch(ptrs[live])
                live = live[moved_sub]
        active = np.zeros(k, dtype=bool)
        active[live] = True

        result = BatchResult(
            stabilized=~active,
            rounds=rounds,
            final_ptr=ptrs,
            moves_by_rule=moves_by_rule,
        )
        if raise_on_timeout and not result.all_stabilized:
            raise StabilizationTimeout(
                f"batch SMM: {int(active.sum())} runs exceeded {budget} rounds",
                result,
            )
        return result


# ----------------------------------------------------------------------
# engine backend adapter
# ----------------------------------------------------------------------
def _telemetry_run_batch(protocol, kernel: BatchSMM, ptrs: np.ndarray,
                         budget: int):
    """Batch-of-one run with per-round counter and census recording.

    Same loop structure as the reference engine and the single-run
    kernel's telemetry path (step → zero-fire stabilized break → budget
    break → apply and count) but stepping through
    :meth:`BatchSMM._step_rules`, so the batch kernel itself is what
    telemetry observes.  Returns ``(stabilized, rounds, moves_by_rule,
    ptrs, recorder)`` with the recorder in its finalize phase.
    """
    from repro.observability import TelemetryRecorder

    recorder = TelemetryRecorder(
        protocol.name, "synchronous", "batch", protocol.rule_names()
    )
    recorder.record_census(kernel.single.census(ptrs[0]))
    recorder.begin_rounds()
    moves_by_rule = {"R1": 0, "R2": 0, "R3": 0}
    rounds = 0
    stabilized = False
    while True:
        new_ptrs, r1, r2, r3 = kernel._step_rules(ptrs)
        c1, c2, c3 = int(r1.sum()), int(r2.sum()), int(r3.sum())
        if c1 + c2 + c3 == 0:
            stabilized = True
            break
        if rounds >= budget:
            break
        ptrs = new_ptrs
        rounds += 1
        moves_by_rule["R1"] += c1
        moves_by_rule["R2"] += c2
        moves_by_rule["R3"] += c3
        recorder.on_round(
            {"R1": c1, "R2": c2, "R3": c3},
            kernel.n,
            kernel.single.census(ptrs[0]),
        )
    recorder.begin_finalize()
    return stabilized, rounds, moves_by_rule, ptrs, recorder


def run_engine(
    protocol,
    graph: Graph,
    config=None,
    *,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    telemetry: bool = False,
):
    """Registered ``("smm", "synchronous", "batch")`` backend.

    Runs a batch of one — useful mainly so the batch kernel sits in the
    same cross-backend equivalence harness as everything else (E10 and
    ``tests/test_engine_equivalence.py``); sweeps that want the batch
    throughput win call :meth:`BatchSMM.run_batch` directly.  With
    ``telemetry=True`` the run collects per-round rule counters and the
    Fig. 2 census, byte-identical with the other backends.
    """
    from repro.core.executor import _default_round_budget, _resolve_config
    from repro.engine.result import RunResult

    initial = _resolve_config(protocol, graph, config)
    kernel = BatchSMM(graph)
    budget = max_rounds if max_rounds is not None else _default_round_budget(graph)
    recorder = None
    if telemetry:
        stabilized, rounds, moves_by_rule, ptrs, recorder = _telemetry_run_batch(
            protocol, kernel, kernel.encode_batch([initial]), budget
        )
        final = kernel.single.decode(ptrs[0])
    else:
        res = kernel.run_batch([initial], max_rounds=budget)
        stabilized = bool(res.stabilized[0])
        rounds = int(res.rounds[0])
        final = kernel.single.decode(res.final_ptr[0])
        moves_by_rule = {
            name: int(counts[0]) for name, counts in res.moves_by_rule.items()
        }
    result = RunResult(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=stabilized,
        rounds=rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        initial=initial,
        final=final,
        legitimate=protocol.is_legitimate(graph, final),
        backend="batch",
    )
    if recorder is not None:
        result.telemetry = recorder.finish()
    if raise_on_timeout and not result.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds", result
        )
    return result
