"""Vectorized SMM synchronous rounds (NumPy kernel).

The reference engine (:mod:`repro.core.executor`) builds per-node view
objects each round — ideal for clarity, monitors and rule accounting,
but Python-loop bound.  Following the optimization workflow of the HPC
guides (make it work, make it right, then vectorize the measured hot
loop), this module re-implements exactly one thing — the SMM
synchronous round with min-id choosers — as array operations over a
CSR adjacency, for the large-``n`` scaling benchmarks (experiment E10).

Pointer encoding: ``ptr[k] ∈ {-1} ∪ {0..n-1}`` over *dense* node
indices (``-1`` is null).  :func:`repro.graphs.graph.Graph.adjacency_arrays`
guarantees dense index order equals id order, so "minimum dense index"
below is "minimum id", matching rules R1/R2 of the reference protocol.

Equivalence with the reference engine is pinned by
``tests/test_smm_vectorized.py`` on random graphs and random initial
configurations, round by round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import InvalidConfigurationError, StabilizationTimeout
from repro.graphs.graph import Graph
from repro.types import NodeId, Pointer


@dataclass
class VectorResult:
    """Summary of a vectorized run (mirrors the fields experiments read
    from :class:`repro.core.executor.Execution`)."""

    stabilized: bool
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    final_ptr: np.ndarray  # dense pointer array, -1 = null


class VectorizedSMM:
    """SMM rounds as NumPy array operations over one fixed graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        indptr, indices, ids = graph.adjacency_arrays()
        self._indptr = indptr
        self._indices = indices
        self._ids = ids
        self._id_to_dense = {int(node): k for k, node in enumerate(ids)}
        self.n = graph.n
        # row owner of each CSR entry, precomputed once (no per-round
        # allocation for it)
        self._row = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(indptr)
        )

    # ------------------------------------------------------------------
    # encoding helpers
    # ------------------------------------------------------------------
    def encode(self, config) -> np.ndarray:
        """Dense pointer array from a ``{node: Pointer}`` mapping."""
        ptr = np.full(self.n, -1, dtype=np.int64)
        for node, p in dict(config).items():
            k = self._id_to_dense[int(node)]
            if p is not None:
                try:
                    ptr[k] = self._id_to_dense[int(p)]
                except KeyError:
                    raise InvalidConfigurationError(
                        f"pointer target {p!r} is not a node"
                    ) from None
        return ptr

    def decode(self, ptr: np.ndarray) -> Configuration:
        """``{node: Pointer}`` configuration from a dense pointer array."""
        states: Dict[NodeId, Pointer] = {}
        for k in range(self.n):
            target = int(ptr[k])
            states[int(self._ids[k])] = None if target < 0 else int(self._ids[target])
        return Configuration(states)

    # ------------------------------------------------------------------
    # the round kernel
    # ------------------------------------------------------------------
    def step(self, ptr: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One synchronous round.

        Returns ``(new_ptr, r1_mask, r2_mask, r3_mask)`` where the masks
        flag the nodes that fired each rule.
        """
        n = self.n
        indices = self._indices
        row = self._row
        sentinel = n  # acts as +inf for segmented minima

        neighbor_ptr = ptr[indices]  # pointer of each CSR neighbour entry
        is_null = ptr < 0

        # min proposer per node: neighbours j with ptr[j] == me
        proposer_entry = neighbor_ptr == row
        vals = np.where(proposer_entry, indices, sentinel)
        min_proposer = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(min_proposer, row, vals)
        has_proposer = min_proposer < sentinel

        # min null neighbour per node
        null_entry = neighbor_ptr < 0
        vals2 = np.where(null_entry, indices, sentinel)
        min_null = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(min_null, row, vals2)
        has_null_neighbor = min_null < sentinel

        r1 = is_null & has_proposer
        r2 = is_null & ~has_proposer & has_null_neighbor

        # R3: i -> j, j -> k with k not in {null, i}
        target = np.where(is_null, 0, ptr)  # safe index; masked below
        target_ptr = ptr[target]
        r3 = (~is_null) & (target_ptr >= 0) & (target_ptr != np.arange(n))

        new_ptr = ptr.copy()
        new_ptr[r1] = min_proposer[r1]
        new_ptr[r2] = min_null[r2]
        new_ptr[r3] = -1
        return new_ptr, r1, r2, r3

    # ------------------------------------------------------------------
    def run(
        self,
        config=None,
        *,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
    ) -> VectorResult:
        """Iterate rounds until no rule fires.

        ``config`` may be a ``{node: Pointer}`` mapping or a dense
        pointer array; ``None`` starts all-null.
        """
        if config is None:
            ptr = np.full(self.n, -1, dtype=np.int64)
        elif isinstance(config, np.ndarray):
            ptr = config.astype(np.int64, copy=True)
        else:
            ptr = self.encode(config)

        budget = max_rounds if max_rounds is not None else self.n + 8
        moves_by_rule = {"R1": 0, "R2": 0, "R3": 0}
        rounds = 0
        stabilized = False
        while True:
            new_ptr, r1, r2, r3 = self.step(ptr)
            fired = int(r1.sum() + r2.sum() + r3.sum())
            if fired == 0:
                stabilized = True
                break
            if rounds >= budget:
                break
            ptr = new_ptr
            rounds += 1
            moves_by_rule["R1"] += int(r1.sum())
            moves_by_rule["R2"] += int(r2.sum())
            moves_by_rule["R3"] += int(r3.sum())
        result = VectorResult(
            stabilized=stabilized,
            rounds=rounds,
            moves=sum(moves_by_rule.values()),
            moves_by_rule=moves_by_rule,
            final_ptr=ptr,
        )
        if raise_on_timeout and not stabilized:
            raise StabilizationTimeout(
                f"vectorized SMM exceeded {budget} rounds", result
            )
        return result

    def matching(self, ptr: np.ndarray) -> frozenset[tuple[NodeId, NodeId]]:
        """Extract matched edges (reciprocated pointers) from a dense
        pointer array, in node ids."""
        out = set()
        targets = ptr
        for k in range(self.n):
            t = int(targets[k])
            if t >= 0 and int(targets[t]) == k and k < t:
                out.add((int(self._ids[k]), int(self._ids[t])))
        return frozenset(out)
