"""Vectorized SMM synchronous rounds (NumPy kernel).

The reference engine (:mod:`repro.core.executor`) builds per-node view
objects each round — ideal for clarity, monitors and rule accounting,
but Python-loop bound.  Following the optimization workflow of the HPC
guides (make it work, make it right, then vectorize the measured hot
loop), this module re-implements exactly one thing — the SMM
synchronous round with min-id choosers — as array operations over a
CSR adjacency, for the large-``n`` scaling benchmarks (experiment E10).

Pointer encoding: ``ptr[k] ∈ {SMM_NULL} ∪ {0..n-1}`` over *dense* node
indices (``SMM_NULL = -1`` is the explicit null sentinel).
:func:`repro.graphs.graph.Graph.adjacency_arrays` guarantees dense index
order equals id order, so "minimum dense index" below is "minimum id",
matching rules R1/R2 of the reference protocol.

State layout: pointer arrays are packed to the narrowest dtype that fits
``n`` plus the segmented-minimum sentinel (int32 for every practical
graph — see :func:`repro.kernels.state_dtype`), per-row reductions run
on ``ufunc.reduceat`` over contiguous CSR segments instead of the slow
buffered ``ufunc.at`` scatter, and tiny frontiers (at most
``_SCALAR_MAX`` dirty nodes) step through a pure-Python decision loop —
a couple of list lookups beat ~20 NumPy calls of fixed per-call overhead
when only two or three nodes can move.

Equivalence with the reference engine is pinned by
``tests/test_smm_vectorized.py`` on random graphs and random initial
configurations, round by round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import InvalidConfigurationError, StabilizationTimeout
from repro.graphs.graph import Graph
from repro.kernels import (
    SMM_NULL,
    closed_neighborhood,
    csr_entry_positions,
    segment_any,
    segment_min,
    state_dtype,
)
from repro.types import NodeId, Pointer

#: Frontier size at or below which the pure-Python scalar step runs.
_SCALAR_MAX = 32


@dataclass
class VectorResult:
    """Summary of a vectorized run (mirrors the fields experiments read
    from :class:`repro.core.executor.Execution`)."""

    stabilized: bool
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    final_ptr: np.ndarray  # dense pointer array, SMM_NULL = null


class VectorizedSMM:
    """SMM rounds as NumPy array operations over one fixed graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # adjacency_arrays() is cached on the (immutable) graph, so
        # constructing many kernels over one graph — the E10 sweep
        # inner loop — is O(1) after the first.
        indptr, indices, ids = graph.adjacency_arrays()
        self.n = graph.n
        self._dtype = state_dtype(self.n)
        self._indptr = indptr
        self._indices = (
            indices if indices.dtype == self._dtype else indices.astype(self._dtype)
        )
        self._ids = ids
        self._id_to_dense = graph.dense_index()
        # row owner of each CSR entry, precomputed once (no per-round
        # allocation for it)
        self._row = np.repeat(
            np.arange(self.n, dtype=self._dtype), np.diff(indptr)
        )
        self._arange = np.arange(self.n, dtype=self._dtype)
        # plain-list CSR mirror for the scalar frontier path, built
        # lazily on first use (unboxed int lookups beat ndarray access
        # ~3x for the handful of reads per tiny round)
        self._indptr_list: Optional[List[int]] = None
        self._indices_list: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # encoding helpers
    # ------------------------------------------------------------------
    def encode(self, config) -> np.ndarray:
        """Dense pointer array from a ``{node: Pointer}`` mapping."""
        ptr = np.full(self.n, SMM_NULL, dtype=self._dtype)
        for node, p in dict(config).items():
            k = self._id_to_dense[int(node)]
            if p is not None:
                try:
                    ptr[k] = self._id_to_dense[int(p)]
                except KeyError:
                    raise InvalidConfigurationError(
                        f"pointer target {p!r} is not a node"
                    ) from None
        return ptr

    def decode(self, ptr: np.ndarray) -> Configuration:
        """``{node: Pointer}`` configuration from a dense pointer array."""
        states: Dict[NodeId, Pointer] = {}
        for k in range(self.n):
            target = int(ptr[k])
            states[int(self._ids[k])] = None if target < 0 else int(self._ids[target])
        return Configuration(states)

    def _scalar_csr(self) -> tuple[List[int], List[int]]:
        if self._indices_list is None:
            self._indptr_list = self._indptr.tolist()
            self._indices_list = self._indices.tolist()
        return self._indptr_list, self._indices_list

    # ------------------------------------------------------------------
    # the round kernel
    # ------------------------------------------------------------------
    def step(self, ptr: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One synchronous round.

        Returns ``(new_ptr, r1_mask, r2_mask, r3_mask)`` where the masks
        flag the nodes that fired each rule.
        """
        indices = self._indices
        sentinel = self.n  # acts as +inf for segmented minima

        neighbor_ptr = ptr[indices]  # pointer of each CSR neighbour entry
        is_null = ptr < 0

        # min proposer per node: neighbours j with ptr[j] == me
        proposer_entry = neighbor_ptr == self._row
        vals = np.where(proposer_entry, indices, sentinel)
        min_proposer = segment_min(vals, self._indptr, sentinel)
        has_proposer = min_proposer < sentinel

        # min null neighbour per node
        null_entry = neighbor_ptr < 0
        vals2 = np.where(null_entry, indices, sentinel)
        min_null = segment_min(vals2, self._indptr, sentinel)
        has_null_neighbor = min_null < sentinel

        r1 = is_null & has_proposer
        r2 = is_null & ~has_proposer & has_null_neighbor

        # R3: i -> j, j -> k with k not in {null, i}
        target = np.where(is_null, 0, ptr)  # safe index; masked below
        target_ptr = ptr[target]
        r3 = (~is_null) & (target_ptr >= 0) & (target_ptr != self._arange)

        new_ptr = ptr.copy()
        new_ptr[r1] = min_proposer[r1]
        new_ptr[r2] = min_null[r2]
        new_ptr[r3] = SMM_NULL
        return new_ptr, r1, r2, r3

    # ------------------------------------------------------------------
    # active-set stepping
    # ------------------------------------------------------------------
    def _pointers_valid(self, ptr: np.ndarray) -> bool:
        """Whether every non-null pointer targets a neighbour.

        The active-set fast path propagates dirtiness through closed
        neighbourhoods, which is only sound when decisions depend on
        neighbourhood state alone — i.e. when pointers stay within
        ``N(i)``.  Valid SMM states satisfy this and the rules preserve
        it, so one check of the initial array suffices.
        """
        owners = np.nonzero(ptr >= 0)[0]
        if owners.size == 0:
            return True
        positions, counts = csr_entry_positions(self._indptr, owners)
        hit = self._indices[positions] == np.repeat(ptr[owners], counts)
        seg = np.concatenate(([0], np.cumsum(counts)))
        return bool(segment_any(hit, seg).all())

    def _decide(
        self, ptr: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute the pending decision of ``rows`` against ``ptr``.

        Returns ``(rule, val)`` aligned with ``rows``: ``rule[k] ∈ {0
        (idle), 1 (R1), 2 (R2), 3 (R3)}`` and ``val[k]`` is the state
        ``rows[k]`` will adopt if it fires.  Nodes outside ``rows`` are
        not looked at — their neighbourhood is unchanged, so their
        previous (idle) decision still holds.
        """
        sentinel = self.n
        positions, counts = csr_entry_positions(self._indptr, rows)
        cols = self._indices[positions]
        owner = np.repeat(rows, counts)
        seg = np.concatenate(([0], np.cumsum(counts)))

        ptr_rows = ptr[rows]
        is_null = ptr_rows < 0
        neighbor_ptr = ptr[cols]

        vals = np.where(neighbor_ptr == owner, cols, sentinel)
        min_proposer = segment_min(vals, seg, sentinel)
        has_proposer = min_proposer < sentinel

        vals2 = np.where(neighbor_ptr < 0, cols, sentinel)
        min_null = segment_min(vals2, seg, sentinel)
        has_null_neighbor = min_null < sentinel

        r1 = is_null & has_proposer
        r2 = is_null & ~has_proposer & has_null_neighbor
        target = np.where(is_null, 0, ptr_rows)
        target_ptr = ptr[target]
        r3 = (~is_null) & (target_ptr >= 0) & (target_ptr != rows)

        rule = np.select([r1, r2, r3], [1, 2, 3], default=0).astype(np.int8)
        val = np.where(r1, min_proposer, np.where(r2, min_null, SMM_NULL))
        return rule, val

    def _decide_scalar(
        self, ptr: np.ndarray, rows: List[int]
    ) -> tuple[List[int], List[int], int, int, int]:
        """Pure-Python decisions for a tiny frontier.

        Semantically identical to :meth:`_decide` restricted to the
        enabled nodes: returns ``(movers, vals, c1, c2, c3)``.  CSR rows
        ascend, so the first proposer / null neighbour found scanning a
        row is the minimum-id one.
        """
        indptr, indices = self._scalar_csr()
        movers: List[int] = []
        vals: List[int] = []
        c1 = c2 = c3 = 0
        for i in rows:
            p = int(ptr[i])
            if p < 0:
                proposer = -1
                null_nbr = -1
                for e in range(indptr[i], indptr[i + 1]):
                    j = indices[e]
                    q = int(ptr[j])
                    if q == i:
                        proposer = j
                        break
                    if q < 0 and null_nbr < 0:
                        null_nbr = j
                if proposer >= 0:
                    movers.append(i)
                    vals.append(proposer)
                    c1 += 1
                elif null_nbr >= 0:
                    movers.append(i)
                    vals.append(null_nbr)
                    c2 += 1
            else:
                q = int(ptr[p])
                if q >= 0 and q != i:
                    movers.append(i)
                    vals.append(SMM_NULL)
                    c3 += 1
        return movers, vals, c1, c2, c3

    def _run_active(
        self, ptr: np.ndarray, budget: int, moves_by_rule: Dict[str, int]
    ) -> tuple[bool, int, np.ndarray]:
        stabilized, rounds, ptr, _ = self.segment_active(ptr, budget, moves_by_rule)
        return stabilized, rounds, ptr

    def segment_active(
        self,
        ptr: np.ndarray,
        budget: int,
        moves_by_rule: Dict[str, int],
        dirty=None,
        touched: Optional[np.ndarray] = None,
    ) -> tuple[bool, int, np.ndarray, object]:
        """Frontier stepping with an optional seeded initial dirty set.

        This is the active-set loop of :meth:`run`, exposed for the
        streaming engine: after a topology event over a quiescent state,
        only the closed neighbourhood of the fault sites can be enabled,
        so seeding ``dirty`` with it re-stabilizes at the containment
        radius instead of scanning all ``n`` nodes.  ``dirty=None``
        marks everything dirty (the cold-start case).  ``touched``, when
        given, is a length-``n`` bool array accumulating every mover (the
        containment-radius input).  Returns ``(stabilized, rounds, ptr,
        residual_dirty)`` — the residual seeds the next segment when the
        budget cut re-stabilization short.

        Correctness of a seeded ``dirty``: enabled nodes are always a
        subset of the dirty set — under the synchronous daemon every
        enabled node fires, every firing changes the pointer (R1/R2:
        null -> node, R3: node -> null), and every changed node lands in
        the next dirty set — so a node outside it was last seen idle and
        stays idle.  Per-round work is proportional to the frontier;
        dense rounds (dirty set above n/16) use the cheaper flat full
        scan instead — a dirty superset is always sound, so they just
        mark everything dirty.  Tiny frontiers step through the scalar
        loop (the dirty set may be an ndarray or a sorted list depending
        on the branch that produced it; decisions and dirty contents are
        identical).
        """
        dense = max(1, self.n // 16)
        scalar_max = min(_SCALAR_MAX, dense - 1)
        if dirty is None:
            dirty = np.arange(self.n, dtype=np.int64)
        rounds = 0
        stabilized = False
        while True:
            if len(dirty) >= dense:
                new_ptr, r1, r2, r3 = self.step(ptr)
                fired = r1 | r2 | r3
                if not fired.any():
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moves_by_rule["R1"] += int(r1.sum())
                moves_by_rule["R2"] += int(r2.sum())
                moves_by_rule["R3"] += int(r3.sum())
                movers = np.nonzero(fired)[0]
                ptr[movers] = new_ptr[movers]
                if touched is not None:
                    touched[movers] = True
                n_moved = movers.size
            elif len(dirty) <= scalar_max:
                rows = dirty if isinstance(dirty, list) else dirty.tolist()
                movers, vals, c1, c2, c3 = self._decide_scalar(ptr, rows)
                if not movers:
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moves_by_rule["R1"] += c1
                moves_by_rule["R2"] += c2
                moves_by_rule["R3"] += c3
                for i, v in zip(movers, vals):
                    ptr[i] = v
                    if touched is not None:
                        touched[i] = True
                n_moved = len(movers)
            else:
                if isinstance(dirty, list):
                    dirty = np.asarray(dirty, dtype=np.int64)
                rule, val = self._decide(ptr, dirty)
                enabled = rule != 0
                if not enabled.any():
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moved_rules = rule[enabled]
                moves_by_rule["R1"] += int((moved_rules == 1).sum())
                moves_by_rule["R2"] += int((moved_rules == 2).sum())
                moves_by_rule["R3"] += int((moved_rules == 3).sum())
                movers = dirty[enabled]
                ptr[movers] = val[enabled]
                if touched is not None:
                    touched[movers] = True
                n_moved = movers.size
            rounds += 1
            if n_moved >= dense:
                dirty = np.arange(self.n, dtype=np.int64)
            elif isinstance(movers, list):
                indptr, indices = self._scalar_csr()
                nxt = set(movers)
                for i in movers:
                    nxt.update(indices[indptr[i]:indptr[i + 1]])
                dirty = sorted(nxt)
            else:
                dirty = closed_neighborhood(self._indptr, self._indices, movers)
        return stabilized, rounds, ptr, dirty

    # ------------------------------------------------------------------
    def run(
        self,
        config=None,
        *,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
        active_set: bool = True,
    ) -> VectorResult:
        """Iterate rounds until no rule fires.

        ``config`` may be a ``{node: Pointer}`` mapping or a dense
        pointer array; ``None`` starts all-null.  ``active_set`` picks
        the frontier-stepping path (identical results, recomputes only
        nodes whose closed neighbourhood changed); it falls back to the
        full scan automatically when the initial array contains
        non-neighbour pointers (possible only via raw dense input).
        """
        if config is None:
            ptr = np.full(self.n, SMM_NULL, dtype=self._dtype)
        elif isinstance(config, np.ndarray):
            ptr = config.astype(self._dtype, copy=True)
        else:
            ptr = self.encode(config)

        budget = max_rounds if max_rounds is not None else self.n + 8
        moves_by_rule = {"R1": 0, "R2": 0, "R3": 0}
        rounds = 0
        stabilized = False
        if active_set and self._pointers_valid(ptr):
            stabilized, rounds, ptr = self._run_active(ptr, budget, moves_by_rule)
        else:
            while True:
                new_ptr, r1, r2, r3 = self.step(ptr)
                fired = int(r1.sum() + r2.sum() + r3.sum())
                if fired == 0:
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                ptr = new_ptr
                rounds += 1
                moves_by_rule["R1"] += int(r1.sum())
                moves_by_rule["R2"] += int(r2.sum())
                moves_by_rule["R3"] += int(r3.sum())
        result = VectorResult(
            stabilized=stabilized,
            rounds=rounds,
            moves=sum(moves_by_rule.values()),
            moves_by_rule=moves_by_rule,
            final_ptr=ptr,
        )
        if raise_on_timeout and not stabilized:
            raise StabilizationTimeout(
                f"vectorized SMM exceeded {budget} rounds", result
            )
        return result

    def census(self, ptr: np.ndarray) -> Dict[str, int]:
        """Fig. 2 node-type histogram of a dense pointer array.

        Keys are the string values of
        :class:`repro.matching.classification.NodeType` in enum order;
        counts equal ``type_counts`` on the decoded configuration
        (pinned by the telemetry equivalence tests).
        """
        is_null = ptr < 0
        safe = np.where(is_null, 0, ptr)  # masked below
        matched = (~is_null) & (ptr[safe] == self._arange)
        has_suitor = segment_any(
            ptr[self._indices] == self._row, self._indptr
        )
        pointing = (~is_null) & ~matched
        return {
            "M": int(matched.sum()),
            "A0": int((is_null & ~has_suitor).sum()),
            "A1": int((is_null & has_suitor).sum()),
            "PA": int((pointing & is_null[safe]).sum()),
            "PM": int((pointing & matched[safe]).sum()),
            "PP": int(
                (pointing & ~matched[safe] & ~is_null[safe]).sum()
            ),
        }

    def matching(self, ptr: np.ndarray) -> frozenset[tuple[NodeId, NodeId]]:
        """Extract matched edges (reciprocated pointers) from a dense
        pointer array, in node ids."""
        out = set()
        targets = ptr
        for k in range(self.n):
            t = int(targets[k])
            if t >= 0 and int(targets[t]) == k and k < t:
                out.add((int(self._ids[k]), int(self._ids[t])))
        return frozenset(out)


# ----------------------------------------------------------------------
# engine backend adapter
# ----------------------------------------------------------------------
def telemetry_run(protocol, kernel: VectorizedSMM, ptr: np.ndarray,
                  budget: int, backend: str):
    """Full-scan SMM run with per-round counter and census recording.

    Mirrors the reference loop structure exactly (step → zero-fire
    stabilized break → budget break → apply and count), so rounds,
    total moves and the per-round telemetry counters are byte-identical
    with the reference engine.  The active-set fast path is bypassed:
    telemetry wants the per-round census anyway, which is a full-array
    pass.  Returns ``(VectorResult, recorder)`` with the recorder left
    in its finalize phase (caller calls ``finish()`` after decoding).
    """
    from repro.observability import TelemetryRecorder

    recorder = TelemetryRecorder(
        protocol.name, "synchronous", backend, protocol.rule_names()
    )
    recorder.record_census(kernel.census(ptr))
    recorder.begin_rounds()
    moves_by_rule = {"R1": 0, "R2": 0, "R3": 0}
    rounds = 0
    stabilized = False
    while True:
        new_ptr, r1, r2, r3 = kernel.step(ptr)
        c1, c2, c3 = int(r1.sum()), int(r2.sum()), int(r3.sum())
        if c1 + c2 + c3 == 0:
            stabilized = True
            break
        if rounds >= budget:
            break
        ptr = new_ptr
        rounds += 1
        moves_by_rule["R1"] += c1
        moves_by_rule["R2"] += c2
        moves_by_rule["R3"] += c3
        recorder.on_round(
            {"R1": c1, "R2": c2, "R3": c3}, kernel.n, kernel.census(ptr)
        )
    recorder.begin_finalize()
    res = VectorResult(
        stabilized=stabilized,
        rounds=rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        final_ptr=ptr,
    )
    return res, recorder


def run_engine(
    protocol,
    graph: Graph,
    config=None,
    *,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    active_set: bool = True,
    telemetry: bool = False,
    fault_plan=None,
):
    """Registered ``("smm", "synchronous", "vectorized")`` backend.

    Validates the initial configuration and applies the default round
    budget exactly like the reference engine, runs the kernel, and
    returns a :class:`~repro.engine.result.RunResult` with the summary
    fields (``move_log``/``history`` stay ``None`` — this backend does
    not trace; ``rng``/``record_history`` are accepted for the uniform
    runner signature, and selection guarantees they are unused).  With
    ``telemetry=True`` the run collects per-round rule counters and the
    Fig. 2 node-type census into ``result.telemetry``.  With a
    ``fault_plan`` the run executes as a segmented fault campaign on the
    dense arrays (:mod:`repro.resilience.vector`), byte-identical in its
    counters with the reference campaign.
    """
    if fault_plan is not None:
        from repro.resilience.vector import run_vector_campaign

        return run_vector_campaign(
            protocol,
            graph,
            config,
            fault_plan=fault_plan,
            family="smm",
            rng=rng,
            max_rounds=max_rounds,
            record_history=record_history,
            raise_on_timeout=raise_on_timeout,
            active_set=active_set,
            telemetry=telemetry,
        )
    from repro.core.executor import _default_round_budget, _resolve_config
    from repro.engine.result import RunResult

    initial = _resolve_config(protocol, graph, config)
    kernel = VectorizedSMM(graph)
    budget = max_rounds if max_rounds is not None else _default_round_budget(graph)
    recorder = None
    if telemetry:
        res, recorder = telemetry_run(
            protocol, kernel, kernel.encode(initial), budget, "vectorized"
        )
    else:
        res = kernel.run(initial, max_rounds=budget, active_set=active_set)
    final = kernel.decode(res.final_ptr)
    result = RunResult(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=res.stabilized,
        rounds=res.rounds,
        moves=res.moves,
        moves_by_rule=res.moves_by_rule,
        initial=initial,
        final=final,
        legitimate=protocol.is_legitimate(graph, final),
        backend="vectorized",
    )
    if recorder is not None:
        result.telemetry = recorder.finish()
    if raise_on_timeout and not result.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds", result
        )
    return result
