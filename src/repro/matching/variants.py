"""SMM variants probing the necessity of the min-id choice in R2.

Section 3 of the paper closes with:

    "It is interesting to note that in rule R2 of Algorithm SMM, it is
    necessary that i select a minimum neighbor j, rather than an
    arbitrary neighbor.  For if we were to omit this requirement, the
    algorithm may not stabilize: Consider a four cycle, with all
    pointers initially null, which repeatedly select their clockwise
    neighbor using rule R2, and then execute rule R3."

:class:`ArbitraryChoiceSMM` with :func:`clockwise_chooser` reproduces
exactly that oscillation (experiment E4): on ``C_4`` starting all-null,
every node proposes clockwise, nobody is reciprocated, everybody backs
off, forever — period-2 livelock.

:class:`RandomizedSMM` is the natural ablation: choices are uniform
random per round.  Symmetry is then broken with probability bounded
away from zero each cycle, so it stabilizes almost surely — but with
unbounded worst-case time, which is precisely the guarantee gap the
deterministic min-id rule closes.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.protocol import View
from repro.matching.smm import (
    Chooser,
    MatchingProtocolBase,
    min_id_chooser,
    random_chooser,
)
from repro.types import NodeId


def clockwise_chooser(n: int) -> Chooser:
    """A chooser for cycle graphs ``C_n`` (ids ``0..n-1`` around the
    ring): among the candidates, prefer the clockwise neighbour
    ``(i + 1) mod n``; fall back to the minimum id.

    With this chooser the all-null configuration of ``C_n`` (n even)
    livelocks under :class:`ArbitraryChoiceSMM`: the clockwise neighbour
    of a null node is always itself null, so R2 always proposes
    clockwise and no proposal is ever mutual.
    """

    def choose(view: View, candidates: Tuple[NodeId, ...]) -> NodeId:
        clockwise = (view.node + 1) % n
        if clockwise in candidates:
            return clockwise
        return candidates[0]

    return choose


def cyclic_successor_chooser(
    view: View, candidates: Tuple[NodeId, ...]
) -> NodeId:
    """Topology-free variant of :func:`clockwise_chooser`: prefer the
    smallest candidate id *greater* than the node's own id, wrapping to
    the smallest candidate overall.

    On a cycle ``C_n`` with ids ``0..n-1`` around the ring, each node's
    neighbours are ``i±1 (mod n)``, so this picks exactly the clockwise
    neighbour whenever it is available — the two choosers induce
    identical executions on cycles.  Unlike :func:`clockwise_chooser`
    it needs no ``n`` up front, so the counterexample protocol can be
    registered as a named factory in :mod:`repro.engine.registry`
    (``"smm-arbitrary-clockwise"``) and fanned out via trial specs.
    """
    greater = [c for c in candidates if c > view.node]
    if greater:
        return min(greater)
    return candidates[0]


class ArbitraryChoiceSMM(MatchingProtocolBase):
    """SMM with R2's min-id requirement dropped.

    The supplied ``propose_chooser`` plays the adversary that the
    paper's "arbitrary neighbor" allows.  Correct when it stabilizes
    (the stable configurations are the same as SMM's) but — as the
    counterexample shows — it may never stabilize.
    """

    name = "SMM-arbitrary"

    def __init__(
        self,
        propose_chooser: Chooser,
        accept_chooser: Chooser = min_id_chooser,
    ) -> None:
        super().__init__(
            accept_chooser=accept_chooser, propose_chooser=propose_chooser
        )


class RandomizedSMM(MatchingProtocolBase):
    """SMM with uniform-random choices in both R1 and R2.

    Uses the executor's per-round variates; each node's pick is a
    deterministic function of its variate, so the protocol remains a
    legal randomized guarded-rule system (the variate travels on the
    beacon like any other state).
    """

    name = "SMM-randomized"
    uses_randomness = True

    def __init__(self) -> None:
        super().__init__(
            accept_chooser=random_chooser, propose_chooser=random_chooser
        )
