"""Verification helpers for matching executions.

These wrap the generic predicate checkers of
:mod:`repro.graphs.properties` for pointer configurations and whole
:class:`~repro.core.executor.Execution` records.  Every matching test
and experiment funnels through :func:`verify_execution`, which checks
the full contract of Theorem 1 / Lemma 8 on a completed run.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.executor import Execution
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    is_matching,
    is_maximal_matching,
    pointer_matching,
)
from repro.types import Edge, NodeId, Pointer


def matching_of(config: Mapping[NodeId, Pointer]) -> frozenset[Edge]:
    """The matched edges of a pointer configuration (``i <-> j`` pairs)."""
    return pointer_matching(dict(config))


def is_stable_configuration(
    graph: Graph, config: Mapping[NodeId, Pointer]
) -> bool:
    """Lemma 8's characterization, checked directly on the states:
    reciprocated pointers form a maximal matching and every unmatched
    node is aloof (null pointer)."""
    matching = matching_of(config)
    if not is_maximal_matching(graph, matching):
        return False
    matched = {x for e in matching for x in e}
    return all(config[n] is None for n in graph.nodes if n not in matched)


def verify_execution(graph: Graph, execution: Execution) -> frozenset[Edge]:
    """Full post-run contract check; returns the final matching.

    Asserts (raising ``AssertionError`` with a description otherwise):

    1. the run stabilized;
    2. the executor's own legitimacy evaluation agrees;
    3. the final matching is a valid matching of the *current* graph;
    4. it is maximal;
    5. unmatched nodes are aloof.
    """
    if not execution.stabilized:
        raise AssertionError(
            f"{execution.protocol_name} did not stabilize "
            f"({execution.rounds} rounds, {execution.moves} moves)"
        )
    if not execution.legitimate:
        raise AssertionError("stabilized configuration is not legitimate")
    final = execution.final
    matching = matching_of(final)
    if not is_matching(graph, matching):
        raise AssertionError(f"final pointers do not form a matching: {matching}")
    if not is_maximal_matching(graph, matching):
        raise AssertionError(f"final matching is not maximal: {matching}")
    matched = {x for e in matching for x in e}
    loose = {
        n: final[n] for n in graph.nodes if n not in matched and final[n] is not None
    }
    if loose:
        raise AssertionError(f"unmatched nodes with non-null pointers: {loose}")
    return matching
