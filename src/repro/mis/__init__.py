"""Maximal independent set protocols (paper Section 4).

* :class:`~repro.mis.sis.SynchronousMaximalIndependentSet` — Algorithm
  SIS/SMI (Fig. 4): two id-driven rules; stabilizes in O(n) rounds
  (Theorem 2) to the *unique* fixpoint — the greedy MIS by descending
  id.
* :mod:`~repro.mis.variants` — an id-free central-daemon MIS baseline
  (which livelocks under the synchronous daemon, illuminating why SIS
  compares ids) and a Luby-style randomized synchronous comparator.
* :mod:`~repro.mis.verify` — execution contract checks.
* :mod:`~repro.mis.sis_vectorized` / :mod:`~repro.mis.sis_batch` /
  :mod:`~repro.mis.luby_vectorized` — NumPy kernels (single run, batch
  of runs, and the randomized comparator — the latter draw-for-draw
  identical to the reference engine).
"""

from repro.mis.luby_vectorized import VectorizedLuby
from repro.mis.sis import SynchronousMaximalIndependentSet, sis_round_bound
from repro.mis.variants import CentralDaemonMIS, LubyStyleMIS
from repro.mis.verify import (
    independent_set_of,
    is_stable_configuration,
    verify_execution,
)

__all__ = [
    "SynchronousMaximalIndependentSet",
    "sis_round_bound",
    "CentralDaemonMIS",
    "LubyStyleMIS",
    "VectorizedLuby",
    "independent_set_of",
    "is_stable_configuration",
    "verify_execution",
]
