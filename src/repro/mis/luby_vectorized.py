"""Vectorized Luby-style randomized MIS rounds.

NumPy kernel for :class:`repro.mis.variants.LubyStyleMIS`.  The
reference executor draws one uniform variate per node per round with
``rng.random(n)`` assigned to nodes in ascending-id order; this kernel
draws from the same generator in the same shape, so a kernel run and an
engine run constructed from generators in identical states produce
*bit-identical* trajectories — the equivalence tests exploit that.

Per round, with draws ``r`` and the lexicographic order
``(r, id)``:

* an out-node **enters** iff it has no in-set neighbour and its draw
  beats every out-neighbour's draw;
* an in-node **leaves** iff some in-set neighbour's draw beats its own.

Termination is structural (a drawless property): the in-set is an MIS —
matching ``LubyStyleMIS.is_quiescent``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import StabilizationTimeout
from repro.graphs.graph import Graph
from repro.rng import RngLike, ensure_rng
from repro.types import NodeId


@dataclass
class VectorResult:
    """Summary of a vectorized Luby run."""

    stabilized: bool
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    final_x: np.ndarray


class VectorizedLuby:
    """Luby-style MIS rounds as array operations over one fixed graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        indptr, indices, ids = graph.adjacency_arrays()
        self.n = graph.n
        self._indices = indices
        self._ids = ids
        self._id_to_dense = {int(node): k for k, node in enumerate(ids)}
        self._row = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(indptr))

    # ------------------------------------------------------------------
    def encode(self, config) -> np.ndarray:
        x = np.zeros(self.n, dtype=np.int8)
        for node, value in dict(config).items():
            x[self._id_to_dense[int(node)]] = int(value)
        return x

    def decode(self, x: np.ndarray) -> Configuration:
        return Configuration(
            {int(self._ids[k]): int(x[k]) for k in range(self.n)}
        )

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """One round under the given per-node draws (shape (n,))."""
        idx = self._indices
        row = self._row
        ids = self._ids
        # neighbour j "beats" owner i on the (draw, id) order
        beats = (draws[idx] > draws[row]) | (
            (draws[idx] == draws[row]) & (ids[idx] > ids[row])
        )

        in_set_nb = np.zeros(self.n, dtype=bool)
        np.logical_or.at(in_set_nb, row, x[idx] == 1)

        # R1 blockers: an out-neighbour that beats me
        out_beats = np.zeros(self.n, dtype=bool)
        np.logical_or.at(out_beats, row, (x[idx] == 0) & beats)
        enter = (x == 0) & ~in_set_nb & ~out_beats

        # R2: an in-set neighbour that beats me
        in_beats = np.zeros(self.n, dtype=bool)
        np.logical_or.at(in_beats, row, (x[idx] == 1) & beats)
        leave = (x == 1) & in_beats

        new_x = x.copy()
        new_x[enter] = 1
        new_x[leave] = 0
        return new_x

    def is_quiescent(self, x: np.ndarray) -> bool:
        """Structural termination: the in-set is an MIS (vectorized)."""
        idx = self._indices
        row = self._row
        # independence: no edge with both endpoints in the set
        if bool(((x[row] == 1) & (x[idx] == 1)).any()):
            return False
        # domination: every out-node has an in-set neighbour
        dominated = np.zeros(self.n, dtype=bool)
        np.logical_or.at(dominated, row, x[idx] == 1)
        return bool((dominated | (x == 1)).all())

    # ------------------------------------------------------------------
    def run(
        self,
        config=None,
        *,
        rng: RngLike = None,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
    ) -> VectorResult:
        """Iterate rounds until the in-set is an MIS.

        Rounds with no winner still consume a draw and count (the
        reference engine's accounting) — see
        :meth:`Protocol.is_quiescent` for why termination cannot be
        "nobody moved this round".
        """
        gen = ensure_rng(rng)
        if config is None:
            x = np.zeros(self.n, dtype=np.int8)
        elif isinstance(config, np.ndarray):
            x = config.astype(np.int8, copy=True)
        else:
            x = self.encode(config)

        budget = max_rounds if max_rounds is not None else 50 * self.n + 100
        moves_by_rule = {"R1": 0, "R2": 0}
        rounds = 0
        stabilized = False
        while rounds < budget:
            if self.is_quiescent(x):
                stabilized = True
                break
            draws = gen.random(self.n)
            new_x = self.step(x, draws)
            changed = new_x != x
            moves_by_rule["R1"] += int((changed & (new_x == 1)).sum())
            moves_by_rule["R2"] += int((changed & (new_x == 0)).sum())
            x = new_x
            rounds += 1
        else:
            stabilized = self.is_quiescent(x)

        result = VectorResult(
            stabilized=stabilized,
            rounds=rounds,
            moves=sum(moves_by_rule.values()),
            moves_by_rule=moves_by_rule,
            final_x=x,
        )
        if raise_on_timeout and not stabilized:
            raise StabilizationTimeout(
                f"vectorized Luby exceeded {budget} rounds", result
            )
        return result

    def independent_set(self, x: np.ndarray) -> frozenset[NodeId]:
        return frozenset(int(self._ids[k]) for k in range(self.n) if x[k] == 1)


# ----------------------------------------------------------------------
# engine backend adapter
# ----------------------------------------------------------------------
def _telemetry_run(protocol, kernel: VectorizedLuby, x: np.ndarray,
                   budget: int, rng):
    """Luby run with per-round counter recording.

    Consumes the generator draw-for-draw like :meth:`VectorizedLuby.run`
    (quiescence check *before* drawing, one ``random(n)`` per round), so
    trajectories — and hence the per-round counters — are bit-identical
    with both the plain kernel path and the reference engine.  Returns
    ``(VectorResult, recorder)`` with the recorder in its finalize
    phase.
    """
    from repro.observability import TelemetryRecorder

    recorder = TelemetryRecorder(
        protocol.name, "synchronous", "vectorized", protocol.rule_names()
    )
    recorder.begin_rounds()
    gen = ensure_rng(rng)
    moves_by_rule = {"R1": 0, "R2": 0}
    rounds = 0
    stabilized = False
    while rounds < budget:
        if kernel.is_quiescent(x):
            stabilized = True
            break
        draws = gen.random(kernel.n)
        new_x = kernel.step(x, draws)
        changed = new_x != x
        c1 = int((changed & (new_x == 1)).sum())
        c2 = int((changed & (new_x == 0)).sum())
        x = new_x
        rounds += 1
        moves_by_rule["R1"] += c1
        moves_by_rule["R2"] += c2
        recorder.on_round({"R1": c1, "R2": c2}, kernel.n)
    else:
        stabilized = kernel.is_quiescent(x)
    recorder.begin_finalize()
    res = VectorResult(
        stabilized=stabilized,
        rounds=rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        final_x=x,
    )
    return res, recorder


def run_engine(
    protocol,
    graph: Graph,
    config=None,
    *,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    telemetry: bool = False,
):
    """Registered ``("luby", "synchronous", "vectorized")`` backend.

    The kernel consumes the generator draw-for-draw like the reference
    engine, so ``engine.run("luby", g, rng=seed, backend=b)`` is
    trajectory-identical for both backends.  The reference engine's
    randomized default budget (``10·n + 100``) applies here too.  With
    ``telemetry=True`` the run collects per-round rule counters into
    ``result.telemetry``.
    """
    from repro.core.executor import _default_round_budget, _resolve_config
    from repro.engine.result import RunResult

    initial = _resolve_config(protocol, graph, config)
    kernel = VectorizedLuby(graph)
    budget = max_rounds if max_rounds is not None else _default_round_budget(graph)
    recorder = None
    if telemetry:
        res, recorder = _telemetry_run(
            protocol, kernel, kernel.encode(initial), budget, rng
        )
    else:
        res = kernel.run(initial, rng=rng, max_rounds=budget)
    final = kernel.decode(res.final_x)
    result = RunResult(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=res.stabilized,
        rounds=res.rounds,
        moves=res.moves,
        moves_by_rule=res.moves_by_rule,
        initial=initial,
        final=final,
        legitimate=protocol.is_legitimate(graph, final),
        backend="vectorized",
    )
    if recorder is not None:
        result.telemetry = recorder.finish()
    if raise_on_timeout and not result.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds", result
        )
    return result
