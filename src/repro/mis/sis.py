"""Algorithm SIS (the paper also calls it SMI) — Synchronous Maximal
Independent Set (paper Fig. 4).

Each node ``i`` holds one bit ``x(i)``; ``x(i) = 1`` means "in the
set".  The two rules, with ids totally ordered ("we assume that no two
neighbors have the same ID"):

``R1``  if ``x(i) = 0 ∧ ¬∃ j ∈ N(i): j > i ∧ x(j) = 1``
        then ``x(i) := 1``                       *(enter the set)*

``R2``  if ``x(i) = 1 ∧ ∃ j ∈ N(i): j > i ∧ x(j) = 1``
        then ``x(i) := 0``                       *(leave the set)*

**Theorem 2**: the protocol stabilizes in O(n) synchronous rounds; the
proof sketch peels the graph two rounds per "layer": largest nodes
enter at round 1 and never leave, their neighbours are forced out
permanently by round 2, the locally largest remaining nodes enter next,
and so on.

A configuration is stable iff ``x(i) = 1 ⟺ no neighbour j > i has
x(j) = 1`` — a recursion with exactly one solution: the **greedy MIS by
descending id** (resolve ids from the largest down).  Stable
configurations therefore do not merely form *some* MIS (Lemma 13);
they form a canonical one, and every run lands on it.  Experiment E2
checks both facts.

A subtlety worth recording: *MIS-ness itself is not closed* under SIS's
rules.  A configuration whose set is a maximal independent set other
than the greedy one is still unstable (some out-node with no larger
in-set neighbour fires R1, transiently breaking independence).  The
protocol's invariant class is the fixpoint characterization above, not
"is an MIS"; :meth:`is_legitimate` implements the fixpoint check and a
dedicated test documents the non-closure of plain MIS-ness.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError
from repro.graphs.graph import Graph
from repro.graphs.properties import greedy_mis_by_descending_id
from repro.types import NodeId


class SynchronousMaximalIndependentSet(Protocol[int]):
    """Algorithm SIS exactly as published."""

    name = "SIS"

    def __init__(self) -> None:
        self._rules = (
            Rule(
                name="R1",
                guard=self._r1_guard,
                action=lambda view: 1,
                description="enter the set",
            ),
            Rule(
                name="R2",
                guard=self._r2_guard,
                action=lambda view: 0,
                description="leave the set",
            ),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _bigger_in_set(view: View) -> bool:
        """``∃ j ∈ N(i): j > i ∧ x(j) = 1``."""
        me = view.node
        return view.any_neighbor(lambda j, s: j > me and s == 1)

    def _r1_guard(self, view: View) -> bool:
        return view.state == 0 and not self._bigger_in_set(view)

    def _r2_guard(self, view: View) -> bool:
        return view.state == 1 and self._bigger_in_set(view)

    # ------------------------------------------------------------------
    def rules(self) -> Sequence[Rule[int]]:
        return self._rules

    def initial_state(self, node: NodeId, graph: Graph) -> int:
        """Clean start: nobody in the set."""
        return 0

    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(2))

    def validate_state(self, node: NodeId, graph: Graph, state: int) -> None:
        if state not in (0, 1):
            raise InvalidConfigurationError(
                f"node {node}: SIS state must be 0 or 1, got {state!r}"
            )

    def is_legitimate(self, graph: Graph, config: Mapping[NodeId, int]) -> bool:
        """The stable-configuration predicate:
        ``x(i) = 1 ⟺ ¬∃ j ∈ N(i): j > i ∧ x(j) = 1`` for every node —
        equivalently, the in-set nodes are exactly the greedy MIS by
        descending id."""
        for i in graph.nodes:
            blocked = any(j > i and config[j] == 1 for j in graph.neighbors(i))
            if (config[i] == 1) == blocked:
                return False
        return True

    def stable_set(self, graph: Graph) -> frozenset[NodeId]:
        """The unique stable set — greedy MIS by descending id."""
        return greedy_mis_by_descending_id(graph)


def sis_round_bound(graph: Graph) -> int:
    """Theorem 2's stabilization bound for SIS: at most ``n`` rounds."""
    return graph.n
