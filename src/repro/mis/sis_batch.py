"""Batch-vectorized SIS: step many independent runs simultaneously.

Batch analogue of :mod:`repro.mis.sis_vectorized` — the round update
``x' = ¬(∃ bigger in-set neighbour)`` applied to a (k, n) state matrix
with one logical-or scatter per round.  See
:mod:`repro.matching.smm_batch` for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import StabilizationTimeout
from repro.graphs.graph import Graph
from repro.mis.sis_vectorized import VectorizedSIS


@dataclass
class BatchResult:
    """Summary of a batch run."""

    stabilized: np.ndarray   #: (k,) bool
    rounds: np.ndarray       #: (k,) int
    final_x: np.ndarray      #: (k, n) final state matrix
    #: per-rule firing counts, (k,) int array per rule name — always
    #: populated by :meth:`BatchSIS.run_batch`
    moves_by_rule: Dict[str, np.ndarray]

    @property
    def all_stabilized(self) -> bool:
        return bool(self.stabilized.all())

    def max_rounds(self) -> int:
        return int(self.rounds.max(initial=0))


class BatchSIS:
    """SIS rounds vectorized across a batch of runs on one graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.single = VectorizedSIS(graph)
        indptr, indices, ids = graph.adjacency_arrays()
        self.n = graph.n
        self._indices = indices
        self._bigger_entry = self.single._bigger_entry
        # reduceat segment boundaries along the entry axis; empty rows
        # masked explicitly (see the SMM batch kernel)
        self._seg_empty = indptr[:-1] == indptr[1:]
        self._seg_starts = (
            np.minimum(indptr[:-1], indices.size - 1) if indices.size else None
        )

    def encode_batch(self, configs: Sequence) -> np.ndarray:
        return np.stack([self.single.encode(cfg) for cfg in configs])

    def decode_batch(self, xs: np.ndarray):
        return [self.single.decode(xs[i]) for i in range(xs.shape[0])]

    def step_batch(self, xs: np.ndarray) -> np.ndarray:
        """One synchronous round for every row of the (k, n) matrix."""
        k, n = xs.shape
        assert n == self.n
        if self._seg_starts is None:  # edgeless graph: nobody is blocked
            return np.ones((k, n), dtype=np.uint8)
        in_set_entry = (xs[:, self._indices] == 1) & self._bigger_entry
        blocked = np.logical_or.reduceat(in_set_entry, self._seg_starts, axis=1)
        blocked[:, self._seg_empty] = False
        return (~blocked).astype(np.uint8)

    def run_batch(
        self,
        configs,
        *,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
    ) -> BatchResult:
        """Run every row to its fixpoint (or the shared budget)."""
        if isinstance(configs, np.ndarray):
            xs = configs.astype(np.uint8, copy=True)
        else:
            xs = self.encode_batch(configs)
        k = xs.shape[0]
        budget = max_rounds if max_rounds is not None else self.n + 8

        rounds = np.zeros(k, dtype=np.int64)
        moves_by_rule = {
            name: np.zeros(k, dtype=np.int64) for name in ("R1", "R2")
        }
        # Row compaction (see the SMM batch kernel): quiescent rows are
        # at their fixpoint, so each round steps only the rows that
        # moved last round — byte-identical results at |live|·n cost.
        # At most `budget` rounds are applied — same cap as the
        # single-run kernel and the reference engine, so round counts
        # agree even on timeouts.
        live = np.arange(k)
        for _ in range(budget):
            sub = xs[live]
            new_sub = self.step_batch(sub)
            changed = new_sub != sub
            moved_sub = changed.any(axis=1)
            if not moved_sub.any():
                live = live[:0]
                break
            moved_idx = live[moved_sub]
            moves_by_rule["R1"][moved_idx] += (changed & (new_sub == 1))[moved_sub].sum(axis=1)
            moves_by_rule["R2"][moved_idx] += (changed & (new_sub == 0))[moved_sub].sum(axis=1)
            xs[moved_idx] = new_sub[moved_sub]
            rounds[moved_idx] += 1
            live = moved_idx
        else:
            if live.size:
                new_sub = self.step_batch(xs[live])
                live = live[(new_sub != xs[live]).any(axis=1)]
        active = np.zeros(k, dtype=bool)
        active[live] = True

        result = BatchResult(
            stabilized=~active,
            rounds=rounds,
            final_x=xs,
            moves_by_rule=moves_by_rule,
        )
        if raise_on_timeout and not result.all_stabilized:
            raise StabilizationTimeout(
                f"batch SIS: {int(active.sum())} runs exceeded {budget} rounds",
                result,
            )
        return result


# ----------------------------------------------------------------------
# engine backend adapter
# ----------------------------------------------------------------------
def _telemetry_run_batch(protocol, kernel: BatchSIS, xs: np.ndarray,
                         budget: int):
    """Batch-of-one SIS run with per-round counter recording — same
    loop structure as the reference engine, stepping through
    :meth:`BatchSIS.step_batch`.  Returns ``(stabilized, rounds,
    moves_by_rule, xs, recorder)`` with the recorder in its finalize
    phase."""
    from repro.observability import TelemetryRecorder

    recorder = TelemetryRecorder(
        protocol.name, "synchronous", "batch", protocol.rule_names()
    )
    recorder.begin_rounds()
    moves_by_rule = {"R1": 0, "R2": 0}
    rounds = 0
    stabilized = False
    while True:
        new_xs = kernel.step_batch(xs)
        changed = new_xs != xs
        c1 = int((changed & (new_xs == 1)).sum())
        c2 = int((changed & (new_xs == 0)).sum())
        if c1 + c2 == 0:
            stabilized = True
            break
        if rounds >= budget:
            break
        xs = new_xs
        rounds += 1
        moves_by_rule["R1"] += c1
        moves_by_rule["R2"] += c2
        recorder.on_round({"R1": c1, "R2": c2}, kernel.n)
    recorder.begin_finalize()
    return stabilized, rounds, moves_by_rule, xs, recorder


def run_engine(
    protocol,
    graph: Graph,
    config=None,
    *,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    telemetry: bool = False,
):
    """Registered ``("sis", "synchronous", "batch")`` backend (batch of
    one — see the SMM batch adapter for the rationale).  With
    ``telemetry=True`` the run collects per-round rule counters,
    byte-identical with the other backends."""
    from repro.core.executor import _default_round_budget, _resolve_config
    from repro.engine.result import RunResult

    initial = _resolve_config(protocol, graph, config)
    kernel = BatchSIS(graph)
    budget = max_rounds if max_rounds is not None else _default_round_budget(graph)
    recorder = None
    if telemetry:
        stabilized, rounds, moves_by_rule, xs, recorder = _telemetry_run_batch(
            protocol, kernel, kernel.encode_batch([initial]), budget
        )
        final = kernel.single.decode(xs[0])
    else:
        res = kernel.run_batch([initial], max_rounds=budget)
        stabilized = bool(res.stabilized[0])
        rounds = int(res.rounds[0])
        final = kernel.single.decode(res.final_x[0])
        moves_by_rule = {
            name: int(counts[0]) for name, counts in res.moves_by_rule.items()
        }
    result = RunResult(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=stabilized,
        rounds=rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        initial=initial,
        final=final,
        legitimate=protocol.is_legitimate(graph, final),
        backend="batch",
    )
    if recorder is not None:
        result.telemetry = recorder.finish()
    if raise_on_timeout and not result.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds", result
        )
    return result
