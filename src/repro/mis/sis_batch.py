"""Batch-vectorized SIS: step many independent runs simultaneously.

Batch analogue of :mod:`repro.mis.sis_vectorized` — the round update
``x' = ¬(∃ bigger in-set neighbour)`` applied to a (k, n) state matrix
with one logical-or scatter per round.  See
:mod:`repro.matching.smm_batch` for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import StabilizationTimeout
from repro.graphs.graph import Graph
from repro.mis.sis_vectorized import VectorizedSIS


@dataclass
class BatchResult:
    """Summary of a batch run."""

    stabilized: np.ndarray   #: (k,) bool
    rounds: np.ndarray       #: (k,) int
    final_x: np.ndarray      #: (k, n) final state matrix

    @property
    def all_stabilized(self) -> bool:
        return bool(self.stabilized.all())

    def max_rounds(self) -> int:
        return int(self.rounds.max(initial=0))


class BatchSIS:
    """SIS rounds vectorized across a batch of runs on one graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.single = VectorizedSIS(graph)
        indptr, indices, ids = graph.adjacency_arrays()
        self.n = graph.n
        self._indices = indices
        self._row = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(indptr))
        self._bigger_entry = ids[indices] > ids[self._row]

    def encode_batch(self, configs: Sequence) -> np.ndarray:
        return np.stack([self.single.encode(cfg) for cfg in configs])

    def decode_batch(self, xs: np.ndarray):
        return [self.single.decode(xs[i]) for i in range(xs.shape[0])]

    def step_batch(self, xs: np.ndarray) -> np.ndarray:
        """One synchronous round for every row of the (k, n) matrix."""
        k, n = xs.shape
        assert n == self.n
        in_set_entry = (xs[:, self._indices] == 1) & self._bigger_entry
        blocked = np.zeros((k, n), dtype=bool)
        flat_owner = (np.arange(k)[:, None] * n + self._row).ravel()
        np.logical_or.at(blocked.reshape(-1), flat_owner, in_set_entry.ravel())
        return (~blocked).astype(np.int8)

    def run_batch(
        self,
        configs,
        *,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
    ) -> BatchResult:
        """Run every row to its fixpoint (or the shared budget)."""
        if isinstance(configs, np.ndarray):
            xs = configs.astype(np.int8, copy=True)
        else:
            xs = self.encode_batch(configs)
        k = xs.shape[0]
        budget = max_rounds if max_rounds is not None else self.n + 8

        active = np.ones(k, dtype=bool)
        rounds = np.zeros(k, dtype=np.int64)
        for _ in range(budget + 1):
            new_xs = self.step_batch(xs)
            moved = (new_xs != xs).any(axis=1) & active
            if not moved.any():
                active[:] = False
                break
            xs[moved] = new_xs[moved]
            rounds[moved] += 1
        else:
            new_xs = self.step_batch(xs)
            active = (new_xs != xs).any(axis=1)

        result = BatchResult(stabilized=~active, rounds=rounds, final_x=xs)
        if raise_on_timeout and not result.all_stabilized:
            raise StabilizationTimeout(
                f"batch SIS: {int(active.sum())} runs exceeded {budget} rounds",
                result,
            )
        return result
