"""Vectorized SIS synchronous rounds (NumPy kernel).

The whole SIS round collapses to one array expression.  A node's guard
depends only on whether some *larger-id* neighbour is in the set
(``blocked``); inspecting Fig. 4's rules case by case:

===========  =========  ==========================  =========
``x(i)``     blocked?   rule fired                  ``x'(i)``
===========  =========  ==========================  =========
0            no         R1 (enter)                  1
0            yes        —                           0
1            no         —                           1
1            yes        R2 (leave)                  0
===========  =========  ==========================  =========

i.e. ``x' = ¬blocked`` — the new state is independent of the old one.
Stabilization is detected as ``x' == x``; moves split into R1
(``0 -> 1``) and R2 (``1 -> 0``).

State layout: membership is a dense uint8 0/1 array (one byte per
node); :meth:`VectorizedSIS.pack` / :meth:`VectorizedSIS.unpack` /
:meth:`VectorizedSIS.step_packed` provide the bitset form (8 nodes per
byte via :func:`repro.kernels.pack_bits`) for memory-lean storage of
many configurations.  Per-row reductions run on ``logical_or.reduceat``
over contiguous CSR segments, and tiny frontiers step through a
pure-Python loop that exploits CSR row order: dense index order equals
id order, so the larger-id neighbours of row ``i`` are exactly the
suffix of entries ``> i``.

Equivalence with the reference engine is pinned by
``tests/test_sis_vectorized.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.configuration import Configuration
from repro.errors import StabilizationTimeout
from repro.graphs.graph import Graph
from repro.kernels import (
    closed_neighborhood,
    csr_entry_positions,
    pack_bits,
    segment_any,
    unpack_bits,
)
from repro.types import NodeId

#: Frontier size at or below which the pure-Python scalar step runs.
_SCALAR_MAX = 32


@dataclass
class VectorResult:
    """Summary of a vectorized SIS run."""

    stabilized: bool
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    final_x: np.ndarray  # 0/1 per dense node index


class VectorizedSIS:
    """SIS rounds as NumPy array operations over one fixed graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # adjacency_arrays() is cached on the (immutable) graph: repeated
        # kernel construction over one graph is O(1) after the first.
        indptr, indices, ids = graph.adjacency_arrays()
        self._indptr = indptr
        self._indices = indices
        self._ids = ids
        self._id_to_dense = graph.dense_index()
        self.n = graph.n
        self._row = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(indptr)
        )
        # entry mask: neighbour id greater than owner id (precomputable —
        # it depends only on the topology, not the configuration)
        self._bigger_entry = ids[indices] > ids[self._row]
        # plain-list CSR mirror for the scalar frontier path, lazy
        self._indptr_list: Optional[List[int]] = None
        self._indices_list: Optional[List[int]] = None

    def encode(self, config) -> np.ndarray:
        x = np.zeros(self.n, dtype=np.uint8)
        for node, value in dict(config).items():
            x[self._id_to_dense[int(node)]] = int(value)
        return x

    def decode(self, x: np.ndarray) -> Configuration:
        return Configuration(
            {int(self._ids[k]): int(x[k]) for k in range(self.n)}
        )

    # ------------------------------------------------------------------
    # packed-bit representation
    # ------------------------------------------------------------------
    def pack(self, x: np.ndarray) -> np.ndarray:
        """Bitset form of a dense 0/1 membership array (8 nodes/byte)."""
        return pack_bits(x)

    def unpack(self, bits: np.ndarray) -> np.ndarray:
        """Dense uint8 0/1 array from a bitset produced by :meth:`pack`."""
        return unpack_bits(bits, self.n)

    def step_packed(self, bits: np.ndarray) -> np.ndarray:
        """One synchronous round on the packed-bit representation.

        Unpacks, steps the flat kernel, re-packs: byte-identical with
        ``pack(step(unpack(bits)))`` by construction, pinned against the
        flat kernel by the equivalence suite.
        """
        return pack_bits(self.step(unpack_bits(bits, self.n)))

    def _scalar_csr(self) -> tuple[List[int], List[int]]:
        if self._indices_list is None:
            self._indptr_list = self._indptr.tolist()
            self._indices_list = self._indices.tolist()
        return self._indptr_list, self._indices_list

    def step(self, x: np.ndarray) -> np.ndarray:
        """One synchronous round: ``x' = ¬(∃ bigger in-set neighbour)``."""
        in_set_entry = (x[self._indices] == 1) & self._bigger_entry
        blocked = segment_any(in_set_entry, self._indptr)
        return (~blocked).astype(np.uint8)

    def _step_at(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Recompute ``x' = ¬blocked`` at ``rows`` only.

        Nodes outside ``rows`` are not looked at: a node's blockedness
        depends only on its neighbours' states, so a cached value stays
        valid until a neighbour changes.
        """
        positions, counts = csr_entry_positions(self._indptr, rows)
        in_set_entry = (x[self._indices[positions]] == 1) & self._bigger_entry[positions]
        seg = np.concatenate(([0], np.cumsum(counts)))
        blocked = segment_any(in_set_entry, seg)
        return (~blocked).astype(np.uint8)

    def _step_scalar(
        self, x: np.ndarray, rows: List[int]
    ) -> tuple[List[int], List[int], int, int]:
        """Pure-Python step for a tiny frontier.

        Returns ``(movers, vals, c1, c2)``.  Dense index order equals id
        order, so a row's larger-id neighbours are the CSR entries
        ``> i`` — scanned back to front so the first hit decides.
        """
        indptr, indices = self._scalar_csr()
        movers: List[int] = []
        vals: List[int] = []
        c1 = c2 = 0
        for i in rows:
            blocked = False
            for e in range(indptr[i + 1] - 1, indptr[i] - 1, -1):
                j = indices[e]
                if j <= i:
                    break
                if x[j] == 1:
                    blocked = True
                    break
            new = 0 if blocked else 1
            if new != int(x[i]):
                movers.append(i)
                vals.append(new)
                if new == 1:
                    c1 += 1
                else:
                    c2 += 1
        return movers, vals, c1, c2

    def _run_active(
        self, x: np.ndarray, budget: int, moves_by_rule: Dict[str, int]
    ) -> tuple[bool, int, np.ndarray]:
        stabilized, rounds, x, _ = self.segment_active(x, budget, moves_by_rule)
        return stabilized, rounds, x

    def segment_active(
        self,
        x: np.ndarray,
        budget: int,
        moves_by_rule: Dict[str, int],
        dirty=None,
        touched: Optional[np.ndarray] = None,
    ) -> tuple[bool, int, np.ndarray, object]:
        """Frontier stepping with an optional seeded initial dirty set.

        The active-set loop of :meth:`run`, exposed for the streaming
        engine: seed ``dirty`` with the closed neighbourhood of a
        topology event's fault sites (any superset of the enabled nodes
        is sound — nodes outside it cannot change, by locality of the
        guard) and the event is absorbed at its containment radius.
        ``dirty=None`` marks everything dirty.  ``touched`` accumulates
        movers into a length-``n`` bool array.  Returns ``(stabilized,
        rounds, x, residual_dirty)``.

        Frontier stepping keeps identical round semantics, with
        per-round work proportional to the dirty set.  The gather-based
        frontier step costs several times more per node than the flat
        full scan, so dense rounds (a dirty set above n/16) fall back to
        the full scan; a dirty superset is always sound, so dense
        rounds simply mark every node dirty.  Tiny frontiers (at most
        ``_SCALAR_MAX`` nodes) use the scalar loop; the dirty set may
        be an ndarray or a sorted list, with identical contents.
        """
        dense = max(1, self.n // 16)
        scalar_max = min(_SCALAR_MAX, dense - 1)
        if dirty is None:
            dirty = np.arange(self.n, dtype=np.int64)
        rounds = 0
        stabilized = False
        while True:
            if len(dirty) >= dense:
                new_x = self.step(x)
                movers = np.nonzero(new_x != x)[0]
                vals = new_x[movers]
                if movers.size == 0:
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moves_by_rule["R1"] += int((vals == 1).sum())
                moves_by_rule["R2"] += int((vals == 0).sum())
                x[movers] = vals
                if touched is not None:
                    touched[movers] = True
                n_moved = movers.size
            elif len(dirty) <= scalar_max:
                rows = dirty if isinstance(dirty, list) else dirty.tolist()
                movers, vals, c1, c2 = self._step_scalar(x, rows)
                if not movers:
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moves_by_rule["R1"] += c1
                moves_by_rule["R2"] += c2
                for i, v in zip(movers, vals):
                    x[i] = v
                    if touched is not None:
                        touched[i] = True
                n_moved = len(movers)
            else:
                if isinstance(dirty, list):
                    dirty = np.asarray(dirty, dtype=np.int64)
                new_vals = self._step_at(x, dirty)
                changed = new_vals != x[dirty]
                movers = dirty[changed]
                vals = new_vals[changed]
                if movers.size == 0:
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moves_by_rule["R1"] += int((vals == 1).sum())
                moves_by_rule["R2"] += int((vals == 0).sum())
                x[movers] = vals
                if touched is not None:
                    touched[movers] = True
                n_moved = movers.size
            rounds += 1
            if n_moved >= dense:
                dirty = np.arange(self.n, dtype=np.int64)
            elif isinstance(movers, list):
                indptr, indices = self._scalar_csr()
                nxt = set(movers)
                for i in movers:
                    nxt.update(indices[indptr[i]:indptr[i + 1]])
                dirty = sorted(nxt)
            else:
                dirty = closed_neighborhood(self._indptr, self._indices, movers)
        return stabilized, rounds, x, dirty

    def run(
        self,
        config=None,
        *,
        max_rounds: Optional[int] = None,
        raise_on_timeout: bool = False,
        active_set: bool = True,
    ) -> VectorResult:
        if config is None:
            x = np.zeros(self.n, dtype=np.uint8)
        elif isinstance(config, np.ndarray):
            x = config.astype(np.uint8, copy=True)
        else:
            x = self.encode(config)

        budget = max_rounds if max_rounds is not None else self.n + 8
        moves_by_rule = {"R1": 0, "R2": 0}
        rounds = 0
        stabilized = False
        if active_set:
            stabilized, rounds, x = self._run_active(x, budget, moves_by_rule)
        else:
            while True:
                new_x = self.step(x)
                changed = new_x != x
                if not changed.any():
                    stabilized = True
                    break
                if rounds >= budget:
                    break
                moves_by_rule["R1"] += int((changed & (new_x == 1)).sum())
                moves_by_rule["R2"] += int((changed & (new_x == 0)).sum())
                x = new_x
                rounds += 1
        result = VectorResult(
            stabilized=stabilized,
            rounds=rounds,
            moves=sum(moves_by_rule.values()),
            moves_by_rule=moves_by_rule,
            final_x=x,
        )
        if raise_on_timeout and not stabilized:
            raise StabilizationTimeout(
                f"vectorized SIS exceeded {budget} rounds", result
            )
        return result

    def independent_set(self, x: np.ndarray) -> frozenset[NodeId]:
        """In-set node ids of a dense state array."""
        return frozenset(int(self._ids[k]) for k in range(self.n) if x[k] == 1)


# ----------------------------------------------------------------------
# engine backend adapter
# ----------------------------------------------------------------------
def telemetry_run(protocol, kernel: VectorizedSIS, x: np.ndarray,
                  budget: int, backend: str):
    """Full-scan SIS run with per-round counter recording.

    Mirrors the reference loop structure exactly, so rounds, moves and
    the per-round telemetry counters are byte-identical with the
    reference engine.  No node-type census — the Fig. 2 taxonomy is a
    matching notion.  Returns ``(VectorResult, recorder)`` with the
    recorder in its finalize phase.
    """
    from repro.observability import TelemetryRecorder

    recorder = TelemetryRecorder(
        protocol.name, "synchronous", backend, protocol.rule_names()
    )
    recorder.begin_rounds()
    moves_by_rule = {"R1": 0, "R2": 0}
    rounds = 0
    stabilized = False
    while True:
        new_x = kernel.step(x)
        changed = new_x != x
        c1 = int((changed & (new_x == 1)).sum())
        c2 = int((changed & (new_x == 0)).sum())
        if c1 + c2 == 0:
            stabilized = True
            break
        if rounds >= budget:
            break
        x = new_x
        rounds += 1
        moves_by_rule["R1"] += c1
        moves_by_rule["R2"] += c2
        recorder.on_round({"R1": c1, "R2": c2}, kernel.n)
    recorder.begin_finalize()
    res = VectorResult(
        stabilized=stabilized,
        rounds=rounds,
        moves=sum(moves_by_rule.values()),
        moves_by_rule=moves_by_rule,
        final_x=x,
    )
    return res, recorder


def run_engine(
    protocol,
    graph: Graph,
    config=None,
    *,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    active_set: bool = True,
    telemetry: bool = False,
    fault_plan=None,
):
    """Registered ``("sis", "synchronous", "vectorized")`` backend.

    Same contract as the SMM adapter: reference-identical config
    validation and default budget, summary-only
    :class:`~repro.engine.result.RunResult`, legitimacy evaluated once
    through ``protocol.is_legitimate``.  With ``telemetry=True`` the run
    collects per-round rule counters into ``result.telemetry``.  With a
    ``fault_plan`` the run executes as a segmented fault campaign on the
    dense arrays (:mod:`repro.resilience.vector`), byte-identical in its
    counters with the reference campaign.
    """
    if fault_plan is not None:
        from repro.resilience.vector import run_vector_campaign

        return run_vector_campaign(
            protocol,
            graph,
            config,
            fault_plan=fault_plan,
            family="sis",
            rng=rng,
            max_rounds=max_rounds,
            record_history=record_history,
            raise_on_timeout=raise_on_timeout,
            active_set=active_set,
            telemetry=telemetry,
        )
    from repro.core.executor import _default_round_budget, _resolve_config
    from repro.engine.result import RunResult

    initial = _resolve_config(protocol, graph, config)
    kernel = VectorizedSIS(graph)
    budget = max_rounds if max_rounds is not None else _default_round_budget(graph)
    recorder = None
    if telemetry:
        res, recorder = telemetry_run(
            protocol, kernel, kernel.encode(initial), budget, "vectorized"
        )
    else:
        res = kernel.run(initial, max_rounds=budget, active_set=active_set)
    final = kernel.decode(res.final_x)
    result = RunResult(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=res.stabilized,
        rounds=res.rounds,
        moves=res.moves,
        moves_by_rule=res.moves_by_rule,
        initial=initial,
        final=final,
        legitimate=protocol.is_legitimate(graph, final),
        backend="vectorized",
    )
    if recorder is not None:
        result.telemetry = recorder.finish()
    if raise_on_timeout and not result.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds", result
        )
    return result
