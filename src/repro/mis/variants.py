"""MIS comparators: an id-free central-daemon baseline and a
Luby-style randomized synchronous protocol.

Both exist to situate Algorithm SIS:

* :class:`CentralDaemonMIS` is the folklore self-stabilizing MIS that
  predates the paper — enter when undominated, leave on any in-set
  neighbour, no id comparison.  Correct under the **central** daemon,
  but under the synchronous daemon two adjacent out-nodes can enter
  together and then leave together, forever: the exact analogue of the
  matching counterexample, and the reason SIS's guards compare ids.
  (Section 5: centrally-solvable problems are synchronously solvable —
  but only via conversion; the raw central algorithm does not port.)

* :class:`LubyStyleMIS` breaks symmetry with per-round randomness
  instead of ids, in the spirit of Luby (1986): an out-node enters when
  undominated *and* it beats every undominated out-neighbour on the
  round's (variate, id) draw; of two adjacent in-nodes the smaller draw
  leaves.  Converges almost surely with O(log n)-ish expected rounds on
  bounded-degree graphs — the classical trade: faster than SIS's Θ(n)
  worst case, but only probabilistically and with per-round random bits
  on every beacon.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError
from repro.graphs.graph import Graph
from repro.graphs.properties import is_maximal_independent_set
from repro.types import NodeId


class _BitProtocol(Protocol[int]):
    """Shared plumbing for 0/1-state MIS protocols."""

    def initial_state(self, node: NodeId, graph: Graph) -> int:
        return 0

    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(2))

    def validate_state(self, node: NodeId, graph: Graph, state: int) -> None:
        if state not in (0, 1):
            raise InvalidConfigurationError(
                f"node {node}: state must be 0 or 1, got {state!r}"
            )

    def is_legitimate(self, graph: Graph, config: Mapping[NodeId, int]) -> bool:
        """Stability for these variants is plain MIS-ness: no node has
        both rules disabled outside an MIS."""
        in_set = {n for n in graph.nodes if config[n] == 1}
        return is_maximal_independent_set(graph, in_set)


class CentralDaemonMIS(_BitProtocol):
    """Id-free MIS for the central daemon.

    ``R1``: ``x(i)=0 ∧ ¬∃ j ∈ N(i): x(j)=1  →  x(i):=1``
    ``R2``: ``x(i)=1 ∧  ∃ j ∈ N(i): x(j)=1  →  x(i):=0``

    Every central-daemon execution stabilizes in at most ``2n`` moves
    (each R2 move is enabled only from an illegitimate start or after
    an adversary's interleaving; the potential |{i: rules disabled}|
    grows monotonically under any serial schedule).  Under the
    synchronous daemon it livelocks on any edge whose endpoints start
    ``0,0`` with no other in-set neighbours — see
    ``tests/test_mis_variants.py``.
    """

    name = "MIS-central"

    def __init__(self) -> None:
        self._rules = (
            Rule(
                "R1",
                guard=lambda v: v.state == 0
                and not v.any_neighbor(lambda j, s: s == 1),
                action=lambda v: 1,
                description="enter when undominated",
            ),
            Rule(
                "R2",
                guard=lambda v: v.state == 1
                and v.any_neighbor(lambda j, s: s == 1),
                action=lambda v: 0,
                description="leave on conflict",
            ),
        )

    def rules(self) -> Sequence[Rule[int]]:
        return self._rules


class LubyStyleMIS(_BitProtocol):
    """Randomized synchronous MIS with per-round (variate, id) draws.

    ``R1``: enter if out of the set, no in-set neighbour, and my draw
    beats the draw of every out-of-set neighbour.
    ``R2``: leave if in the set and some in-set neighbour beats my draw.

    Two adjacent nodes can never both enter in the same round (one draw
    beats the other), so independence violations never *arise*; initial
    violations are resolved by R2, where only the loser leaves, so an
    adjacent in-pair never leaves simultaneously either.

    Because the guards read the per-round draws, "nobody privileged this
    round" does not imply termination (everyone may simply have lost);
    :meth:`is_quiescent` therefore confirms termination structurally —
    both rules are unsatisfiable for every draw exactly when the in-set
    is a maximal independent set.
    """

    name = "MIS-luby"
    uses_randomness = True

    def __init__(self) -> None:
        self._rules = (
            Rule(
                "R1",
                guard=self._enter_guard,
                action=lambda v: 1,
                description="enter on winning draw",
            ),
            Rule(
                "R2",
                guard=self._leave_guard,
                action=lambda v: 0,
                description="leave on losing draw",
            ),
        )

    @staticmethod
    def _draw(view: View, j: NodeId | None = None):
        if j is None:
            return (view.rand, view.node)
        return (view.neighbor_rand[j], j)

    def _enter_guard(self, view: View) -> bool:
        if view.state != 0:
            return False
        if view.any_neighbor(lambda j, s: s == 1):
            return False
        mine = self._draw(view)
        return all(
            mine > self._draw(view, j)
            for j, s in view.neighbor_states.items()
            if s == 0
        )

    def _leave_guard(self, view: View) -> bool:
        if view.state != 1:
            return False
        mine = self._draw(view)
        return any(
            s == 1 and self._draw(view, j) > mine
            for j, s in view.neighbor_states.items()
        )

    def rules(self) -> Sequence[Rule[int]]:
        return self._rules

    def is_quiescent(self, graph: Graph, config: Mapping[NodeId, int]) -> bool:
        """Terminal iff the in-set is an MIS: then R1 fails on domination
        for every out-node and R2 fails on independence for every
        in-node, regardless of the draws."""
        return self.is_legitimate(graph, config)
