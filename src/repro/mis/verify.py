"""Verification helpers for MIS executions."""

from __future__ import annotations

from typing import Mapping

from repro.core.executor import Execution
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    greedy_mis_by_descending_id,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
)
from repro.types import NodeId


def independent_set_of(config: Mapping[NodeId, int]) -> frozenset[NodeId]:
    """The in-set nodes (``x(i) = 1``) of a bit configuration."""
    return frozenset(n for n, x in config.items() if x == 1)


def is_stable_configuration(graph: Graph, config: Mapping[NodeId, int]) -> bool:
    """SIS's fixpoint predicate: ``x(i)=1`` iff no larger in-set
    neighbour — equivalently, the set is the greedy MIS by descending
    id."""
    for i in graph.nodes:
        blocked = any(j > i and config[j] == 1 for j in graph.neighbors(i))
        if (config[i] == 1) == blocked:
            return False
    return True


def verify_execution(
    graph: Graph, execution: Execution, *, expect_greedy: bool = False
) -> frozenset[NodeId]:
    """Full post-run contract check for an MIS protocol run.

    Asserts stabilization, independence, domination (= maximality), and
    — when ``expect_greedy`` (Algorithm SIS) — that the set is exactly
    the canonical greedy MIS by descending id.  Returns the final set.
    """
    if not execution.stabilized:
        raise AssertionError(
            f"{execution.protocol_name} did not stabilize "
            f"({execution.rounds} rounds, {execution.moves} moves)"
        )
    in_set = independent_set_of(execution.final)
    if not is_independent_set(graph, in_set):
        raise AssertionError(f"final set is not independent: {sorted(in_set)}")
    if not is_dominating_set(graph, in_set):
        raise AssertionError(
            f"final independent set is not maximal (not dominating): {sorted(in_set)}"
        )
    assert is_maximal_independent_set(graph, in_set)
    if expect_greedy:
        canonical = greedy_mis_by_descending_id(graph)
        if in_set != canonical:
            raise AssertionError(
                f"SIS landed on {sorted(in_set)}, expected the canonical "
                f"greedy set {sorted(canonical)}"
            )
    return in_set
