"""Observability for protocol runs: telemetry, tracing, metrics, dashboards.

Four modules, all stdlib-only and all capability-gated so kernel
backends stay on their fast paths:

* :mod:`repro.observability.telemetry` — the per-run
  :class:`RunTelemetry` record every backend fills in (per-round moves
  by rule, Fig. 2 node-type census, phase wall-clocks, fault-recovery
  windows), its JSONL sink and the deterministic sweep aggregate
  :func:`merge_telemetry`;
* :mod:`repro.observability.tracing` — a zero-dependency span tree
  (:class:`Tracer`/:class:`Span`) threaded through the engine, the
  trial runner and the fault-campaign driver, exportable as Chrome
  ``trace_event`` JSON (``repro run --trace``, ``chrome://tracing`` /
  Perfetto);
* :mod:`repro.observability.metrics` — a process-local registry of
  counters/gauges/fixed-bucket histograms with Prometheus text
  exposition and JSON export, recorded deterministically in the parent
  from the results workers send back (``repro run --metrics``);
* :mod:`repro.observability.dash` — renders a telemetry JSONL file
  into a terminal summary and a self-contained static HTML report
  (``repro dash``).

Everything the old ``repro.observability`` module exported is
re-exported here unchanged; see docs/observability.md for the
walkthrough.
"""

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    exponential_buckets,
    record_failed_trial,
    record_run_result,
    use_registry,
)
from repro.observability.telemetry import (
    CENSUS_KEYS,
    RunTelemetry,
    TelemetryRecorder,
    TelemetrySink,
    census_of,
    merge_telemetry,
    wants_census,
)
from repro.observability.tracing import (
    Span,
    Tracer,
    chrome_trace,
    current_tracer,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    # telemetry
    "CENSUS_KEYS",
    "RunTelemetry",
    "TelemetryRecorder",
    "TelemetrySink",
    "census_of",
    "merge_telemetry",
    "wants_census",
    # tracing
    "Span",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
    # metrics
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "exponential_buckets",
    "record_failed_trial",
    "record_run_result",
    "use_registry",
]
