"""Render a telemetry JSONL file into a terminal summary and a
self-contained static HTML report (``repro dash``).

Input is whatever :class:`~repro.observability.TelemetrySink` wrote:
one JSON object per line, either a raw
:class:`~repro.observability.RunTelemetry` dict or the CLI's wrapper
``{"family": ..., "n": ..., "trial": ..., "telemetry": {...}}``.

The HTML report is one file with no external assets — inline CSS
(light and dark from ``prefers-color-scheme``), inline SVG charts and
a few lines of vanilla JS for hover tooltips — so it can be attached
to a CI run or mailed around.  It shows:

* the paper's Fig. 2 view — a stacked node-type census area chart per
  round, for the longest run that recorded a census;
* moves by rule per round, summed across runs;
* the per-phase wall-clock breakdown (setup / rounds / finalize);
* a fault-event recovery table for campaign runs.

Chart colors are the skill-validated categorical palette (adjacent-pair
CVD ΔE >= 8 in both modes); every chart also ships its data as a table,
so nothing is color-alone.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.telemetry import (
    CENSUS_KEYS,
    RunTelemetry,
    TelemetrySink,
    merge_telemetry,
)

__all__ = [
    "load_stream",
    "load_telemetry",
    "render_html",
    "render_stream_html",
    "summarize",
    "summarize_stream",
    "write_report",
]


# validated categorical palette (see docs/observability.md); slot order
# is the CVD-safety mechanism — assign by fixed position, never cycle
_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300")
_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500", "#d55181", "#008300")


def load_telemetry(path) -> List[Tuple[str, RunTelemetry]]:
    """``(label, telemetry)`` per record of a telemetry JSONL file.

    Unparseable lines are skipped (a killed or still-running job may
    truncate its last line mid-write); a file with no usable records
    raises ``ValueError`` with a diagnostic saying *why* — empty file
    vs. lines that exist but don't parse as telemetry — instead of a
    traceback from the first torn line.
    """
    out: List[Tuple[str, RunTelemetry]] = []
    for i, record in enumerate(TelemetrySink.read(path)):
        try:
            if "telemetry" in record:
                telemetry = RunTelemetry.from_dict(record["telemetry"])
                parts = [
                    f"{key}={record[key]}"
                    for key in ("family", "n", "trial")
                    if key in record
                ]
                label = " ".join(parts) or f"run {i}"
            else:
                telemetry = RunTelemetry.from_dict(record)
                label = f"run {i}"
        except Exception:
            continue
        out.append((label, telemetry))
    if not out:
        raise ValueError(_empty_telemetry_diagnostic(path))
    return out


def load_stream(path) -> Tuple[Optional[dict], List[dict]]:
    """``(meta, samples)`` from a ``repro stream --report`` JSONL file.

    Stream files interleave one ``{"stream_meta": {...}}`` summary line
    with ``{"stream": {...}}`` per-event sample lines.  Returns
    ``(None, [])`` when the file contains no stream records — the
    caller then falls back to telemetry parsing.
    """
    meta: Optional[dict] = None
    samples: List[dict] = []
    for record in TelemetrySink.read(path):
        if isinstance(record.get("stream_meta"), dict):
            meta = record["stream_meta"]
        elif isinstance(record.get("stream"), dict):
            samples.append(record["stream"])
    return meta, samples


def _empty_telemetry_diagnostic(path) -> str:
    """Why a telemetry file produced zero records, for humans."""
    import os

    try:
        size = os.path.getsize(str(path))
    except OSError:
        size = None
    if size == 0:
        return (
            f"telemetry file {path} is empty — no records were written "
            "yet (was the run started with --telemetry, or has the job "
            "produced its first trial?)"
        )
    try:
        with open(str(path), "r", encoding="utf-8") as handle:
            lines = sum(1 for line in handle if line.strip())
    except OSError:
        lines = "?"
    return (
        f"no usable telemetry records in {path}: {lines} non-blank "
        "line(s) present but none parsed as telemetry (file truncated "
        "mid-write, or not a telemetry JSONL?)"
    )


# ----------------------------------------------------------------------
# terminal summary
# ----------------------------------------------------------------------
def summarize(records: Sequence[Tuple[str, RunTelemetry]]) -> str:
    """Plain-text sweep summary for the terminal."""
    merged = merge_telemetry([t for _, t in records])
    protocols = sorted({t.protocol for _, t in records})
    backends = sorted({t.backend for _, t in records})
    lines = [
        f"runs: {merged['runs']}   protocols: {', '.join(protocols)}   "
        f"backends: {', '.join(backends)}",
        f"rounds: {merged['rounds_total']} total, {merged['rounds_max']} max"
        f"   moves: {merged['moves']}",
    ]
    if merged["moves_by_rule"]:
        by_rule = "  ".join(
            f"{rule}={count}"
            for rule, count in sorted(merged["moves_by_rule"].items())
        )
        lines.append(f"moves by rule: {by_rule}")
    if merged["timings"]:
        timing = "  ".join(
            f"{phase}={seconds * 1000.0:.1f}ms"
            for phase, seconds in sorted(merged["timings"].items())
        )
        lines.append(f"phase wall-clock (summed): {timing}")
    for kind, agg in sorted(merged["fault_events"].items()):
        radius = "-" if agg["radius_max"] is None else agg["radius_max"]
        lines.append(
            f"faults[{kind}]: {agg['recovered']}/{agg['events']} recovered, "
            f"{agg['recovery_rounds_total']} recovery rounds "
            f"(max {agg['recovery_rounds_max']}), max radius {radius}"
        )
    if merged["final_census"]:
        census = "  ".join(
            f"{key}={merged['final_census'][key]}"
            for key in CENSUS_KEYS
            if key in merged["final_census"]
        )
        lines.append(f"final census (summed): {census}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SVG helpers
# ----------------------------------------------------------------------
_W, _H = 760, 240
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 46, 10, 8, 26


def _axis(
    max_y: float, rounds: int, y_label: str, x_label: str = "round"
) -> List[str]:
    parts = []
    plot_h = _H - _PAD_T - _PAD_B
    plot_w = _W - _PAD_L - _PAD_R
    for frac in (0.0, 0.5, 1.0):
        y = _PAD_T + plot_h * (1.0 - frac)
        value = max_y * frac
        text = f"{value:g}" if value < 1000 else f"{value / 1000.0:g}k"
        parts.append(
            f'<line class="grid" x1="{_PAD_L}" y1="{y:.1f}" '
            f'x2="{_W - _PAD_R}" y2="{y:.1f}"/>'
            f'<text class="tick" x="{_PAD_L - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{text}</text>'
        )
    last = max(rounds - 1, 1)
    for r in range(0, rounds, max(1, rounds // 8 or 1)):
        x = _PAD_L + plot_w * (r / last)
        parts.append(
            f'<text class="tick" x="{x:.1f}" y="{_H - 8}" '
            f'text-anchor="middle">{r}</text>'
        )
    parts.append(
        f'<text class="tick" x="{_PAD_L}" y="{_H - 8}">&#8203;</text>'
        f'<text class="axis-label" x="{_W / 2:.0f}" y="{_H - 8}" '
        f'text-anchor="middle" dy="8">{html.escape(x_label)}</text>'
        f'<text class="axis-label" transform="rotate(-90)" '
        f'x="{-(_H / 2):.0f}" y="12" text-anchor="middle">{y_label}</text>'
    )
    return parts


def _stacked_chart(
    chart_id: str,
    series: Dict[str, List[float]],
    *,
    y_label: str,
    area: bool,
    x_label: str = "round",
) -> str:
    """Stacked area (``area=True``) or stacked per-round bars, with a
    hover tooltip fed by the embedded JSON payload."""
    names = list(series)
    rounds = max((len(v) for v in series.values()), default=0)
    totals = [
        sum(series[name][t] if t < len(series[name]) else 0 for name in names)
        for t in range(rounds)
    ]
    max_y = max(totals, default=0) or 1
    plot_h = _H - _PAD_T - _PAD_B
    plot_w = _W - _PAD_L - _PAD_R

    def x_of(t: int) -> float:
        return _PAD_L + plot_w * (t / max(rounds - 1, 1))

    def y_of(v: float) -> float:
        return _PAD_T + plot_h * (1.0 - v / max_y)

    parts = _axis(max_y, rounds, y_label, x_label)
    cumulative = [0.0] * rounds
    if area:
        for k, name in enumerate(names):
            lower = list(cumulative)
            for t in range(rounds):
                cumulative[t] += (
                    series[name][t] if t < len(series[name]) else 0
                )
            top = " ".join(
                f"{x_of(t):.1f},{y_of(cumulative[t]):.1f}"
                for t in range(rounds)
            )
            bottom = " ".join(
                f"{x_of(t):.1f},{y_of(lower[t]):.1f}"
                for t in reversed(range(rounds))
            )
            # the 2px surface-colored stroke is the spacer between bands
            parts.append(
                f'<polygon class="s{k} band" points="{top} {bottom}"/>'
            )
    else:
        bar_w = max(2.0, plot_w / max(rounds, 1) - 2.0)
        for k, name in enumerate(names):
            for t in range(rounds):
                v = series[name][t] if t < len(series[name]) else 0
                if not v:
                    continue
                y1 = y_of(cumulative[t] + v)
                h = y_of(cumulative[t]) - y1
                cumulative[t] += v
                x = x_of(t) - bar_w / 2 if rounds > 1 else _PAD_L
                parts.append(
                    f'<rect class="s{k} band" x="{x:.1f}" y="{y1:.1f}" '
                    f'width="{bar_w:.1f}" height="{max(h, 0.5):.1f}" rx="1"/>'
                )
    payload = html.escape(
        json.dumps(
            {
                "names": names,
                "series": [series[n] for n in names],
                "x": x_label,
            },
            separators=(",", ":"),
        ),
        quote=True,
    )
    legend = "".join(
        f'<span class="key"><span class="swatch s{k}"></span>'
        f"{html.escape(name)}</span>"
        for k, name in enumerate(names)
    )
    body = "".join(parts)
    return (
        f'<div class="legend">{legend}</div>'
        f'<div class="plot" data-chart="{chart_id}" data-series="{payload}">'
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{html.escape(y_label)} per round">{body}'
        f'<line class="crosshair" y1="{_PAD_T}" y2="{_H - _PAD_B}" '
        f'x1="-10" x2="-10"/></svg>'
        f'<div class="tooltip" hidden></div></div>'
    )


def _series_table(series: Dict[str, List[float]]) -> str:
    names = list(series)
    rounds = max((len(v) for v in series.values()), default=0)
    head = "".join(f"<th>{html.escape(n)}</th>" for n in names)
    rows = []
    for t in range(rounds):
        cells = "".join(
            f"<td>{series[n][t] if t < len(series[n]) else ''}</td>"
            for n in names
        )
        rows.append(f"<tr><th>{t}</th>{cells}</tr>")
    return (
        "<details><summary>data table</summary>"
        f'<table><thead><tr><th>round</th>{head}</tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


def _timing_chart(timings: Dict[str, float]) -> str:
    """Horizontal single-hue bars — one measure (seconds), so one hue
    with direct value labels, no legend."""
    phases = [p for p in ("setup", "rounds", "finalize") if p in timings]
    phases += sorted(set(timings) - set(phases))
    max_v = max(timings.values(), default=0.0) or 1.0
    row_h, gap, label_w = 26, 8, 70
    width = 560
    height = len(phases) * (row_h + gap)
    parts = []
    for i, phase in enumerate(phases):
        v = timings[phase]
        y = i * (row_h + gap)
        w = max(2.0, (width - label_w - 90) * (v / max_v))
        parts.append(
            f'<text class="tick" x="{label_w - 8}" y="{y + row_h - 8}" '
            f'text-anchor="end">{html.escape(phase)}</text>'
            f'<rect class="timing" x="{label_w}" y="{y}" width="{w:.1f}" '
            f'height="{row_h}" rx="4"/>'
            f'<text class="value" x="{label_w + w + 6:.1f}" '
            f'y="{y + row_h - 8}">{v * 1000.0:.1f} ms</text>'
        )
    return (
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="phase wall-clock">{"".join(parts)}</svg>'
    )


def _fault_table(records: Sequence[Tuple[str, RunTelemetry]]) -> str:
    rows = []
    for label, telemetry in records:
        for event in telemetry.fault_events or ():
            radius = event.get("radius")
            rows.append(
                "<tr>"
                + "".join(
                    f"<td>{html.escape(str(v))}</td>"
                    for v in (
                        label,
                        event.get("kind"),
                        event.get("round"),
                        len(event.get("sites", ())),
                        "yes" if event.get("recovered") else "no",
                        event.get("recovery_rounds"),
                        event.get("moves"),
                        event.get("touched"),
                        "-" if radius is None else radius,
                    )
                )
                + "</tr>"
            )
    if not rows:
        return ""
    head = "".join(
        f"<th>{h}</th>"
        for h in (
            "run",
            "kind",
            "round",
            "sites",
            "recovered",
            "recovery rounds",
            "moves",
            "touched",
            "radius",
        )
    )
    return (
        "<section><h2>Fault recovery</h2>"
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></section>"
    )


_STYLE = """
:root { color-scheme: light dark; }
body {
  margin: 2rem auto; max-width: 860px; padding: 0 1rem;
  background: #fcfcfb; color: #0b0b0b;
  font: 14px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin: 1.6rem 0 .4rem; }
.meta, .tick, .axis-label { color: #52514e; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 1rem 0; }
.tile { border: 1px solid #e4e3df; border-radius: 8px; padding: 8px 14px; }
.tile b { display: block; font-size: 1.25rem; }
.tile span { color: #52514e; font-size: .82rem; }
svg { width: 100%; height: auto; display: block; }
.grid { stroke: #e4e3df; stroke-width: 1; }
.tick { font-size: 11px; fill: #52514e; }
.axis-label { font-size: 11px; fill: #52514e; }
.value { font-size: 11px; fill: #0b0b0b; }
.band { stroke: #fcfcfb; stroke-width: 2; }
.timing { fill: #2a78d6; }
.s0 { fill: #2a78d6; } .s1 { fill: #eb6834; } .s2 { fill: #1baf7a; }
.s3 { fill: #eda100; } .s4 { fill: #e87ba4; } .s5 { fill: #008300; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: .3rem 0; }
.key { display: inline-flex; align-items: center; gap: 5px; font-size: .82rem; }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.plot { position: relative; }
.crosshair { stroke: #52514e; stroke-width: 1; stroke-dasharray: 3 3; }
.tooltip {
  position: absolute; pointer-events: none; background: #0b0b0b; color: #fff;
  border-radius: 6px; padding: 6px 9px; font-size: .78rem; line-height: 1.45;
  transform: translate(-50%, -100%); white-space: nowrap; z-index: 2;
}
table { border-collapse: collapse; margin: .4rem 0; font-size: .85rem; }
th, td { border: 1px solid #e4e3df; padding: 3px 9px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
details summary { cursor: pointer; color: #52514e; font-size: .85rem; }
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  .meta, .tick, .axis-label { color: #c3c2b7; }
  .tick, .axis-label { fill: #c3c2b7; }
  .value { fill: #ffffff; }
  .tile, th, td { border-color: #383835; }
  .tile span { color: #c3c2b7; }
  .grid { stroke: #383835; }
  .band { stroke: #1a1a19; }
  .timing { fill: #3987e5; }
  .s0 { fill: #3987e5; } .s1 { fill: #d95926; } .s2 { fill: #199e70; }
  .s3 { fill: #c98500; } .s4 { fill: #d55181; } .s5 { fill: #008300; }
  .crosshair { stroke: #c3c2b7; }
  .tooltip { background: #fcfcfb; color: #0b0b0b; }
  details summary { color: #c3c2b7; }
}
"""

# nearest-round crosshair + tooltip for the per-round charts; the
# geometry constants mirror the Python SVG builder
_SCRIPT = """
(function () {
  var PAD_L = %(pad_l)d, PAD_R = %(pad_r)d, W = %(w)d;
  document.querySelectorAll('.plot').forEach(function (plot) {
    var data = JSON.parse(plot.dataset.series);
    var rounds = Math.max.apply(null, data.series.map(function (s) {
      return s.length;
    }).concat([0]));
    if (!rounds) return;
    var svg = plot.querySelector('svg');
    var cross = plot.querySelector('.crosshair');
    var tip = plot.querySelector('.tooltip');
    svg.addEventListener('mousemove', function (ev) {
      var box = svg.getBoundingClientRect();
      var fx = (ev.clientX - box.left) / box.width * W;
      var frac = (fx - PAD_L) / (W - PAD_L - PAD_R);
      var t = Math.round(frac * (rounds - 1));
      if (t < 0 || t >= rounds) { tip.hidden = true; return; }
      var x = PAD_L + (W - PAD_L - PAD_R) * (t / Math.max(rounds - 1, 1));
      cross.setAttribute('x1', x); cross.setAttribute('x2', x);
      var lines = [(data.x || 'round') + ' ' + t];
      data.names.forEach(function (name, k) {
        var v = data.series[k][t];
        if (v !== undefined) lines.push(name + ': ' + v);
      });
      tip.innerHTML = lines.join('<br>');
      tip.style.left = (x / W * box.width) + 'px';
      tip.style.top = '0px';
      tip.hidden = false;
    });
    svg.addEventListener('mouseleave', function () {
      tip.hidden = true;
      cross.setAttribute('x1', -10); cross.setAttribute('x2', -10);
    });
  });
})();
""" % {"pad_l": _PAD_L, "pad_r": _PAD_R, "w": _W}


def summarize_stream(meta: Optional[dict], samples: Sequence[dict]) -> str:
    """Plain-text SLO summary of a stream report for the terminal."""
    meta = meta or {}
    events = meta.get("events", len(samples))
    recovered = meta.get(
        "recovered", sum(1 for s in samples if s.get("recovered"))
    )
    lines = [
        f"stream: {meta.get('protocol', '?')} on n={meta.get('n', '?')} "
        f"[{meta.get('backend', '?')}]   events: {events}   "
        f"rounds: {meta.get('rounds', '?')}",
        f"recovered: {recovered}/{events}   "
        f"p50/p99 re-stabilization: {meta.get('p50_rounds', '-')}/"
        f"{meta.get('p99_rounds', '-')} rounds   "
        f"radius max: {meta.get('radius_max', '-')}",
    ]
    eps = meta.get("events_per_sec")
    if eps:
        lines.append(f"throughput: {eps:.1f} events/s")
    return "\n".join(lines)


def _stream_sample_table(samples: Sequence[dict]) -> str:
    rows = []
    for s in samples:
        radius = s.get("radius")
        rows.append(
            "<tr>"
            + "".join(
                f"<td>{html.escape(str(v))}</td>"
                for v in (
                    s.get("index"),
                    s.get("kind"),
                    s.get("round"),
                    s.get("sites"),
                    "yes" if s.get("recovered") else "no",
                    s.get("rounds"),
                    s.get("moves"),
                    s.get("touched"),
                    "-" if radius is None else radius,
                )
            )
            + "</tr>"
        )
    head = "".join(
        f"<th>{h}</th>"
        for h in (
            "event",
            "kind",
            "round",
            "sites",
            "recovered",
            "recovery rounds",
            "moves",
            "touched",
            "radius",
        )
    )
    return (
        "<details><summary>per-event samples</summary>"
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


def render_stream_html(
    meta: Optional[dict],
    samples: Sequence[dict],
    *,
    title: str = "repro stream",
    source: Optional[str] = None,
) -> str:
    """Self-contained HTML report for a streaming-churn session."""
    meta = meta or {}
    sections: List[str] = []
    events = meta.get("events", len(samples))
    recovered = meta.get(
        "recovered", sum(1 for s in samples if s.get("recovered"))
    )
    tiles = [
        ("events", events),
        ("recovered", recovered),
        ("rounds", meta.get("rounds", "-")),
        ("p50 rounds", meta.get("p50_rounds", "-")),
        ("p99 rounds", meta.get("p99_rounds", "-")),
        ("radius max", meta.get("radius_max", "-")),
    ]
    eps = meta.get("events_per_sec")
    if eps:
        tiles.append(("events/s", f"{eps:.0f}"))
    sections.append(
        '<div class="tiles">'
        + "".join(
            f'<div class="tile"><b>{html.escape(str(value))}</b>'
            f"<span>{html.escape(str(name))}</span></div>"
            for name, value in tiles
        )
        + "</div>"
    )

    if samples:
        latency = {
            "recovery rounds": [float(s.get("rounds", 0)) for s in samples],
        }
        sections.append(
            "<section><h2>Re-stabilization latency per event</h2>"
            + _stacked_chart(
                "stream-rounds",
                latency,
                y_label="rounds",
                area=False,
                x_label="event",
            )
            + _series_table(latency)
            + "</section>"
        )
        spread = {
            "touched": [float(s.get("touched", 0)) for s in samples],
            "radius": [float(s.get("radius") or 0) for s in samples],
        }
        sections.append(
            "<section><h2>Blast radius per event</h2>"
            + _stacked_chart(
                "stream-radius",
                spread,
                y_label="nodes / hops",
                area=False,
                x_label="event",
            )
            + _series_table(spread)
            + "</section>"
        )
        sections.append(
            "<section><h2>Events</h2>" + _stream_sample_table(samples)
            + "</section>"
        )

    head_meta = "" if source is None else (
        f'<p class="meta">source: {html.escape(str(source))}</p>'
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>{head_meta}"
        + "".join(sections)
        + f"<script>{_SCRIPT}</script></body></html>"
    )


def render_html(
    records: Sequence[Tuple[str, RunTelemetry]],
    *,
    title: str = "repro dash",
    source: Optional[str] = None,
) -> str:
    """The full self-contained HTML report."""
    merged = merge_telemetry([t for _, t in records])
    sections: List[str] = []

    tiles = [
        ("runs", merged["runs"]),
        ("rounds (max)", merged["rounds_max"]),
        ("rounds (total)", merged["rounds_total"]),
        ("moves", merged["moves"]),
    ]
    fault_total = sum(a["events"] for a in merged["fault_events"].values())
    if fault_total:
        tiles.append(("fault events", fault_total))
    sections.append(
        '<div class="tiles">'
        + "".join(
            f'<div class="tile"><b>{value}</b><span>{name}</span></div>'
            for name, value in tiles
        )
        + "</div>"
    )

    census_runs = [
        (label, t) for label, t in records if t.node_type_census
    ]
    if census_runs:
        label, telemetry = max(census_runs, key=lambda lt: lt[1].rounds)
        census = telemetry.node_type_census
        series = {
            key: [entry.get(key, 0) for entry in census]
            for key in CENSUS_KEYS
            if any(entry.get(key, 0) for entry in census)
        }
        sections.append(
            "<section><h2>Node-type census per round (Fig. 2)</h2>"
            f'<p class="meta">longest censused run: {html.escape(label)}, '
            f"{telemetry.rounds} rounds</p>"
            + _stacked_chart("census", series, y_label="nodes", area=True)
            + _series_table(series)
            + "</section>"
        )

    rules = sorted(merged["moves_by_rule"])
    if rules:
        rounds_max = merged["rounds_max"]
        moves_series: Dict[str, List[float]] = {
            rule: [0.0] * rounds_max for rule in rules
        }
        for _, telemetry in records:
            for t, entry in enumerate(telemetry.per_round_moves):
                for rule, count in entry.items():
                    if count and rule in moves_series:
                        moves_series[rule][t] += count
        sections.append(
            "<section><h2>Moves by rule per round (all runs)</h2>"
            + _stacked_chart("moves", moves_series, y_label="moves", area=False)
            + _series_table(moves_series)
            + "</section>"
        )

    if merged["timings"]:
        sections.append(
            "<section><h2>Phase wall-clock (summed across runs)</h2>"
            + _timing_chart(merged["timings"])
            + "</section>"
        )

    sections.append(_fault_table(records))

    meta = "" if source is None else (
        f'<p class="meta">source: {html.escape(str(source))}</p>'
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>{meta}"
        + "".join(sections)
        + f"<script>{_SCRIPT}</script></body></html>"
    )


def write_report(
    telemetry_path, output_path, *, title: Optional[str] = None
) -> str:
    """Load ``telemetry_path``, write the HTML report to
    ``output_path`` and return the terminal summary text.

    Stream-report JSONL files (``repro stream --report``) are detected
    by their ``stream``/``stream_meta`` records and rendered as a
    streaming SLO report; anything else goes through telemetry parsing.
    """
    meta, samples = load_stream(telemetry_path)
    if meta is not None or samples:
        text = render_stream_html(
            meta,
            samples,
            title=title or f"repro stream — {telemetry_path}",
            source=telemetry_path,
        )
        with open(str(output_path), "w", encoding="utf-8") as handle:
            handle.write(text)
        return summarize_stream(meta, samples)
    records = load_telemetry(telemetry_path)
    text = render_html(
        records,
        title=title or f"repro dash — {telemetry_path}",
        source=telemetry_path,
    )
    with open(str(output_path), "w", encoding="utf-8") as handle:
        handle.write(text)
    return summarize(records)
