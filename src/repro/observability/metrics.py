"""Process-local metrics registry with deterministic merges.

Counters, gauges and histograms keyed by ``(family name, sorted label
pairs)``, exportable as Prometheus text exposition and as JSON.
Histograms use *fixed* exponential buckets, so merging two registries
(or re-running a sweep at a different ``--jobs``) is deterministic:
every aggregate is an order-independent sum or maximum.

The sweep metrics are recorded **in the parent process**, in spec
order, from the results the workers send back — the counts ride the
existing trial pickling path (``RunResult`` summary fields and
telemetry), so worker registries never need to be shipped or merged
and the counter-valued families are byte-identical for every ``jobs``
value.  The protocol-accounting families (``repro_rounds_total``,
``repro_moves_total``, the fault-recovery counters) deliberately carry
no ``backend`` label: they are byte-identical across backends as well,
pinned in ``tests/test_engine_equivalence.py``.  Wall-clock families
(the latency histogram) and the operational counters (retries,
timeouts, worker deaths) describe how the sweep actually ran and are
excluded from those pins.

Install a registry ambiently with :func:`use_registry`; the trial
runner records into :func:`current_registry` and is a no-op when none
is installed.  The CLI's ``repro run --metrics[=PATH]`` wraps an
invocation and writes both exports.
"""

from __future__ import annotations

import contextlib
import json
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "exponential_buckets",
    "record_failed_trial",
    "record_run_result",
    "use_registry",
]

LabelKey = Tuple[Tuple[str, str], ...]


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` exponentially growing upper bounds starting at
    ``start`` — fixed at family creation so merges are deterministic."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    out = []
    value = start
    for _ in range(count):
        out.append(value)
        value *= factor
    return tuple(out)


#: Default latency buckets: 0.5 ms .. ~16 s, doubling.
DEFAULT_BUCKETS = exponential_buckets(0.0005, 2.0, 16)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: a kind, help text, and labelled samples."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets: Tuple[float, ...] = (
            tuple(float(b) for b in buckets) if buckets is not None else ()
        )
        # counter/gauge: key -> float; histogram: key -> {count,sum,buckets}
        self.samples: Dict[LabelKey, Any] = {}


class Counter:
    """Monotonically increasing sum."""

    def __init__(self, family: _Family) -> None:
        self._family = family

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._family.samples[key] = self._family.samples.get(key, 0) + amount


class Gauge:
    """Last-written value; merges take the maximum (deterministic)."""

    def __init__(self, family: _Family) -> None:
        self._family = family

    def set(self, value: float, **labels: Any) -> None:
        self._family.samples[_label_key(labels)] = value


class Histogram:
    """Fixed-bucket histogram (cumulative counts at export time)."""

    def __init__(self, family: _Family) -> None:
        self._family = family

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        sample = self._family.samples.get(key)
        if sample is None:
            sample = {
                "count": 0,
                "sum": 0.0,
                "buckets": [0] * len(self._family.buckets),
            }
            self._family.samples[key] = sample
        sample["count"] += 1
        sample["sum"] += float(value)
        for i, bound in enumerate(self._family.buckets):
            if value <= bound:
                sample["buckets"][i] += 1
                break  # non-cumulative in storage; cumulated on export


class MetricsRegistry:
    """A set of metric families; see the module docstring."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return Counter(self._family(name, "counter", help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return Gauge(self._family(name, "gauge", help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return Histogram(self._family(name, "histogram", help, buckets))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _selected(self, kinds: Optional[Sequence[str]]) -> Iterator[_Family]:
        for name in sorted(self._families):
            family = self._families[name]
            if kinds is None or family.kind in kinds:
                yield family

    def to_dict(
        self, kinds: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """Deterministic JSON-safe export: families sorted by name,
        samples by label pairs.  ``kinds=("counter",)`` restricts to
        the deterministic counter families."""
        out: Dict[str, Any] = {}
        for family in self._selected(kinds):
            samples = []
            for key in sorted(family.samples):
                value = family.samples[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["count"] = value["count"]
                    entry["sum"] = value["sum"]
                    entry["buckets"] = list(value["buckets"])
                else:
                    entry["value"] = value
                samples.append(entry)
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                **(
                    {"bucket_bounds": list(family.buckets)}
                    if family.kind == "histogram"
                    else {}
                ),
                "samples": samples,
            }
        return out

    def to_json(self, kinds: Optional[Sequence[str]] = None) -> str:
        return json.dumps(self.to_dict(kinds), separators=(",", ":"))

    def exposition(self, kinds: Optional[Sequence[str]] = None) -> str:
        """Prometheus text exposition format (v0.0.4), deterministic:
        families sorted by name, samples by label pairs."""
        lines: List[str] = []
        for family in self._selected(kinds):
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.samples):
                labels = ",".join(
                    f'{name}="{_escape(value)}"' for name, value in key
                )
                value = family.samples[key]
                if family.kind != "histogram":
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{family.name}{suffix} {_fmt(value)}")
                    continue
                cumulative = 0
                for bound, count in zip(family.buckets, value["buckets"]):
                    cumulative += count
                    le = ",".join(filter(None, [labels, f'le="{_fmt(bound)}"']))
                    lines.append(
                        f"{family.name}_bucket{{{le}}} {cumulative}"
                    )
                le = ",".join(filter(None, [labels, 'le="+Inf"']))
                lines.append(f"{family.name}_bucket{{{le}}} {value['count']}")
                suffix = f"{{{labels}}}" if labels else ""
                lines.append(
                    f"{family.name}_sum{suffix} {_fmt(value['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{suffix} {value['count']}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry, deterministically:
        counters and histograms add (bucket bounds must agree), gauges
        take the maximum.  Returns ``self``."""
        for name, theirs in sorted(other._families.items()):
            mine = self._family(name, theirs.kind, theirs.help, theirs.buckets)
            if theirs.kind == "histogram" and mine.buckets != theirs.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ; "
                    "merges require identical fixed buckets"
                )
            for key, value in theirs.samples.items():
                if theirs.kind == "histogram":
                    sample = mine.samples.setdefault(
                        key,
                        {
                            "count": 0,
                            "sum": 0.0,
                            "buckets": [0] * len(mine.buckets),
                        },
                    )
                    sample["count"] += value["count"]
                    sample["sum"] += value["sum"]
                    for i, count in enumerate(value["buckets"]):
                        sample["buckets"][i] += count
                elif theirs.kind == "gauge":
                    mine.samples[key] = max(
                        mine.samples.get(key, value), value
                    )
                else:
                    mine.samples[key] = mine.samples.get(key, 0) + value
        return self


# ----------------------------------------------------------------------
# the ambient registry
# ----------------------------------------------------------------------
_CURRENT: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_metrics", default=None
)


def current_registry() -> Optional[MetricsRegistry]:
    """The ambiently installed registry, or ``None`` (metrics off)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_registry(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Install ``registry`` as the ambient registry for the block."""
    token = _CURRENT.set(registry)
    try:
        yield registry
    finally:
        _CURRENT.reset(token)


# ----------------------------------------------------------------------
# the built-in sweep instrumentation
# ----------------------------------------------------------------------
def record_run_result(registry: MetricsRegistry, result) -> None:
    """Fold one completed run into the sweep metrics.

    Called by the trial runner in the parent, in spec order, over the
    :class:`~repro.engine.result.RunResult` records the workers send
    back — the deterministic half of the instrumentation.
    """
    protocol = result.protocol_name
    labels = dict(
        protocol=protocol, daemon=result.daemon, backend=result.backend
    )
    registry.counter(
        "repro_runs_total", "Protocol runs completed, per backend"
    ).inc(**labels)
    if result.stabilized:
        registry.counter(
            "repro_runs_stabilized_total",
            "Runs that reached a legitimate fixpoint within budget",
        ).inc(**labels)
    registry.counter(
        "repro_rounds_total",
        "Daemon rounds elapsed (backend-independent accounting)",
    ).inc(result.rounds, protocol=protocol, daemon=result.daemon)
    moves = registry.counter(
        "repro_moves_total",
        "Rule firings by rule (backend-independent accounting)",
    )
    for rule, count in sorted(result.moves_by_rule.items()):
        if count:
            moves.inc(count, protocol=protocol, rule=rule)
    telemetry = result.telemetry
    for event in (telemetry.fault_events if telemetry else None) or ():
        kind = str(event["kind"])
        registry.counter(
            "repro_fault_events_total", "Fault events applied, by kind"
        ).inc(protocol=protocol, kind=kind)
        if event["recovered"]:
            registry.counter(
                "repro_fault_recovered_total",
                "Fault events whose recovery window re-stabilized",
            ).inc(protocol=protocol, kind=kind)
        registry.counter(
            "repro_fault_recovery_rounds_total",
            "Rounds spent in fault recovery windows, by kind",
        ).inc(int(event["recovery_rounds"]), protocol=protocol, kind=kind)
    if result.elapsed is not None:
        registry.histogram(
            "repro_trial_latency_seconds",
            "Per-trial wall clock of the backend call, as stamped by "
            "the engine in the executing process",
        ).observe(
            result.elapsed,
            protocol=protocol,
            backend=result.backend,
        )
    if result.backend != "reference":
        # kernel throughput accounting (backend-labelled on purpose:
        # wall-clock derived, so excluded from the cross-jobs metrics
        # determinism pins like every other backend-labelled family)
        kernel_labels = dict(protocol=protocol, backend=result.backend)
        registry.counter(
            "repro_kernel_rounds_total",
            "Daemon rounds stepped by kernel backends",
        ).inc(result.rounds, **kernel_labels)
        if result.elapsed:
            registry.gauge(
                "repro_kernel_rounds_per_second",
                "Most recent kernel round throughput (rounds / elapsed "
                "wall clock of the backend call)",
            ).set(result.rounds / result.elapsed, **kernel_labels)


def record_failed_trial(registry: MetricsRegistry, failed) -> None:
    """Fold one :class:`~repro.parallel.FailedTrial` into the sweep
    metrics (the operational, non-deterministic half)."""
    registry.counter(
        "repro_trial_failures_total",
        "Trials that exhausted their attempts, by final error type",
    ).inc(error_type=failed.error_type)
    if failed.timed_out:
        registry.counter(
            "repro_trial_timeouts_total",
            "Trials whose final attempt hit the wall-clock timeout",
        ).inc()
    if failed.attempts > 1:
        registry.counter(
            "repro_trial_retries_total", "Extra attempts made for trials"
        ).inc(failed.attempts - 1)
