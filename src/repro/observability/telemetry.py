"""Backend-independent run telemetry (the paper's accounting, live).

Every claim the paper makes is an *accounting* claim — Theorem 1's
``n + 1`` round bound, Lemmas 9–10's matching-growth rate, the Fig. 2–3
node-type census — yet monitors (the reference engine's observation
hook) force a run off the fast path: no kernel backend can call
per-round Python callbacks.  This module provides the cheap
alternative: every backend that advertises the ``"telemetry"``
capability fills in the same :class:`RunTelemetry` record — per-round
moves by rule, the active-set size, the Fig. 2 node-type census for
pointer-matching protocols, and wall-clock per phase — and attaches it
to the :class:`~repro.engine.result.RunResult` it returns.

The *counter* fields (``rounds``, ``per_round_moves``,
``node_type_census``) are byte-identical across backends — pinned by
``tests/test_engine_equivalence.py`` alongside the summary fields.  The
*diagnostic* fields (``active_set_sizes``, ``timings``) describe how
the producing backend ran and legitimately differ between backends.

Request telemetry anywhere a run is configured::

    result = engine.run("smm", graph, cfg, telemetry=True)
    result.telemetry.node_type_census[0]   # Fig. 2 counts at t=0
    result.telemetry.per_round_moves       # one {rule: count} per round

and from the CLI with ``repro run E1 --telemetry[=PATH]``, which
streams one JSON line per trial through :class:`TelemetrySink`.

This module is import-light on purpose (stdlib only); the census
helpers import :mod:`repro.matching.classification` lazily so the
executors can depend on it without cycles.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "CENSUS_KEYS",
    "RunTelemetry",
    "TelemetryRecorder",
    "TelemetrySink",
    "census_of",
    "merge_telemetry",
    "wants_census",
]

#: Fig. 2 node-type keys, in :class:`repro.matching.classification.NodeType`
#: order — the key order every census dict uses.
CENSUS_KEYS = ("M", "A0", "A1", "PA", "PM", "PP")


@dataclass
class RunTelemetry:
    """Per-run telemetry record, identical in shape for every backend.

    Attributes
    ----------
    protocol / daemon / backend:
        What ran, under which daemon, produced by which backend.
    rounds:
        Daemon ticks recorded — always ``len(per_round_moves)`` and
        equal to the owning result's ``rounds``.
    moves / moves_by_rule:
        Totals over the run (redundant with the owning
        :class:`~repro.engine.result.RunResult`, repeated here so a
        serialized telemetry line is self-contained).
    per_round_moves:
        ``per_round_moves[t][rule]`` is the number of nodes that fired
        ``rule`` in round ``t + 1``; every rule name appears in every
        entry (zero-move rounds of randomized protocols are all-zero
        entries).  Byte-identical across backends.
    active_set_sizes:
        ``active_set_sizes[t]`` is the number of nodes the backend
        re-evaluated in round ``t + 1`` — a *diagnostic* of the
        producing backend's stepping strategy (full scans report ``n``),
        not a protocol property; backends legitimately differ here.
    node_type_census:
        For pointer-matching protocols: ``node_type_census[t]`` is the
        Fig. 2 histogram (keys :data:`CENSUS_KEYS`) of the configuration
        after round ``t``, with ``node_type_census[0]`` the initial
        configuration — so its length is ``rounds + 1`` and the last
        entry describes the final configuration.  ``None`` for
        protocols without the Fig. 2 taxonomy (SIS, Luby, ...).
        Byte-identical across backends.
    timings:
        Wall-clock seconds per phase: ``"setup"`` (configuration
        resolution, kernel construction), ``"rounds"`` (the stepping
        loop) and ``"finalize"`` (decode, legitimacy check).
        Non-deterministic by nature; never compared.
    fault_events:
        For fault-campaign runs (:mod:`repro.resilience`): one record
        per applied :class:`~repro.resilience.FaultEvent`, with the
        event's kind, the round it fired at, its fault sites, and the
        recovery metrics measured over the window up to the next event
        (``recovered``, ``recovery_rounds``, ``moves``,
        ``moves_by_rule``, ``touched``, ``radius``).  ``None`` for
        ordinary runs.  Counter fields are byte-identical across
        backends (pinned alongside the other counters).
    """

    protocol: str
    daemon: str
    backend: str
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    per_round_moves: List[Dict[str, int]]
    active_set_sizes: List[int]
    node_type_census: Optional[List[Dict[str, int]]] = None
    timings: Dict[str, float] = field(default_factory=dict)
    fault_events: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dictionary (round-trips through
        :meth:`from_dict`)."""
        return {
            "protocol": self.protocol,
            "daemon": self.daemon,
            "backend": self.backend,
            "rounds": self.rounds,
            "moves": self.moves,
            "moves_by_rule": dict(self.moves_by_rule),
            "per_round_moves": [dict(e) for e in self.per_round_moves],
            "active_set_sizes": list(self.active_set_sizes),
            "node_type_census": (
                [dict(e) for e in self.node_type_census]
                if self.node_type_census is not None
                else None
            ),
            "timings": dict(self.timings),
            "fault_events": (
                [dict(e) for e in self.fault_events]
                if self.fault_events is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunTelemetry":
        return cls(
            protocol=str(data["protocol"]),
            daemon=str(data["daemon"]),
            backend=str(data["backend"]),
            rounds=int(data["rounds"]),
            moves=int(data["moves"]),
            moves_by_rule={
                str(k): int(v) for k, v in data["moves_by_rule"].items()
            },
            per_round_moves=[
                {str(k): int(v) for k, v in entry.items()}
                for entry in data["per_round_moves"]
            ],
            active_set_sizes=[int(v) for v in data["active_set_sizes"]],
            node_type_census=(
                [
                    {str(k): int(v) for k, v in entry.items()}
                    for entry in data["node_type_census"]
                ]
                if data.get("node_type_census") is not None
                else None
            ),
            timings={
                str(k): float(v) for k, v in data.get("timings", {}).items()
            },
            fault_events=(
                [dict(e) for e in data["fault_events"]]
                if data.get("fault_events") is not None
                else None
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunTelemetry":
        return cls.from_dict(json.loads(text))


class TelemetryRecorder:
    """Accumulates one run's telemetry as the backend steps it.

    Deliberately dumb: the backend computes per-round counts and census
    dicts in whatever representation is cheap for it (Python dicts for
    the reference engine, mask sums for the kernels) and feeds them in;
    the recorder only accumulates and keeps phase wall-clocks.

    Protocol: construct at the start of ``setup``; optionally
    :meth:`record_census` the initial configuration; :meth:`begin_rounds`
    when stepping starts; :meth:`on_round` once per counted round;
    :meth:`begin_finalize` when stepping ends; :meth:`finish` to build
    the :class:`RunTelemetry`.
    """

    def __init__(
        self,
        protocol: str,
        daemon: str,
        backend: str,
        rule_names: Sequence[str],
    ) -> None:
        self.protocol = protocol
        self.daemon = daemon
        self.backend = backend
        self.rule_names = tuple(rule_names)
        self.per_round_moves: List[Dict[str, int]] = []
        self.active_set_sizes: List[int] = []
        self.census: Optional[List[Dict[str, int]]] = None
        self.timings: Dict[str, float] = {}
        self._phase_start = time.perf_counter()

    def _close_phase(self, name: str) -> None:
        now = time.perf_counter()
        self.timings[name] = self.timings.get(name, 0.0) + (
            now - self._phase_start
        )
        self._phase_start = now

    def record_census(self, counts: Mapping[str, int]) -> None:
        """Record the census of the *initial* configuration (enables
        census collection for the rest of the run)."""
        self.census = [{k: int(counts[k]) for k in CENSUS_KEYS}]

    def begin_rounds(self) -> None:
        self._close_phase("setup")

    def on_round(
        self,
        moves: Mapping[str, int],
        active_size: int,
        census: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Record one counted round: the per-rule firing counts, the
        number of nodes the backend re-evaluated, and (for census-keeping
        runs) the post-round census."""
        self.per_round_moves.append(
            {name: int(moves.get(name, 0)) for name in self.rule_names}
        )
        self.active_set_sizes.append(int(active_size))
        if census is not None and self.census is not None:
            self.census.append({k: int(census[k]) for k in CENSUS_KEYS})

    def begin_finalize(self) -> None:
        self._close_phase("rounds")

    def finish(self) -> RunTelemetry:
        """Close the ``finalize`` phase and build the record."""
        self._close_phase("finalize")
        moves_by_rule = {name: 0 for name in self.rule_names}
        for entry in self.per_round_moves:
            for name, count in entry.items():
                moves_by_rule[name] += count
        return RunTelemetry(
            protocol=self.protocol,
            daemon=self.daemon,
            backend=self.backend,
            rounds=len(self.per_round_moves),
            moves=sum(moves_by_rule.values()),
            moves_by_rule=moves_by_rule,
            per_round_moves=self.per_round_moves,
            active_set_sizes=self.active_set_sizes,
            node_type_census=self.census,
            timings=self.timings,
        )


# ----------------------------------------------------------------------
# census helpers (lazy imports: keep this module executor-safe)
# ----------------------------------------------------------------------
def wants_census(protocol: object) -> bool:
    """Whether the Fig. 2 node-type census applies to ``protocol``
    (i.e. it is a pointer-matching protocol)."""
    from repro.matching.smm import MatchingProtocolBase

    return isinstance(protocol, MatchingProtocolBase)


def census_of(graph, config) -> Dict[str, int]:
    """The Fig. 2 node-type census of a pointer configuration, with
    string keys in :data:`CENSUS_KEYS` order."""
    from repro.matching.classification import type_counts

    return {t.value: c for t, c in type_counts(graph, config).items()}


# ----------------------------------------------------------------------
# sinks and aggregation
# ----------------------------------------------------------------------
class TelemetrySink:
    """Append-only JSONL sink: one JSON object per line.

    The CLI's ``--telemetry[=PATH]`` streams one record per trial
    through this; records are written in spec order, so the file is
    deterministic for any ``--jobs`` value.  (Truncation happens once
    per CLI invocation, up front — the sink itself only appends.)

    The sink holds one buffered handle, opened lazily on the first
    write and kept until :meth:`close` — re-opening per record made
    ``open()`` calls O(trials) and dominated small sweeps.  Each
    ``write``/``write_many`` call flushes, so records written so far
    are always readable; use the sink as a context manager (or call
    :meth:`close`) to release the handle deterministically.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._handle = None

    def _ensure_open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def write(self, record: Mapping[str, Any]) -> None:
        handle = self._ensure_open()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()

    def write_many(self, records: Iterable[Mapping[str, Any]]) -> None:
        handle = self._ensure_open()
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort: close() is the contract
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    @staticmethod
    def read(path, *, strict: bool = False) -> List[Dict[str, Any]]:
        """All parseable records of a JSONL file, in write order.

        A file being read may still be written (live jobs stream
        telemetry) or may have been truncated mid-line by a kill, so by
        default unparseable and non-object lines are skipped — readers
        see every complete record and never a traceback for a torn
        write.  ``strict=True`` restores the raise-on-corrupt behaviour
        for pipelines that must detect damage.
        """
        out: List[Dict[str, Any]] = []
        with open(str(path), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    if strict:
                        raise
                    continue
                if not isinstance(record, dict):
                    if strict:
                        raise ValueError(
                            f"telemetry line is not an object: {line[:80]!r}"
                        )
                    continue
                out.append(record)
        return out


def merge_telemetry(
    telemetries: Iterable[Optional[RunTelemetry]],
) -> Dict[str, Any]:
    """Deterministic aggregate of many runs' telemetry.

    All totals are order-independent sums/maxima, so merging results
    from a parallel sweep gives the same answer for every ``jobs``
    value and every completion order.  ``None`` entries (runs without
    telemetry) are skipped.

    Fault-campaign runs contribute a per-kind ``fault_events``
    aggregate (event/recovered counts, recovery-round totals and
    maxima, moves, worst containment radius); runs with a node-type
    census contribute their *final* census to ``final_census`` (the
    summed Fig. 2 histogram of the end states — ``None`` when no run
    kept a census).
    """
    runs = 0
    rounds_total = 0
    rounds_max = 0
    moves_by_rule: Dict[str, int] = {}
    timings: Dict[str, float] = {}
    fault_kinds: Dict[str, Dict[str, Any]] = {}
    final_census: Optional[Dict[str, int]] = None
    for t in telemetries:
        if t is None:
            continue
        runs += 1
        rounds_total += t.rounds
        rounds_max = max(rounds_max, t.rounds)
        for name, count in t.moves_by_rule.items():
            moves_by_rule[name] = moves_by_rule.get(name, 0) + count
        for phase, seconds in t.timings.items():
            timings[phase] = timings.get(phase, 0.0) + seconds
        if t.node_type_census:
            if final_census is None:
                final_census = {k: 0 for k in CENSUS_KEYS}
            for key, count in t.node_type_census[-1].items():
                final_census[key] = final_census.get(key, 0) + int(count)
        for event in t.fault_events or ():
            agg = fault_kinds.setdefault(
                str(event["kind"]),
                {
                    "events": 0,
                    "recovered": 0,
                    "recovery_rounds_total": 0,
                    "recovery_rounds_max": 0,
                    "moves": 0,
                    "touched": 0,
                    "radius_max": None,
                },
            )
            agg["events"] += 1
            agg["recovered"] += int(bool(event["recovered"]))
            agg["recovery_rounds_total"] += int(event["recovery_rounds"])
            agg["recovery_rounds_max"] = max(
                agg["recovery_rounds_max"], int(event["recovery_rounds"])
            )
            agg["moves"] += int(event["moves"])
            agg["touched"] += int(event["touched"])
            radius = event.get("radius")
            if radius is not None:
                agg["radius_max"] = max(
                    int(radius),
                    -1 if agg["radius_max"] is None else agg["radius_max"],
                )
    return {
        "runs": runs,
        "rounds_total": rounds_total,
        "rounds_max": rounds_max,
        "moves": sum(moves_by_rule.values()),
        "moves_by_rule": dict(sorted(moves_by_rule.items())),
        "timings": dict(sorted(timings.items())),
        "fault_events": dict(sorted(fault_kinds.items())),
        "final_census": final_census,
    }
