"""Zero-dependency span tracing with Chrome ``trace_event`` export.

A :class:`Span` is a named, timed interval with attributes and nested
children; a :class:`Tracer` builds a tree of them.  The engine opens
one span per :func:`repro.engine.run` call (with ``setup`` / ``rounds``
/ ``finalize`` phase children synthesized from the run's telemetry
wall-clocks), the trial runner one span per trial (annotated with
attempt/timeout/resume outcomes in resilient mode), and the fault-
campaign driver one span per :class:`~repro.resilience.FaultEvent`
covering its recovery window — so a whole sweep renders as one
timeline.

Timestamps are wall-anchored monotonic: each tracer snapshots
``(time.time(), time.perf_counter())`` once and reports
``perf_counter`` deltas rebased onto the wall clock, giving
sub-microsecond resolution *and* comparability across the worker
processes of a parallel sweep (each worker's span fragment rides back
inside its pickled result, exactly like telemetry).

Install a tracer ambiently with :func:`use_tracer`; everything that
traces checks :func:`current_tracer` and is a no-op when none is
installed — runs without a tracer pay nothing.  Export with
:meth:`Tracer.export` (plain dicts) and :func:`chrome_trace` /
:func:`write_chrome_trace` (the Chrome ``trace_event`` JSON object
format, loadable in ``chrome://tracing`` and Perfetto; workers map to
trace threads so parallel trials land on separate tracks).

Span *structure* (names, nesting, counter-valued attributes) is
deterministic for a given sweep whatever ``--jobs`` is; timestamps and
durations are wall-clock and of course are not.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]


@dataclass
class Span:
    """One named interval: ``[ts, ts + dur]`` seconds (wall-anchored),
    with free-form JSON-safe ``attrs`` and nested ``children``."""

    name: str
    ts: float
    dur: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    pid: Optional[int] = None  # producing process; inherited when None

    def child(self, name: str, ts: float, dur: float, **attrs: Any) -> "Span":
        """Attach (and return) an already-timed child span — used to
        synthesize phase spans from telemetry wall-clocks."""
        span = Span(name=name, ts=ts, dur=dur, attrs=dict(attrs))
        self.children.append(span)
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }
        if self.pid is not None:
            out["pid"] = self.pid
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            ts=float(data["ts"]),
            dur=float(data["dur"]),
            attrs=dict(data.get("attrs", {})),
            children=[cls.from_dict(c) for c in data.get("children", ())],
            pid=data.get("pid"),
        )


class Tracer:
    """Builds a span tree with an explicit open-span stack.

    Use :meth:`span` (context manager) for well-nested work,
    :meth:`begin`/:meth:`end` when the interval crosses loop
    iterations (the campaign driver's recovery windows), and
    :meth:`record` for an interval that was timed externally.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self._wall0 = time.time()
        self._pc0 = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def now(self) -> float:
        """Wall-anchored monotonic timestamp in seconds."""
        return self._wall0 + (time.perf_counter() - self._pc0)

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span; it nests under the currently open span."""
        span = Span(name=name, ts=self.now(), attrs=dict(attrs))
        self._attach(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` (and anything left open beneath it)."""
        span.attrs.update(attrs)
        span.dur = max(0.0, self.now() - span.ts)
        while self._stack:
            if self._stack.pop() is span:
                break
        return span

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        opened = self.begin(name, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def record(
        self, name: str, start: float, end: Optional[float] = None, **attrs: Any
    ) -> Span:
        """Attach a closed span timed by the caller (``start``/``end``
        from :meth:`now`) under the currently open span."""
        stop = self.now() if end is None else end
        span = Span(
            name=name, ts=start, dur=max(0.0, stop - start), attrs=dict(attrs)
        )
        self._attach(span)
        return span

    def graft(self, fragment: Mapping[str, Any], **attrs: Any) -> Span:
        """Attach a span exported by another tracer (typically from a
        worker process, carried back on ``result.trace``), merging
        ``attrs`` into its root."""
        span = Span.from_dict(fragment)
        span.attrs.update(attrs)
        self._attach(span)
        return span

    def export(self) -> List[Dict[str, Any]]:
        """The root spans as JSON-safe dicts, stamped with this
        tracer's process id (grafted fragments keep their own)."""
        out = []
        for root in self.roots:
            data = root.to_dict()
            data.setdefault("pid", self.pid)
            out.append(data)
        return out


# ----------------------------------------------------------------------
# the ambient tracer
# ----------------------------------------------------------------------
_CURRENT: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_tracer", default=None
)


def current_tracer() -> Optional[Tracer]:
    """The ambiently installed tracer, or ``None`` (tracing off)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` as the ambient tracer for the block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


def chrome_trace(spans: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Render exported span dicts as a Chrome ``trace_event`` JSON
    object (the format ``chrome://tracing`` and Perfetto load).

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur`` rebased to the earliest span; each
    producing process becomes a trace *thread*, so the trials of a
    parallel sweep render as parallel tracks.
    """
    spans = [dict(s) for s in spans]
    if spans:
        origin = min(float(s["ts"]) for s in spans)
    else:
        origin = 0.0
    events: List[Dict[str, Any]] = []
    tids: Dict[int, int] = {}  # producing pid -> stable small tid

    def tid_of(pid: Optional[int], inherited: int) -> int:
        if pid is None:
            return inherited
        if pid not in tids:
            tids[pid] = len(tids) + 1
        return tids[pid]

    def emit(span: Mapping[str, Any], inherited: int) -> None:
        tid = tid_of(span.get("pid"), inherited)
        events.append(
            {
                "name": str(span["name"]),
                "cat": "repro",
                "ph": "X",
                "ts": round((float(span["ts"]) - origin) * 1e6, 3),
                "dur": round(float(span["dur"]) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": _json_safe(span.get("attrs", {})),
            }
        )
        for child in span.get("children", ()):
            emit(child, tid)

    for span in spans:
        emit(span, 0)
    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for pid, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"worker pid={pid}"},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, spans: Iterable[Mapping[str, Any]]) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(str(path), "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, separators=(",", ":"))


def validate_chrome_trace(data: Mapping[str, Any]) -> int:
    """Validate the ``trace_event`` JSON object format; returns the
    number of non-metadata events.  Raises ``ValueError`` on schema
    violations — used by the CI smoke step and the test suite."""
    if not isinstance(data, Mapping) or "traceEvents" not in data:
        raise ValueError("missing traceEvents array")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    counted = 0
    for event in events:
        if not isinstance(event, Mapping):
            raise ValueError(f"event is not an object: {event!r}")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event!r}")
        if event["ph"] == "M":
            continue
        if event["ph"] != "X":
            raise ValueError(f"unexpected phase {event['ph']!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"event {key} invalid: {event!r}")
        counted += 1
    return counted
