"""Parallel trial execution for the experiment harness.

Every experiment quantifies over graph families × sizes × dozens of
seeded initial configurations; the trials are independent, so the sweep
is embarrassingly parallel.  This package fans :class:`TrialSpec`
records across a ``ProcessPoolExecutor`` while keeping results
bit-identical to serial execution (pinned by ``tests/test_parallel.py``):

* specs are plain picklable data (protocol *name*, graph, configuration,
  integer seed) — workers rebuild protocol objects from
  :data:`PROTOCOLS` and derive RNGs from the spec's seed via
  :mod:`repro.rng`, so the result of a trial is a pure function of its
  spec regardless of which process runs it;
* results come back in spec order;
* ``jobs=1`` (the default everywhere) runs inline — no pool, no pickling;
* a broken pool degrades gracefully to inline execution;
* workers pin BLAS/OMP to one thread each so ``jobs`` processes never
  oversubscribe the machine;
* the resilient mode (``timeout``/``retries``/``checkpoint``) gives
  sweeps per-trial wall-clock timeouts, bounded retry with exponential
  backoff, :class:`FailedTrial` records instead of batch aborts, and
  JSONL checkpoint/resume keyed by :func:`spec_fingerprint`;
* two result-preserving fast paths sit in front of both modes:
  batch-sweep dispatch (:mod:`repro.parallel.batch_sweep` — groups of
  same-graph synchronous specs run as one ``(k, n)`` batch-kernel
  call) and zero-copy graph handoff
  (:mod:`repro.parallel.shared_graph` — each distinct graph ships to
  workers once, as shared-memory CSR buffers or a memoized pickle).

See docs/performance.md for usage and measured numbers.
"""

from repro.parallel.batch_sweep import dispatch_groups, sweep_eligible
from repro.parallel.shared_graph import (
    MemoGraph,
    SharedGraph,
    SharedGraphStore,
    close_all_stores,
    leaked_shared_segments,
)
from repro.parallel.trial_runner import (
    PROTOCOLS,
    FailedTrial,
    SweepCancelled,
    SweepInterrupted,
    TrialRunner,
    TrialSpec,
    execute_trial,
    resolve_jobs,
    run_trials,
    spec_fingerprint,
)

__all__ = [
    "PROTOCOLS",
    "FailedTrial",
    "MemoGraph",
    "SharedGraph",
    "SharedGraphStore",
    "SweepCancelled",
    "SweepInterrupted",
    "TrialRunner",
    "TrialSpec",
    "close_all_stores",
    "dispatch_groups",
    "execute_trial",
    "leaked_shared_segments",
    "resolve_jobs",
    "run_trials",
    "spec_fingerprint",
    "sweep_eligible",
]
