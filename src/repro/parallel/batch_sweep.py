"""Batch-sweep dispatch: many same-graph trials as one kernel call.

Sweeps like E1 run the *same* protocol on the *same* graph from many
initial configurations.  Executed trial-by-trial, each run pays the
full per-round NumPy dispatch overhead; the batch kernels
(:class:`repro.matching.smm_batch.BatchSMM`,
:class:`repro.mis.sis_batch.BatchSIS`) amortise it by stepping all
``k`` configurations as one ``(k, n)`` array per round.

This module is the planner the trial runner consults: it spots groups
of specs a batch kernel can execute — same protocol, same graph, same
round budget, synchronous daemon, no per-trial observation — runs each
group through one :meth:`run_batch` call in the parent process, and
decodes the rows back into ordinary :class:`RunResult` records that are
bit-identical (final configuration, rounds, per-rule moves, legitimacy)
to per-trial execution.  Ineligible specs are left untouched for the
normal per-trial paths.

Eligibility is deliberately conservative — a spec batches only when:

* ``daemon == "synchronous"`` (the batch kernels implement only the
  synchronous daemon);
* ``backend`` is ``"auto"`` or ``"batch"`` (an explicit ``"reference"``
  or ``"vectorized"`` request is honoured per-trial);
* no ``options``, ``record_history``, ``telemetry`` or ``trace`` —
  per-trial observation needs per-trial execution;
* the protocol's registered batch backend advertises the
  ``"batch_sweep"`` capability and its ``supports`` predicate accepts
  the run (externally registered protocols without a batch kernel fall
  through untouched);
* the graph is at most :data:`BATCH_SWEEP_MAX_NODES` nodes — past the
  measured crossover the per-trial kernels' active-set frontier beats
  lockstep batch rows, so ``auto`` keeps the faster path.

Groups of size 1 are not batched (a batch of one adds overhead and no
amortisation).  Seeds never enter: the eligible protocols are
deterministic under the synchronous daemon, so a spec's result does not
depend on its seed — exactly why rows can be decoded bit-identically.

Dispatch is visible, never silent: batched groups increment the
backend-labelled ``repro_batch_sweep_groups_total`` /
``repro_batch_sweep_trials_total`` counters, and the runner increments
``repro_batch_sweep_fallbacks_total`` (via :func:`record_fallback`)
when batching is disabled wholesale by tracing or resilient mode.
"""

from __future__ import annotations

import importlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import registry
from repro.engine.result import RunResult

__all__ = ["dispatch_groups", "record_fallback", "sweep_eligible"]

#: Protocol key → (module, batch kernel class, final-matrix attribute).
_SWEEP_KERNELS = {
    "smm": ("repro.matching.smm_batch", "BatchSMM", "final_ptr"),
    "sis": ("repro.mis.sis_batch", "BatchSIS", "final_x"),
}

#: Largest graph (in nodes) a protocol's batch kernel is dispatched
#: for.  Above these sizes the per-trial kernels win: their active-set
#: frontier stepping skips most per-node work in the sparse tail of a
#: run, while a batch row always costs O(n) per round.  Measured
#: crossovers on the BENCH_kernels workloads — SMM loses past ~2k
#: nodes, SIS (a cheaper row update) past ~8k.
BATCH_SWEEP_MAX_NODES = {"smm": 2048, "sis": 8192}

#: The capability a batch backend must advertise to be sweep-dispatched.
SWEEP_CAPABILITY = "batch_sweep"


def sweep_eligible(spec, _protocols: Optional[dict] = None) -> bool:
    """True iff ``spec`` can be executed by a batch kernel with a
    result bit-identical to per-trial execution (modulo the ``backend``
    label, which honestly names the kernel that ran)."""
    if spec.daemon != "synchronous":
        return False
    if spec.backend not in ("auto", "batch"):
        return False
    if spec.options or spec.record_history or spec.telemetry or spec.trace:
        return False
    if spec.protocol not in _SWEEP_KERNELS:
        return False
    if spec.graph.n > BATCH_SWEEP_MAX_NODES[spec.protocol]:
        return False  # past the measured crossover: per-trial is faster
    entry = registry.BACKENDS.get((spec.protocol, "synchronous", "batch"))
    if entry is None or SWEEP_CAPABILITY not in entry.capabilities:
        return False
    if _protocols is None:
        _protocols = {}
    protocol = _protocols.get(spec.protocol)
    if protocol is None:
        protocol = registry.make_protocol(spec.protocol)
        _protocols[spec.protocol] = protocol
    return entry.supports(
        protocol, spec.graph, spec.config, {"record_history": False}
    )


def dispatch_groups(specs: Sequence) -> Dict[int, RunResult]:
    """Execute every batchable group of ``specs`` and return the
    results keyed by original spec index.

    Indices absent from the returned mapping were not batched (spec
    ineligible, or its group had fewer than two members) and must run
    through the ordinary per-trial paths.
    """
    from repro.core.executor import _default_round_budget

    protocols: dict = {}
    groups: Dict[Tuple, List[Tuple[int, object]]] = {}
    for index, spec in enumerate(specs):
        if not sweep_eligible(spec, protocols):
            continue
        # Key on the *resolved* round budget: ``max_rounds=None`` and an
        # explicit budget equal to the default are the same execution, so
        # keying on the raw field would fragment them into separate (and
        # possibly size-1, hence unbatched) groups.
        budget = (
            spec.max_rounds
            if spec.max_rounds is not None
            else _default_round_budget(spec.graph)
        )
        key = (spec.protocol, spec.graph, budget)
        groups.setdefault(key, []).append((index, spec))

    results: Dict[int, RunResult] = {}
    dispatched_groups = 0
    dispatched_by_protocol: Dict[str, int] = {}
    for (protocol_key, graph, budget), members in groups.items():
        if len(members) < 2:
            continue
        results.update(
            _run_group(protocol_key, graph, budget, members, protocols)
        )
        dispatched_groups += 1
        dispatched_by_protocol[protocol_key] = dispatched_by_protocol.get(
            protocol_key, 0
        ) + len(members)
    if dispatched_groups:
        _record_dispatch(dispatched_groups, dispatched_by_protocol)
    return results


def _run_group(
    protocol_key: str,
    graph,
    budget: int,
    members: List[Tuple[int, object]],
    protocols: dict,
) -> Dict[int, RunResult]:
    """One ``run_batch`` call for one group, decoded row-by-row.

    ``budget`` is the already-resolved round budget (the group key), so
    every member runs under the identical limit it would have resolved
    per-trial.
    """
    from repro.core.executor import _resolve_config

    module_name, class_name, final_attr = _SWEEP_KERNELS[protocol_key]
    kernel_cls = getattr(importlib.import_module(module_name), class_name)
    protocol = protocols[protocol_key]
    initials = [
        _resolve_config(protocol, graph, spec.config) for _, spec in members
    ]
    kernel = kernel_cls(graph)
    start = time.perf_counter()
    res = kernel.run_batch(kernel.encode_batch(initials), max_rounds=budget)
    # one wall-clock for k trials: attribute an equal share to each row
    # so the parent-side latency histogram still sees every trial
    per_row = (time.perf_counter() - start) / len(members)
    final = getattr(res, final_attr)
    out: Dict[int, RunResult] = {}
    for row, (index, _spec) in enumerate(members):
        final_config = kernel.single.decode(final[row])
        moves_by_rule = {
            name: int(counts[row]) for name, counts in res.moves_by_rule.items()
        }
        out[index] = RunResult(
            protocol_name=protocol.name,
            daemon="synchronous",
            stabilized=bool(res.stabilized[row]),
            rounds=int(res.rounds[row]),
            moves=sum(moves_by_rule.values()),
            moves_by_rule=moves_by_rule,
            initial=initials[row],
            final=final_config,
            legitimate=protocol.is_legitimate(graph, final_config),
            backend="batch",
            elapsed=per_row,
        )
    return out


# ----------------------------------------------------------------------
# visibility (all families backend-labelled: they describe *how* trials
# executed, so the cross-jobs metrics determinism pins exclude them)
# ----------------------------------------------------------------------
def _record_dispatch(groups: int, trials_by_protocol: Dict[str, int]) -> None:
    from repro.observability import metrics as _metrics

    reg = _metrics.current_registry()
    if reg is None:
        return
    reg.counter(
        "repro_batch_sweep_groups_total",
        "Spec groups executed as one batch-kernel call",
    ).inc(groups, backend="batch")
    trials = reg.counter(
        "repro_batch_sweep_trials_total",
        "Trials executed through batch-sweep dispatch",
    )
    for protocol_key in sorted(trials_by_protocol):
        trials.inc(
            trials_by_protocol[protocol_key],
            protocol=protocol_key,
            backend="batch",
        )


def record_fallback(reason: str) -> None:
    """Count a wholesale batching bypass (tracer ambient, resilient
    mode) so degraded sweeps are observable, mirroring the engine's
    ``repro_backend_fallbacks_total`` convention."""
    from repro.observability import metrics as _metrics

    reg = _metrics.current_registry()
    if reg is None:
        return
    reg.counter(
        "repro_batch_sweep_fallbacks_total",
        "Sweeps that bypassed batch dispatch wholesale",
    ).inc(reason=reason, backend="batch")
