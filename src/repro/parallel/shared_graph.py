"""Zero-copy CSR graph handoff to pool workers.

Sweeps run thousands of trials over a handful of graphs, yet the plain
pool path re-pickles and re-deserializes a full :class:`Graph` (its
adjacency dict of tuples) with *every* spec.  This module provides two
proxies that make the graph cross the process boundary cheaply, both
byte-identical in observable behaviour (a proxy *is* a ``Graph`` —
same nodes, edges, hash and CSR arrays):

:class:`SharedGraph`
    The CSR buffers (``indptr``/``indices``/``ids``) are written once
    per sweep into a named ``multiprocessing.shared_memory`` segment by
    the parent; the proxy pickles to just the segment name, and a worker
    attaches and rebuilds the graph around zero-copy views of the
    segment (:meth:`Graph.from_csr_arrays`), caching the attachment so
    repeated same-graph specs cost a dict lookup.

:class:`MemoGraph`
    The legacy (non-shared-memory) fallback: the parent pickles the
    graph's state *once* and ships the resulting bytes with a token; a
    worker unpickles the payload on first sight only and serves every
    later spec from a per-process memo keyed by the token.

Lifecycle: :class:`SharedGraphStore` owns the segments.  The parent
creates them in :meth:`SharedGraphStore.pack_specs` and must call
:meth:`SharedGraphStore.close` (unlink) when the sweep finishes — the
trial runner does this in a ``finally``, so segments are reclaimed even
on worker crashes and kill-resume.  Workers attach *untracked*
(:func:`_attach_untracked`): on CPython ≤ 3.12 attaching registers the
segment with the ``resource_tracker`` as if the worker owned it, which
corrupts the parent-owned lifecycle under both fork and spawn.  Segment
names carry the ``repro-g<pid>-`` prefix so leak checks (and the
resilience tests) can audit ``/dev/shm``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import warnings
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "SHM_PREFIX",
    "MemoGraph",
    "SharedGraph",
    "SharedGraphStore",
    "close_all_stores",
    "leaked_shared_segments",
]

#: Every live store, for process-wide emergency cleanup
#: (:func:`close_all_stores`) — weak so ordinary lifecycle (the trial
#: runner's ``finally``) stays the owner.
_LIVE_STORES: "weakref.WeakSet[SharedGraphStore]" = weakref.WeakSet()


def close_all_stores() -> int:
    """Close (unlink) every live :class:`SharedGraphStore` of this
    process and return how many were closed.

    The graceful-shutdown backstop for long-lived owners: a daemon
    tearing down on SIGTERM calls this after cancelling its sweeps so
    no ``/dev/shm`` segment outlives the process even if a runner's
    ``finally`` never ran (e.g. a worker thread killed mid-sweep).
    Idempotent — closing an already-closed store is a no-op.
    """
    closed = 0
    for store in list(_LIVE_STORES):
        closed += 1
        store.close()
    return closed

#: Prefix of every shared-memory segment created here (followed by the
#: creating pid and a sequence number) — the audit key for leak checks.
SHM_PREFIX = "repro-g"

#: Graphs below this node count ship as :class:`MemoGraph` by default:
#: the segment setup cost outweighs the pickle for tiny graphs.
SHARED_MIN_NODES = 256

_SEQ = itertools.count()


def leaked_shared_segments() -> List[str]:
    """Names of live ``/dev/shm`` segments created by this module
    (empty on platforms without a POSIX shm filesystem)."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SHM_PREFIX))


def _copy_graph_slots(proxy: Graph, graph: Graph) -> None:
    # bypass Graph.__init__ — the source graph is already validated
    proxy._adj = graph._adj
    proxy._nodes = graph._nodes
    proxy._edges = graph._edges
    proxy._hash = None
    proxy._csr = graph._csr


class SharedGraph(Graph):
    """A :class:`Graph` whose pickle is a shared-memory segment name.

    Behaves exactly like the wrapped graph in-process (the slots are
    shared); across a process boundary it reduces to
    :func:`_attach_shared_graph`, so the receiving worker maps the CSR
    buffers instead of deserializing the adjacency.
    """

    __slots__ = ("_shm_meta",)

    def __init__(self, graph: Graph, meta: Tuple[str, int, int]) -> None:
        _copy_graph_slots(self, graph)
        self._shm_meta = meta

    def __reduce__(self):
        return (_attach_shared_graph, self._shm_meta)


class MemoGraph(Graph):
    """A :class:`Graph` that ships as ``(token, pickled-state bytes)``.

    The payload is serialized once in the parent; workers deserialize it
    once per process (:func:`_load_memo_graph`) and reuse the cached
    graph for every spec carrying the same token.
    """

    __slots__ = ("_memo_token", "_memo_payload")

    def __init__(self, graph: Graph, token: Tuple[int, int], payload: bytes) -> None:
        _copy_graph_slots(self, graph)
        self._memo_token = token
        self._memo_payload = payload

    def __reduce__(self):
        return (_load_memo_graph, (self._memo_token, self._memo_payload))


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_ATTACHED: Dict[str, Graph] = {}
_ATTACHED_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_MEMO: Dict[Tuple[int, int], Graph] = {}


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource
    tracker.

    On CPython ≤ 3.12, *attaching* registers the segment just like
    creating it does, so an attached worker's tracker would unlink a
    segment the parent still owns (spawn), or a later explicit
    unregister would double-remove the parent's own registration (fork,
    where the tracker process is shared).  The parent created the
    segment through the normal tracked path and remains the sole owner;
    suppressing the attach-side registration is correct under both
    start methods.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach_shared_graph(name: str, n: int, nnz: int) -> Graph:
    """Worker-side unpickle hook of :class:`SharedGraph`."""
    graph = _ATTACHED.get(name)
    if graph is not None:
        return graph
    shm = _attach_untracked(name)
    itemsize = np.dtype(np.int64).itemsize
    indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=shm.buf)
    indices = np.ndarray(
        (nnz,), dtype=np.int64, buffer=shm.buf, offset=(n + 1) * itemsize
    )
    ids = np.ndarray(
        (n,), dtype=np.int64, buffer=shm.buf, offset=(n + 1 + nnz) * itemsize
    )
    for arr in (indptr, indices, ids):
        arr.flags.writeable = False
    graph = Graph.from_csr_arrays(indptr, indices, ids)
    _ATTACHED[name] = graph
    _ATTACHED_SEGMENTS[name] = shm  # keep the mapping alive for the views
    return graph


def _load_memo_graph(token: Tuple[int, int], payload: bytes) -> Graph:
    """Worker-side unpickle hook of :class:`MemoGraph`."""
    graph = _MEMO.get(token)
    if graph is None:
        graph = Graph.__new__(Graph)
        graph.__setstate__(pickle.loads(payload))
        _MEMO[token] = graph
    return graph


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class SharedGraphStore:
    """Parent-owned shared-memory segments for one sweep.

    ``shared=None`` (auto) shares graphs with at least
    ``SHARED_MIN_NODES`` nodes and memoizes the rest; ``shared=True``
    shares everything; ``shared=False`` memoizes everything (the legacy
    pool path minus the per-spec unpickle).  Usable as a context
    manager; :meth:`close` unlinks every segment and is idempotent.
    """

    def __init__(self, shared: Optional[bool] = None) -> None:
        self._shared = shared
        self._segments: List[shared_memory.SharedMemory] = []
        self._wrapped: Dict[Graph, Graph] = {}
        _LIVE_STORES.add(self)

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def pack_specs(self, specs: Sequence) -> List:
        """Copies of ``specs`` with every graph replaced by its proxy.

        Equal graphs share one proxy (and one segment / payload).  Spec
        fingerprints are unaffected: proxies expose identical nodes and
        edges.
        """
        from dataclasses import replace

        out = []
        for spec in specs:
            graph = spec.graph
            proxy = self._wrapped.get(graph)
            if proxy is None:
                proxy = self._wrap(graph)
                self._wrapped[graph] = proxy
            out.append(replace(spec, graph=proxy))
        return out

    def _wrap(self, graph: Graph) -> Graph:
        if isinstance(graph, (SharedGraph, MemoGraph)):
            return graph
        use_shm = self._shared is True or (
            self._shared is None and graph.n >= SHARED_MIN_NODES
        )
        if use_shm:
            try:
                return self._share(graph)
            except (OSError, ValueError) as exc:
                warnings.warn(
                    f"shared-memory graph handoff unavailable ({exc!r}); "
                    "falling back to per-worker pickling",
                    RuntimeWarning,
                    stacklevel=3,
                )
        token = (os.getpid(), next(_SEQ))
        payload = pickle.dumps(
            graph.__getstate__(), protocol=pickle.HIGHEST_PROTOCOL
        )
        return MemoGraph(graph, token, payload)

    def _share(self, graph: Graph) -> SharedGraph:
        indptr, indices, ids = graph.adjacency_arrays()
        size = indptr.nbytes + indices.nbytes + ids.nbytes
        shm = self._create_segment(max(1, size))
        offset = 0
        for arr in (indptr, indices, ids):
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
            dst[:] = arr
            offset += arr.nbytes
        self._segments.append(shm)
        return SharedGraph(graph, (shm.name, graph.n, int(indices.size)))

    @staticmethod
    def _create_segment(size: int) -> shared_memory.SharedMemory:
        while True:
            name = f"{SHM_PREFIX}{os.getpid()}-{next(_SEQ)}"
            try:
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - stale leftover
                continue

    def close(self) -> None:
        """Unlink every segment created by this store (idempotent)."""
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - already closed
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._wrapped.clear()
