"""Fan independent protocol trials across worker processes.

The unit of work is a :class:`TrialSpec` — plain, picklable data that
fully determines one protocol run.  :func:`execute_trial` is a pure
function of the spec: protocols are rebuilt by *name* inside the worker
(rule closures don't pickle) and any randomness flows from the spec's
integer ``seed`` through :mod:`repro.rng`, so a trial's result is
bit-identical whether it runs inline, in this process, or in any worker
of any pool.  That property is what lets the experiments keep their
"reproducible from one seed" contract while scaling across cores; it is
pinned by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.engine.registry import PROTOCOLS, register_protocol
from repro.engine.result import RunResult
from repro.graphs.graph import Graph
from repro.types import NodeId

__all__ = [
    "PROTOCOLS",
    "TrialRunner",
    "TrialSpec",
    "execute_trial",
    "register_protocol",
    "resolve_jobs",
    "run_trials",
]


@dataclass(frozen=True)
class TrialSpec:
    """One protocol run, as plain data.

    Attributes
    ----------
    protocol:
        Key into :data:`repro.engine.PROTOCOLS` (``"smm"``, ``"sis"``,
        ...).
    graph / config:
        The topology and initial configuration (``None`` = clean start).
    daemon:
        ``"synchronous"`` (default), ``"central"``,
        ``"synchronized-central"`` (the E5 refinement), or
        ``"distributed"``.
    max_rounds:
        Budget, forwarded as ``max_rounds`` (``max_moves`` for the
        central daemon).  ``None`` = the runner's documented default.
    record_history:
        Keep per-round configurations (needed by E3/E6-style replays).
    seed:
        Integer seed for daemons that consume randomness.  Derive it in
        the parent (e.g. :func:`repro.rng.trial_seeds`) so the schedule
        is a function of the spec, not of execution order.
    options:
        Extra keyword arguments for the runner, as a sorted tuple of
        ``(name, value)`` pairs (kept hashable/picklable).
    backend:
        Execution backend (:mod:`repro.engine`): ``"reference"`` (the
        default), ``"auto"``, or an explicit registered kernel such as
        ``"vectorized"``/``"batch"``.
    telemetry:
        Attach a :class:`~repro.observability.RunTelemetry` record to
        the trial's result.  Telemetry rides back through the ordinary
        pickled :class:`RunResult`, so per-worker collection needs no
        extra plumbing; aggregate with
        :func:`repro.observability.merge_telemetry` or write records out
        with :class:`repro.observability.TelemetrySink`.
    """

    protocol: str
    graph: Graph
    config: Optional[Mapping[NodeId, object]] = None
    daemon: str = "synchronous"
    max_rounds: Optional[int] = None
    record_history: bool = False
    seed: Optional[int] = None
    options: Tuple[Tuple[str, object], ...] = ()
    backend: str = "reference"
    telemetry: bool = False


def execute_trial(spec: TrialSpec) -> RunResult:
    """Run one trial — a pure function of the spec.

    Dispatches through :func:`repro.engine.run`, the single engine
    front door (protocol lookup, daemon routing and backend selection
    all live there)."""
    from repro.engine import run as engine_run

    options = dict(spec.options)
    if spec.telemetry:
        # only forwarded when requested, so runners without the keyword
        # (externally registered backends) keep working untouched
        options["telemetry"] = True
    return engine_run(
        spec.protocol,
        spec.graph,
        spec.config,
        daemon=spec.daemon,
        backend=spec.backend,
        rng=spec.seed,
        max_rounds=spec.max_rounds,
        record_history=spec.record_history,
        **options,
    )


class _TrialFailure:
    """Picklable wrapper tagging an exception as *raised by a trial*,
    as opposed to by the pool machinery.  Without the tag, a trial's
    own ``OSError``/``RuntimeError`` escaping ``pool.map`` is
    indistinguishable from pool death — and was silently swallowed by
    the inline-fallback path, re-running every trial (including the
    failing one, now raising from a misleading inline stack)."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def _execute_trial_tagged(spec: TrialSpec):
    """Worker entry point: run the trial, tagging its own exceptions."""
    try:
        return execute_trial(spec)
    except Exception as exc:
        return _TrialFailure(exc)


# ----------------------------------------------------------------------
# worker environment
# ----------------------------------------------------------------------
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _pin_worker_threads() -> None:
    """Pin BLAS/OMP pools to one thread in this worker.

    ``jobs`` worker processes each spinning a BLAS pool of ``cores``
    threads oversubscribes the machine ``jobs``-fold; the trials are
    pure Python + small NumPy element-wise ops, so one thread per worker
    is optimal.  Env vars cover libraries loaded after the fork;
    ``threadpoolctl`` (if present) repins ones already loaded.
    """
    for var in _THREAD_ENV_VARS:
        os.environ[var] = "1"
    try:  # pragma: no cover - optional dependency
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=1)
    except Exception:
        pass


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


class TrialRunner:
    """Run trial specs, fanning across processes when ``jobs > 1``.

    Results always come back in spec order, and are bit-identical to
    inline execution (each trial is a pure function of its spec).  When
    the pool cannot be used — ``jobs=1``, pickling trouble, or the pool
    dying mid-flight — execution degrades gracefully to inline.
    """

    def __init__(self, jobs: Optional[int] = 1, *, chunksize: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize

    def map(self, specs: Sequence[TrialSpec]) -> List[RunResult]:
        """Execute ``specs`` and return their results, in order."""
        specs = list(specs)
        if self.jobs <= 1 or len(specs) <= 1:
            return [execute_trial(spec) for spec in specs]
        chunk = self.chunksize or max(1, len(specs) // (self.jobs * 4))
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(specs)),
                initializer=_pin_worker_threads,
            ) as pool:
                # trial exceptions come back tagged as _TrialFailure, so
                # an exception reaching the except clause below really is
                # pool machinery failing — a trial's own OSError or
                # RuntimeError must propagate, not trigger the fallback
                outcomes = list(
                    pool.map(_execute_trial_tagged, specs, chunksize=chunk)
                )
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            # Pool died (OOM kill, fork failure, interpreter without
            # multiprocessing support...): the trials are side-effect
            # free, so rerunning everything inline is safe.
            import warnings

            warnings.warn(
                f"process pool failed ({exc!r}); falling back to inline execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [execute_trial(spec) for spec in specs]
        for outcome in outcomes:
            if isinstance(outcome, _TrialFailure):
                raise outcome.error
        return outcomes


def run_trials(
    specs: Sequence[TrialSpec],
    *,
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> List[RunResult]:
    """Convenience wrapper: ``TrialRunner(jobs).map(specs)``."""
    return TrialRunner(jobs, chunksize=chunksize).map(specs)
