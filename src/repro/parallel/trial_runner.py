"""Fan independent protocol trials across worker processes.

The unit of work is a :class:`TrialSpec` — plain, picklable data that
fully determines one protocol run.  :func:`execute_trial` is a pure
function of the spec: protocols are rebuilt by *name* inside the worker
(rule closures don't pickle) and any randomness flows from the spec's
integer ``seed`` through :mod:`repro.rng`, so a trial's result is
bit-identical whether it runs inline, in this process, or in any worker
of any pool.  That property is what lets the experiments keep their
"reproducible from one seed" contract while scaling across cores; it is
pinned by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.executor import Execution, run_central, run_synchronous
from repro.core.protocol import Protocol
from repro.errors import ExperimentError
from repro.graphs.graph import Graph
from repro.types import NodeId

#: Registered protocol factories, keyed by the names trial specs carry.
#: Factories (not instances) because rule closures are not picklable —
#: each worker rebuilds the protocol locally.
PROTOCOLS: Dict[str, Callable[[], Protocol]] = {}


def register_protocol(name: str, factory: Callable[[], Protocol]) -> None:
    """Register a protocol factory for use in trial specs."""
    PROTOCOLS[name] = factory


def _builtin_protocols() -> None:
    from repro.matching.hsu_huang import HsuHuangMatching
    from repro.matching.smm import SynchronousMaximalMatching
    from repro.mis.sis import SynchronousMaximalIndependentSet

    register_protocol("smm", SynchronousMaximalMatching)
    register_protocol("sis", SynchronousMaximalIndependentSet)
    register_protocol("hsu-huang", HsuHuangMatching)


_builtin_protocols()


@dataclass(frozen=True)
class TrialSpec:
    """One protocol run, as plain data.

    Attributes
    ----------
    protocol:
        Key into :data:`PROTOCOLS` (``"smm"``, ``"sis"``, ...).
    graph / config:
        The topology and initial configuration (``None`` = clean start).
    daemon:
        ``"synchronous"`` (default), ``"central"``, or
        ``"synchronized-central"`` (the E5 refinement).
    max_rounds:
        Budget, forwarded as ``max_rounds`` (``max_moves`` for the
        central daemon).  ``None`` = the runner's documented default.
    record_history:
        Keep per-round configurations (needed by E3/E6-style replays).
    seed:
        Integer seed for daemons that consume randomness.  Derive it in
        the parent (e.g. :func:`repro.rng.trial_seeds`) so the schedule
        is a function of the spec, not of execution order.
    options:
        Extra keyword arguments for the runner, as a sorted tuple of
        ``(name, value)`` pairs (kept hashable/picklable).
    """

    protocol: str
    graph: Graph
    config: Optional[Mapping[NodeId, object]] = None
    daemon: str = "synchronous"
    max_rounds: Optional[int] = None
    record_history: bool = False
    seed: Optional[int] = None
    options: Tuple[Tuple[str, object], ...] = ()


def execute_trial(spec: TrialSpec) -> Execution:
    """Run one trial — a pure function of the spec."""
    try:
        protocol = PROTOCOLS[spec.protocol]()
    except KeyError:
        raise ExperimentError(
            f"unknown protocol {spec.protocol!r}; known: {sorted(PROTOCOLS)}"
        ) from None
    kwargs = dict(spec.options)
    if spec.daemon == "synchronous":
        return run_synchronous(
            protocol,
            spec.graph,
            spec.config,
            rng=spec.seed,
            max_rounds=spec.max_rounds,
            record_history=spec.record_history,
            **kwargs,
        )
    if spec.daemon == "central":
        return run_central(
            protocol,
            spec.graph,
            spec.config,
            rng=spec.seed,
            max_moves=spec.max_rounds,
            record_history=spec.record_history,
            **kwargs,
        )
    if spec.daemon == "synchronized-central":
        from repro.core.transform import run_synchronized_central

        return run_synchronized_central(
            protocol,
            spec.graph,
            spec.config,
            rng=spec.seed,
            max_rounds=spec.max_rounds,
            record_history=spec.record_history,
            **kwargs,
        )
    raise ExperimentError(f"unknown daemon {spec.daemon!r}")


# ----------------------------------------------------------------------
# worker environment
# ----------------------------------------------------------------------
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _pin_worker_threads() -> None:
    """Pin BLAS/OMP pools to one thread in this worker.

    ``jobs`` worker processes each spinning a BLAS pool of ``cores``
    threads oversubscribes the machine ``jobs``-fold; the trials are
    pure Python + small NumPy element-wise ops, so one thread per worker
    is optimal.  Env vars cover libraries loaded after the fork;
    ``threadpoolctl`` (if present) repins ones already loaded.
    """
    for var in _THREAD_ENV_VARS:
        os.environ[var] = "1"
    try:  # pragma: no cover - optional dependency
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=1)
    except Exception:
        pass


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


class TrialRunner:
    """Run trial specs, fanning across processes when ``jobs > 1``.

    Results always come back in spec order, and are bit-identical to
    inline execution (each trial is a pure function of its spec).  When
    the pool cannot be used — ``jobs=1``, pickling trouble, or the pool
    dying mid-flight — execution degrades gracefully to inline.
    """

    def __init__(self, jobs: Optional[int] = 1, *, chunksize: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize

    def map(self, specs: Sequence[TrialSpec]) -> List[Execution]:
        """Execute ``specs`` and return their executions, in order."""
        specs = list(specs)
        if self.jobs <= 1 or len(specs) <= 1:
            return [execute_trial(spec) for spec in specs]
        chunk = self.chunksize or max(1, len(specs) // (self.jobs * 4))
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(specs)),
                initializer=_pin_worker_threads,
            ) as pool:
                return list(pool.map(execute_trial, specs, chunksize=chunk))
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            # Pool died (OOM kill, fork failure, interpreter without
            # multiprocessing support...): the trials are side-effect
            # free, so rerunning everything inline is safe.
            import warnings

            warnings.warn(
                f"process pool failed ({exc!r}); falling back to inline execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return [execute_trial(spec) for spec in specs]


def run_trials(
    specs: Sequence[TrialSpec],
    *,
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> List[Execution]:
    """Convenience wrapper: ``TrialRunner(jobs).map(specs)``."""
    return TrialRunner(jobs, chunksize=chunksize).map(specs)
