"""Fan independent protocol trials across worker processes.

The unit of work is a :class:`TrialSpec` — plain, picklable data that
fully determines one protocol run.  :func:`execute_trial` is a pure
function of the spec: protocols are rebuilt by *name* inside the worker
(rule closures don't pickle) and any randomness flows from the spec's
integer ``seed`` through :mod:`repro.rng`, so a trial's result is
bit-identical whether it runs inline, in this process, or in any worker
of any pool.  That property is what lets the experiments keep their
"reproducible from one seed" contract while scaling across cores; it is
pinned by ``tests/test_parallel.py``.

Resilient execution
-------------------
Long sweeps die to one hung trial or one OOM-killed worker; the runner
therefore has a second, *resilient* mode, selected by any of the
``timeout`` / ``retries`` / ``checkpoint`` knobs:

* each trial attempt runs in its own worker process with a wall-clock
  ``timeout``; an expired attempt is terminated;
* timed-out and transiently-dead attempts are retried up to ``retries``
  times with exponential backoff (``backoff * 2**attempt`` seconds);
  a trial's *own* exception is deterministic and is never retried;
* a trial that exhausts its attempts becomes a :class:`FailedTrial`
  record in the result list instead of aborting the batch;
* with ``checkpoint=PATH``, every completed trial is appended to a
  JSONL file keyed by ``(index, spec fingerprint)``; re-running with
  the same path resumes a killed sweep, executing only the missing
  trials (stale or corrupt lines are ignored and re-run).

Without any of those knobs, :meth:`TrialRunner.map` is the original
pool path, byte-for-byte.

Long-lived owners
-----------------
A sweep no longer has to be a run-to-completion black box.  Two hooks
let a persistent owner — the ``repro serve`` control plane
(:mod:`repro.serve`), or any other daemon embedding the runner — drive
it incrementally:

* ``on_result`` is called once per trial as its outcome lands
  (``on_result(index, outcome, resumed)``), including trials restored
  from a resume checkpoint (``resumed=True``) and trials answered by
  batch-sweep dispatch.  Results are unchanged; the callback only
  observes them.
* ``cancel`` is a :class:`threading.Event`; once set, the runner stops
  dispatching, terminates in-flight resilient attempts, and raises
  :class:`SweepCancelled`.  Work already checkpointed stays
  checkpointed, so a cancelled job resumes exactly where it stopped.

In resilient mode the runner additionally converts a ``SIGTERM`` (main
thread, default disposition only) into :class:`SweepInterrupted`, so a
killed process unwinds through its ``finally`` blocks: the checkpoint
JSONL is flushed and closed, shared-memory segments are unlinked, and
the exit code is the conventional ``128 + signum``.

Sweep fast paths
----------------
Two transparent optimisations sit in front of both modes, each
preserving bit-identical results (pinned by
``tests/test_engine_equivalence.py``):

* **batch-sweep dispatch** (:mod:`repro.parallel.batch_sweep`): groups
  of same-(protocol, graph, budget) synchronous specs with no
  per-trial observation execute as one ``(k, n)`` batch-kernel call in
  the parent instead of ``k`` separate runs.  Disabled wholesale under
  tracing and in resilient mode (both need per-trial execution), and
  visibly so — see ``repro_batch_sweep_fallbacks_total``.
* **zero-copy graph handoff** (:mod:`repro.parallel.shared_graph`):
  when trials do cross a process boundary, each distinct graph ships
  once — large graphs as CSR buffers in shared memory that workers
  attach to, small ones as a memoized pickle payload deserialized once
  per worker — instead of being re-pickled into every spec.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _connection_wait
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.registry import PROTOCOLS, register_protocol
from repro.engine.result import RunResult
from repro.graphs.graph import Graph
from repro.types import NodeId

__all__ = [
    "PROTOCOLS",
    "BATCH_SWEEP_DEFAULT",
    "SHARED_GRAPHS_DEFAULT",
    "FailedTrial",
    "SweepCancelled",
    "SweepInterrupted",
    "TrialRunner",
    "TrialSpec",
    "execute_trial",
    "register_protocol",
    "resolve_jobs",
    "run_trials",
    "spec_fingerprint",
]

#: Signature of the :class:`TrialRunner` progress callback:
#: ``(index, outcome, resumed)`` — the spec index, its
#: :class:`~repro.engine.result.RunResult` or :class:`FailedTrial`, and
#: whether it was restored from a resume checkpoint rather than run.
OnResult = Callable[[int, Union[RunResult, "FailedTrial"], bool], None]


class SweepCancelled(RuntimeError):
    """Raised by :meth:`TrialRunner.map` when its ``cancel`` event is
    set mid-sweep, or its ``deadline`` passes.  Completed trials are
    already checkpointed (resilient mode) and reported through
    ``on_result``; re-running with the same checkpoint resumes from
    where the cancel landed.

    ``reason`` distinguishes the trigger: ``"cancel"`` (owner set the
    event) vs ``"deadline"`` (wall clock passed ``deadline``), so an
    owner like :class:`repro.serve.jobs.JobManager` can classify the
    unwind without racing re-reads of the event.
    """

    def __init__(self, message: str = "sweep cancelled", *,
                 reason: str = "cancel") -> None:
        super().__init__(message)
        self.reason = reason


class SweepInterrupted(SystemExit):
    """``SIGTERM`` during a resilient sweep, converted to an exception
    so the sweep unwinds orderly — checkpoint flushed and closed,
    shared-memory segments unlinked — before the process exits with the
    conventional ``128 + signum`` status."""

    def __init__(self, signum: int) -> None:
        super().__init__(128 + int(signum))
        self.signum = int(signum)


@contextlib.contextmanager
def _sigterm_unwinds():
    """Convert ``SIGTERM`` into :class:`SweepInterrupted` for the block.

    Installed only in the main thread (signal handlers cannot be set
    elsewhere) and only when the signal's disposition is the default
    (an embedding application that installed its own handler — the
    serve control plane does — keeps it).  ``SIGINT`` needs no
    conversion: ``KeyboardInterrupt`` already unwinds ``finally``
    blocks.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    try:
        previous = signal.getsignal(signal.SIGTERM)
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        yield
        return
    if previous is not signal.SIG_DFL:
        yield
        return

    def _raise(signum, frame):
        raise SweepInterrupted(signum)

    signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)

#: Process-wide defaults for the sweep fast paths, read by
#: :class:`TrialRunner` when the corresponding keyword is omitted.  The
#: CLI's ``--no-batch-sweep`` / ``--shared-graphs`` flags set these so
#: every runner built downstream (experiments construct their own)
#: honours them.
BATCH_SWEEP_DEFAULT: bool = True
SHARED_GRAPHS_DEFAULT: str = "auto"

_SHARED_GRAPH_POLICIES = {"auto": None, "always": True, "never": False}


@dataclass(frozen=True)
class TrialSpec:
    """One protocol run, as plain data.

    Attributes
    ----------
    protocol:
        Key into :data:`repro.engine.PROTOCOLS` (``"smm"``, ``"sis"``,
        ...).
    graph / config:
        The topology and initial configuration (``None`` = clean start).
    daemon:
        ``"synchronous"`` (default), ``"central"``,
        ``"synchronized-central"`` (the E5 refinement), or
        ``"distributed"``.
    max_rounds:
        Budget, forwarded as ``max_rounds`` (``max_moves`` for the
        central daemon).  ``None`` = the runner's documented default.
    record_history:
        Keep per-round configurations (needed by E3/E6-style replays).
    seed:
        Integer seed for daemons that consume randomness.  Derive it in
        the parent (e.g. :func:`repro.rng.trial_seeds`) so the schedule
        is a function of the spec, not of execution order.
    options:
        Extra keyword arguments for the runner, as a sorted tuple of
        ``(name, value)`` pairs (kept hashable/picklable).
    backend:
        Execution backend (:mod:`repro.engine`): ``"reference"`` (the
        default), ``"auto"``, or an explicit registered kernel such as
        ``"vectorized"``/``"batch"``.
    telemetry:
        Attach a :class:`~repro.observability.RunTelemetry` record to
        the trial's result.  Telemetry rides back through the ordinary
        pickled :class:`RunResult`, so per-worker collection needs no
        extra plumbing; aggregate with
        :func:`repro.observability.merge_telemetry` or write records out
        with :class:`repro.observability.TelemetrySink`.
    trace:
        Collect a span fragment for this trial
        (:mod:`repro.observability.tracing`) when no tracer is ambient
        — how worker processes trace: the fragment rides back on
        ``result.trace`` and the parent grafts it into the sweep's
        tracer.  :meth:`TrialRunner.map` sets this itself whenever a
        tracer is installed; callers normally never do.  Excluded from
        :func:`spec_fingerprint` (tracing does not change the result),
        so toggling ``--trace`` never invalidates resume checkpoints.

        Metrics need no spec flag at all: the registry's counters come
        from the :class:`RunResult` summary fields and its latency
        histogram from the ``elapsed`` wall-clock the engine stamps on
        every result, so the parent records everything after the sweep
        without asking workers for extra collection.
    """

    protocol: str
    graph: Graph
    config: Optional[Mapping[NodeId, object]] = None
    daemon: str = "synchronous"
    max_rounds: Optional[int] = None
    record_history: bool = False
    seed: Optional[int] = None
    options: Tuple[Tuple[str, object], ...] = ()
    backend: str = "reference"
    telemetry: bool = False
    trace: bool = False


def execute_trial(spec: TrialSpec) -> RunResult:
    """Run one trial — a pure function of the spec.

    Dispatches through :func:`repro.engine.run`, the single engine
    front door (protocol lookup, daemon routing and backend selection
    all live there).  ``spec.trace`` builds a local tracer when none is
    ambient (the worker-process case) and attaches its export to
    ``result.trace``."""
    if spec.trace:
        from repro.observability import tracing as _tracing

        if _tracing.current_tracer() is None:
            tracer = _tracing.Tracer()
            with _tracing.use_tracer(tracer):
                result = _dispatch_trial(spec)
            result.trace = tracer.export()
            return result
    return _dispatch_trial(spec)


def _dispatch_trial(spec: TrialSpec) -> RunResult:
    from repro.engine import run as engine_run

    options = dict(spec.options)
    if spec.telemetry:
        # only forwarded when requested, so runners without the keyword
        # (externally registered backends) keep working untouched
        options["telemetry"] = True
    return engine_run(
        spec.protocol,
        spec.graph,
        spec.config,
        daemon=spec.daemon,
        backend=spec.backend,
        rng=spec.seed,
        max_rounds=spec.max_rounds,
        record_history=spec.record_history,
        **options,
    )


@dataclass(frozen=True)
class FailedTrial:
    """A trial that could not produce a result in resilient mode.

    Takes the trial's slot in the result list (so indices still line up
    with the spec list) instead of aborting the whole batch.

    ``error_type``/``error`` name the last failure: the exception type
    raised *by the trial* (never retried — a pure function of the spec
    fails deterministically), ``"Timeout"`` for a wall-clock expiry, or
    ``"WorkerDeath"`` when the worker process vanished (signal, OOM
    kill).  ``attempts`` counts attempts actually made; ``timed_out``
    flags that the last attempt hit the timeout.
    """

    index: int
    fingerprint: str
    error_type: str
    error: str
    attempts: int
    timed_out: bool = False


def _fingerprint_canon(value):
    """JSON-serializable stand-in for arbitrary spec option values."""
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_fingerprint_canon(v) for v in value]
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
    except Exception:  # pragma: no cover - numpy always present in repo
        pass
    return repr(value)


def spec_fingerprint(spec: TrialSpec) -> str:
    """A short stable hash of everything that determines the trial's
    result — the checkpoint key that guards resumes against spec-list
    drift, and the content address of the serve result store.  Graphs
    hash by node/edge lists, configurations by sorted items, option
    values through ``to_dict`` when they have one
    (:class:`~repro.resilience.FaultPlan` does) and ``repr`` otherwise.

    The serialization schema version
    (:data:`repro.analysis.serialize.SCHEMA_VERSION`) is folded into
    the hash, so every fingerprint-keyed artefact — resume checkpoints,
    result-store entries — invalidates wholesale across incompatible
    releases instead of deserializing stale bytes.  The exact format is
    pinned by ``tests/test_parallel.py::TestFingerprintFormat``.
    """
    from repro.analysis.serialize import SCHEMA_VERSION

    payload = {
        "schema": SCHEMA_VERSION,
        "protocol": spec.protocol,
        "nodes": [repr(n) for n in spec.graph.nodes],
        "edges": sorted(sorted(repr(x) for x in e) for e in spec.graph.edges),
        "config": (
            None
            if spec.config is None
            else sorted(
                (repr(k), _fingerprint_canon(v))
                for k, v in dict(spec.config).items()
            )
        ),
        "daemon": spec.daemon,
        "max_rounds": spec.max_rounds,
        "record_history": spec.record_history,
        "seed": None if spec.seed is None else int(spec.seed),
        "options": [
            [name, _fingerprint_canon(value)] for name, value in spec.options
        ],
        "backend": spec.backend,
        "telemetry": spec.telemetry,
    }
    blob = json.dumps(payload, sort_keys=True, default=_fingerprint_canon)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class _TrialFailure:
    """Picklable wrapper tagging an exception as *raised by a trial*,
    as opposed to by the pool machinery.  Without the tag, a trial's
    own ``OSError``/``RuntimeError`` escaping ``pool.map`` is
    indistinguishable from pool death — and was silently swallowed by
    the inline-fallback path, re-running every trial (including the
    failing one, now raising from a misleading inline stack)."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def _execute_trial_tagged(spec: TrialSpec):
    """Worker entry point: run the trial, tagging its own exceptions."""
    try:
        return execute_trial(spec)
    except Exception as exc:
        return _TrialFailure(exc)


def _resilient_worker(conn, spec: TrialSpec) -> None:
    """Worker entry point of the resilient mode: one attempt, one
    process.  Exceptions travel as ``(type name, message)`` strings —
    never pickled, so an unpicklable exception cannot kill the
    transport and masquerade as worker death."""
    _pin_worker_threads()
    try:
        payload = ("ok", execute_trial(spec))
    except Exception as exc:
        payload = ("error", type(exc).__name__, str(exc))
    try:
        conn.send(payload)
    except Exception:
        try:
            conn.send(
                ("error", "SerializationError", "result could not be pickled")
            )
        except Exception:  # pragma: no cover - pipe gone: parent sees EOF
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# worker environment
# ----------------------------------------------------------------------
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _pin_worker_threads() -> None:
    """Pin BLAS/OMP pools to one thread in this worker.

    ``jobs`` worker processes each spinning a BLAS pool of ``cores``
    threads oversubscribes the machine ``jobs``-fold; the trials are
    pure Python + small NumPy element-wise ops, so one thread per worker
    is optimal.  Env vars cover libraries loaded after the fork;
    ``threadpoolctl`` (if present) repins ones already loaded.

    Also clears observation context the fork start method copies from
    the parent: the parent's tracer / metrics registry objects are
    unreachable from a worker, and a worker that still *sees* them
    would record spans into a dead copy instead of building the local
    fragment that rides back on the result (``spec.trace``).
    """
    from repro.observability import metrics as _metrics
    from repro.observability import tracing as _tracing

    _tracing._CURRENT.set(None)
    _metrics._CURRENT.set(None)
    for var in _THREAD_ENV_VARS:
        os.environ[var] = "1"
    try:  # pragma: no cover - optional dependency
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=1)
    except Exception:
        pass


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# resilient-mode plumbing
# ----------------------------------------------------------------------
@dataclass
class _Attempt:
    """One in-flight worker process of the resilient scheduler."""

    index: int
    attempt: int  # 0-based attempt number
    process: object
    deadline: Optional[float]  # monotonic seconds, None = no timeout


def _checkpoint_record(index: int, fingerprint: str, outcome) -> Dict[str, object]:
    if isinstance(outcome, FailedTrial):
        return {
            "index": index,
            "fingerprint": fingerprint,
            "status": "failed",
            "error_type": outcome.error_type,
            "error": outcome.error,
            "attempts": outcome.attempts,
            "timed_out": outcome.timed_out,
        }
    from repro.analysis.serialize import execution_to_dict

    return {
        "index": index,
        "fingerprint": fingerprint,
        "status": "ok",
        "result": execution_to_dict(outcome),
    }


def _load_checkpoint(
    path: str, fingerprints: Sequence[str]
) -> Dict[int, Union[RunResult, FailedTrial]]:
    """Completed trials from a checkpoint file, keyed by spec index.

    A line counts only when it parses, its index is in range, and its
    fingerprint matches the current spec at that index — anything else
    (truncated write from a kill, a spec list that changed since) is
    ignored and the trial simply re-runs.
    """
    from repro.analysis.serialize import execution_from_dict

    out: Dict[int, Union[RunResult, FailedTrial]] = {}
    if not os.path.exists(path):
        return out
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                index = int(record["index"])
                if not 0 <= index < len(fingerprints):
                    continue
                if record.get("fingerprint") != fingerprints[index]:
                    continue
                if record.get("status") == "ok":
                    out[index] = execution_from_dict(record["result"])
                elif record.get("status") == "failed":
                    out[index] = FailedTrial(
                        index=index,
                        fingerprint=fingerprints[index],
                        error_type=str(record.get("error_type", "Unknown")),
                        error=str(record.get("error", "")),
                        attempts=int(record.get("attempts", 1)),
                        timed_out=bool(record.get("timed_out", False)),
                    )
            except Exception:
                continue  # corrupt line: re-run that trial
    return out


class TrialRunner:
    """Run trial specs, fanning across processes when ``jobs > 1``.

    Results always come back in spec order, and are bit-identical to
    inline execution (each trial is a pure function of its spec).  When
    the pool cannot be used — ``jobs=1``, pickling trouble, or the pool
    dying mid-flight — execution degrades gracefully to inline.

    Setting any of ``timeout`` (per-trial wall-clock seconds),
    ``retries`` (bounded retry of timed-out / transiently-dead
    attempts, with ``backoff * 2**attempt`` seconds between them) or
    ``checkpoint`` (JSONL resume file) switches :meth:`map` to the
    resilient mode documented in the module docstring; the result list
    may then contain :class:`FailedTrial` records in the failed trials'
    slots.

    ``batch_sweep`` (default :data:`BATCH_SWEEP_DEFAULT`) toggles
    batch-sweep dispatch; ``shared_graphs`` — ``"auto"``, ``"always"``
    or ``"never"`` (default :data:`SHARED_GRAPHS_DEFAULT`) — selects
    how graphs ship to worker processes (shared-memory CSR vs memoized
    pickle; see :mod:`repro.parallel.shared_graph`).  Both fast paths
    are result-preserving; the knobs exist for benchmarking and for
    environments without a usable shared-memory filesystem.

    ``on_result`` and ``cancel`` are the long-lived-owner hooks (module
    docstring): a per-trial progress callback
    ``(index, outcome, resumed)`` and a :class:`threading.Event` whose
    setting makes the sweep stop and raise :class:`SweepCancelled`.
    ``deadline`` is the same unwind on a clock instead of an event: an
    absolute ``time.time()`` timestamp after which the sweep stops with
    ``SweepCancelled(reason="deadline")`` at the next trial boundary.
    None of the three changes any result.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        *,
        chunksize: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.1,
        checkpoint: Optional[str] = None,
        batch_sweep: Optional[bool] = None,
        shared_graphs: Optional[str] = None,
        on_result: Optional[OnResult] = None,
        cancel: Optional[threading.Event] = None,
        deadline: Optional[float] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.checkpoint = None if checkpoint is None else str(checkpoint)
        self.batch_sweep = (
            BATCH_SWEEP_DEFAULT if batch_sweep is None else bool(batch_sweep)
        )
        if shared_graphs is None:
            shared_graphs = SHARED_GRAPHS_DEFAULT
        if shared_graphs not in _SHARED_GRAPH_POLICIES:
            raise ValueError(
                f"shared_graphs must be one of "
                f"{sorted(_SHARED_GRAPH_POLICIES)}, got {shared_graphs!r}"
            )
        self.shared_graphs = shared_graphs
        self.on_result = on_result
        self.cancel = cancel
        if deadline is not None:
            deadline = float(deadline)
        self.deadline = deadline

    @property
    def resilient(self) -> bool:
        return (
            self.timeout is not None
            or self.retries > 0
            or self.checkpoint is not None
        )

    # ------------------------------------------------------------------
    # long-lived-owner hooks
    # ------------------------------------------------------------------
    def _notify(self, index: int, outcome, resumed: bool = False) -> None:
        if self.on_result is not None:
            self.on_result(index, outcome, resumed)

    def _cancel_reason(self) -> Optional[str]:
        if self.cancel is not None and self.cancel.is_set():
            return "cancel"
        if self.deadline is not None and time.time() > self.deadline:
            return "deadline"
        return None

    def _check_cancel(self) -> None:
        reason = self._cancel_reason()
        if reason == "cancel":
            raise SweepCancelled("sweep cancelled by owner")
        if reason == "deadline":
            raise SweepCancelled("sweep deadline exceeded", reason="deadline")

    def map(
        self, specs: Sequence[TrialSpec]
    ) -> List[Union[RunResult, FailedTrial]]:
        """Execute ``specs`` and return their results, in order.

        When a tracer / metrics registry is ambiently installed
        (:func:`repro.observability.use_tracer` /
        :func:`~repro.observability.use_registry` — the CLI's
        ``--trace`` / ``--metrics``), traced trials collect span
        fragments in their workers and the runner grafts them into the
        tracer here in the parent; metrics are recorded entirely
        parent-side from the results (counters from the summary
        fields, latency from the engine-stamped ``elapsed``).  Both
        happen *in spec order*, so traces and counter exports are
        deterministic for any ``jobs``.  Results themselves stay
        bit-identical to an unobserved run.
        """
        from repro.observability import metrics as _metrics
        from repro.observability import tracing as _tracing

        specs = list(specs)
        tracer = _tracing.current_tracer()
        registry = _metrics.current_registry()
        traced = tracer is not None
        self._check_cancel()

        # ------------------------------------------------------------
        # fast path 1: batch-sweep dispatch (parent-side, result-
        # preserving; per-trial observation modes bypass it visibly)
        # ------------------------------------------------------------
        batched: Dict[int, RunResult] = {}
        if self.batch_sweep and len(specs) > 1:
            from repro.parallel import batch_sweep as _batch_sweep

            if self.resilient or traced:
                _batch_sweep.record_fallback(
                    "resilient" if self.resilient else "traced"
                )
            else:
                batched = _batch_sweep.dispatch_groups(specs)
        for index in sorted(batched):
            self._notify(index, batched[index])
        if batched:
            rest = [spec for i, spec in enumerate(specs) if i not in batched]
            rest_indices = [i for i in range(len(specs)) if i not in batched]
        else:
            rest = specs
            rest_indices = list(range(len(specs)))

        # ------------------------------------------------------------
        # fast path 2: per-sweep graph handoff for everything that will
        # cross a process boundary (resilient mode forks per attempt)
        # ------------------------------------------------------------
        store = None
        try:
            if rest and (
                self.resilient or (self.jobs > 1 and len(rest) > 1)
            ):
                from repro.parallel.shared_graph import SharedGraphStore

                store = SharedGraphStore(
                    _SHARED_GRAPH_POLICIES[self.shared_graphs]
                )
                rest = store.pack_specs(rest)
            if self.resilient:
                # batching never applies here, so indices line up; a
                # SIGTERM unwinds through the finally below (checkpoint
                # closed, segments unlinked) instead of killing us cold
                with _sigterm_unwinds():
                    outcomes, attempts, resumed = self._map_resilient(
                        rest, traced=traced
                    )
            else:
                rest_outcomes = self._map_plain(
                    rest, traced=traced, indices=rest_indices
                )
                attempts, resumed = {}, frozenset()
                if batched:
                    rest_iter = iter(rest_outcomes)
                    outcomes = [
                        batched[i] if i in batched else next(rest_iter)
                        for i in range(len(specs))
                    ]
                else:
                    outcomes = rest_outcomes
        finally:
            if store is not None:
                store.close()
        if traced:
            _graft_trial_spans(tracer, outcomes, attempts, resumed)
        if registry is not None:
            _record_trial_metrics(registry, outcomes, attempts, resumed)
        return outcomes

    def _map_plain(
        self,
        specs: List[TrialSpec],
        *,
        traced: bool,
        indices: Optional[Sequence[int]] = None,
    ) -> List[Union[RunResult, FailedTrial]]:
        """``indices`` maps positions in ``specs`` back to positions in
        the caller's full spec list (batch-sweep dispatch may have
        answered some up front) — it labels ``on_result`` calls only."""
        specs = _prepare_specs(specs, traced=traced)
        indices = list(indices) if indices is not None else list(range(len(specs)))
        if self.jobs <= 1 or len(specs) <= 1:
            outcomes = []
            for j, spec in enumerate(specs):
                self._check_cancel()
                outcome = _execute_local(spec)
                self._notify(indices[j], outcome)
                outcomes.append(outcome)
            return outcomes
        chunk = self.chunksize or max(1, len(specs) // (self.jobs * 4))
        outcomes: List[Union[RunResult, FailedTrial]] = []
        failure: Optional[_TrialFailure] = None
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(specs)),
                initializer=_pin_worker_threads,
            ) as pool:
                # pool.map yields in spec order as chunks complete, so
                # progress streams without changing result order.  Trial
                # exceptions come back tagged as _TrialFailure and are
                # re-raised *outside* this try: an exception reaching
                # the except clause below really is pool machinery
                # failing — a trial's own OSError or RuntimeError must
                # propagate, not trigger the fallback (and must not be
                # mistaken for pool death by being raised in here).
                for outcome in pool.map(
                    _execute_trial_tagged, specs, chunksize=chunk
                ):
                    if self._cancel_reason() is not None:
                        pool.shutdown(wait=False, cancel_futures=True)
                        self._check_cancel()
                    if isinstance(outcome, _TrialFailure):
                        failure = outcome
                        pool.shutdown(wait=False, cancel_futures=True)
                        break
                    self._notify(indices[len(outcomes)], outcome)
                    outcomes.append(outcome)
        except SweepCancelled:
            raise
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            # Pool died (OOM kill, fork failure, interpreter without
            # multiprocessing support...): the trials are side-effect
            # free, so running the remainder inline is safe (results
            # already yielded — and notified — are kept).
            import warnings

            warnings.warn(
                f"process pool failed ({exc!r}); falling back to inline execution",
                RuntimeWarning,
                stacklevel=2,
            )
            for j in range(len(outcomes), len(specs)):
                self._check_cancel()
                outcome = _execute_local(specs[j])
                self._notify(indices[j], outcome)
                outcomes.append(outcome)
            return outcomes
        if failure is not None:
            raise failure.error
        return outcomes

    # ------------------------------------------------------------------
    # resilient mode
    # ------------------------------------------------------------------
    def _map_resilient(
        self, specs: List[TrialSpec], *, traced: bool = False
    ) -> Tuple[
        List[Union[RunResult, FailedTrial]], Dict[int, int], frozenset
    ]:
        """Returns ``(outcomes, attempts made per executed index,
        checkpoint-resumed indices)``.  Fingerprints come from the
        *original* specs — the trace flag is observation-only and must
        not invalidate resumes."""
        fingerprints = [spec_fingerprint(spec) for spec in specs]
        run_specs = _prepare_specs(specs, traced=traced)
        results: Dict[int, Union[RunResult, FailedTrial]] = {}
        attempts: Dict[int, int] = {}
        resumed: frozenset = frozenset()
        writer = None
        if self.checkpoint is not None:
            loaded = _load_checkpoint(self.checkpoint, fingerprints)
            results.update(loaded)
            resumed = frozenset(loaded)
            for index in sorted(loaded):
                self._notify(index, loaded[index], resumed=True)
            writer = open(self.checkpoint, "a", encoding="utf-8")
        try:
            self._run_scheduler(run_specs, fingerprints, results, writer, attempts)
        finally:
            if writer is not None:
                writer.close()
        return [results[i] for i in range(len(specs))], attempts, resumed

    def _run_scheduler(
        self, specs, fingerprints, results, writer, attempts=None
    ) -> None:
        ctx = multiprocessing.get_context()
        pending = deque(
            (i, 0) for i in range(len(specs)) if i not in results
        )
        backing_off: List[Tuple[float, int, int]] = []  # (ready_at, idx, att)
        running: Dict[object, _Attempt] = {}  # parent conn -> attempt

        def record(index: int, outcome, made: int = 1) -> None:
            results[index] = outcome
            if attempts is not None:
                attempts[index] = made
            if writer is not None:
                json.dump(
                    _checkpoint_record(index, fingerprints[index], outcome),
                    writer,
                )
                writer.write("\n")
                writer.flush()
            self._notify(index, outcome)

        def retry_or_fail(att: _Attempt, error_type: str, message: str) -> None:
            timed_out = error_type == "Timeout"
            if att.attempt < self.retries:
                ready_at = time.monotonic() + self.backoff * (2**att.attempt)
                backing_off.append((ready_at, att.index, att.attempt + 1))
                backing_off.sort()
            else:
                record(
                    att.index,
                    FailedTrial(
                        index=att.index,
                        fingerprint=fingerprints[att.index],
                        error_type=error_type,
                        error=message,
                        attempts=att.attempt + 1,
                        timed_out=timed_out,
                    ),
                    made=att.attempt + 1,
                )

        def reap(att: _Attempt, kill: bool = False) -> None:
            if kill:
                att.process.terminate()
                att.process.join(1.0)
                if att.process.is_alive():  # pragma: no cover - stubborn
                    att.process.kill()
            att.process.join()

        try:
            self._scheduler_loop(
                ctx,
                specs,
                fingerprints,
                pending,
                backing_off,
                running,
                record,
                retry_or_fail,
                reap,
            )
        finally:
            # exceptional unwind (cancel, SIGTERM, a raising callback):
            # in-flight attempts must not outlive the sweep — their
            # results have nowhere to land and the worker processes
            # would keep shared-memory attachments alive
            for conn, att in list(running.items()):
                reap(att, kill=True)
                conn.close()
            running.clear()

    def _scheduler_loop(
        self,
        ctx,
        specs,
        fingerprints,
        pending,
        backing_off,
        running,
        record,
        retry_or_fail,
        reap,
    ) -> None:
        while pending or backing_off or running:
            self._check_cancel()
            now = time.monotonic()
            while backing_off and backing_off[0][0] <= now:
                _, index, attempt = backing_off.pop(0)
                pending.append((index, attempt))
            while pending and len(running) < self.jobs:
                index, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_resilient_worker,
                    args=(child_conn, specs[index]),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                started = time.monotonic()
                running[parent_conn] = _Attempt(
                    index=index,
                    attempt=attempt,
                    process=process,
                    deadline=(
                        None if self.timeout is None else started + self.timeout
                    ),
                )
            if not running:
                # everything is backing off: sleep to the earliest retry
                time.sleep(max(0.0, backing_off[0][0] - time.monotonic()))
                continue
            wake_points = [
                att.deadline for att in running.values() if att.deadline is not None
            ]
            if backing_off:
                wake_points.append(backing_off[0][0])
            wait_for = (
                None
                if not wake_points
                else max(0.0, min(wake_points) - time.monotonic())
            )
            ready = _connection_wait(list(running), timeout=wait_for)
            for conn in ready:
                att = running.pop(conn)
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    payload = None  # worker died before sending
                conn.close()
                reap(att)
                if payload is None:
                    retry_or_fail(att, "WorkerDeath", "worker process died")
                elif payload[0] == "ok":
                    record(att.index, payload[1], made=att.attempt + 1)
                else:
                    # the trial's own exception: deterministic, no retry
                    record(
                        att.index,
                        FailedTrial(
                            index=att.index,
                            fingerprint=fingerprints[att.index],
                            error_type=payload[1],
                            error=payload[2],
                            attempts=att.attempt + 1,
                        ),
                        made=att.attempt + 1,
                    )
            now = time.monotonic()
            for conn, att in list(running.items()):
                if att.deadline is not None and att.deadline <= now:
                    del running[conn]
                    reap(att, kill=True)
                    conn.close()
                    retry_or_fail(
                        att,
                        "Timeout",
                        f"trial exceeded {self.timeout}s wall clock",
                    )


# ----------------------------------------------------------------------
# observation plumbing (tracing + metrics; no-ops when neither is on)
# ----------------------------------------------------------------------
def _prepare_specs(
    specs: List[TrialSpec], *, traced: bool
) -> List[TrialSpec]:
    """Stamp the trace flag onto the specs actually dispatched.  The
    originals stay untouched — fingerprints, and therefore resume
    checkpoints, are computed from them."""
    if not traced:
        return specs
    return [replace(spec, trace=True) for spec in specs]


def _execute_local(spec: TrialSpec) -> RunResult:
    """Inline execution of a (possibly observation-stamped) spec.

    Suppresses the ambient tracer for traced specs so the trial builds
    a local fragment exactly as a worker process would — ``jobs=1`` and
    ``jobs=N`` then produce identical span structure, grafted by the
    same code path."""
    if spec.trace:
        from repro.observability import tracing as _tracing

        if _tracing.current_tracer() is not None:
            with _tracing.use_tracer(None):
                return execute_trial(spec)
    return execute_trial(spec)


def _graft_trial_spans(tracer, outcomes, attempts, resumed) -> None:
    """Attach each trial's span to the sweep tracer, in spec order.

    Executed trials contribute the fragment their worker recorded
    (annotated with the attempt count when the resilient scheduler ran
    them more than once); failed and checkpoint-resumed trials get a
    point span so the timeline still accounts for every slot."""
    for index, outcome in enumerate(outcomes):
        attrs: Dict[str, object] = {"trial": index}
        made = attempts.get(index)
        if made is not None and made > 1:
            attrs["attempts"] = made
        if isinstance(outcome, FailedTrial):
            now = tracer.now()
            tracer.record(
                f"trial:{index}",
                now,
                now,
                failed=outcome.error_type,
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
                **attrs,
            )
            continue
        if index in resumed:
            # the checkpointed fragment (if any) was recorded by an
            # earlier invocation — its wall-clock belongs to that run's
            # timeline, so note the resume instead of grafting it
            outcome.trace = None
            now = tracer.now()
            tracer.record(f"trial:{index}", now, now, resumed=True, **attrs)
            continue
        if outcome.trace:
            for fragment in outcome.trace:
                tracer.graft(fragment, **attrs)
            outcome.trace = None


def _record_trial_metrics(registry, outcomes, attempts, resumed) -> None:
    """Fold the batch into the ambient metrics registry, in spec order
    (deterministic for any ``jobs``)."""
    from repro.observability.metrics import (
        record_failed_trial,
        record_run_result,
    )

    executed = len(outcomes) - len(resumed)
    if executed:
        registry.counter(
            "repro_trials_started_total",
            "Trials dispatched for execution (checkpoint-resumed "
            "trials excluded)",
        ).inc(executed)
    if resumed:
        registry.counter(
            "repro_trials_resumed_total",
            "Trials restored from a resume checkpoint instead of re-running",
        ).inc(len(resumed))
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, FailedTrial):
            record_failed_trial(registry, outcome)
            continue
        record_run_result(registry, outcome)
        extra = attempts.get(index, 1) - 1
        if extra > 0:
            registry.counter(
                "repro_trial_retries_total", "Extra attempts made for trials"
            ).inc(extra)


def run_trials(
    specs: Sequence[TrialSpec],
    *,
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    batch_sweep: Optional[bool] = None,
    shared_graphs: Optional[str] = None,
    on_result: Optional[OnResult] = None,
    cancel: Optional[threading.Event] = None,
    deadline: Optional[float] = None,
) -> List[Union[RunResult, FailedTrial]]:
    """Convenience wrapper: ``TrialRunner(...).map(specs)``.  The
    ``timeout``/``retries``/``backoff``/``checkpoint`` knobs select the
    resilient mode; ``batch_sweep``/``shared_graphs`` tune the sweep
    fast paths; ``on_result``/``cancel``/``deadline`` are the
    long-lived-owner hooks (see :class:`TrialRunner`)."""
    return TrialRunner(
        jobs,
        chunksize=chunksize,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        checkpoint=checkpoint,
        batch_sweep=batch_sweep,
        shared_graphs=shared_graphs,
        on_result=on_result,
        cancel=cancel,
        deadline=deadline,
    ).map(specs)
