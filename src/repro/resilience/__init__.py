"""In-run fault injection and resilient sweep execution.

Two halves:

* **Fault campaigns** (:mod:`repro.resilience.plan`,
  :mod:`repro.resilience.campaign`, :mod:`repro.resilience.vector`):
  a :class:`FaultPlan` of scheduled :class:`FaultEvent` records applied
  *mid-run* at round boundaries — the paper's "occasional link failures
  and host crashes" dropped into a live run — on the reference engine
  and the vectorized SMM/SIS kernels alike (engine capability
  ``"faults"``), with per-event recovery metrics in
  ``result.telemetry.fault_events`` and byte-identical counters across
  backends for the same plan + seed.

* **Resilient sweeps** (:mod:`repro.parallel.trial_runner`): the trial
  runner's per-trial timeouts, bounded retries and JSONL checkpointing
  live with the runner itself; this package only defines the fault
  model.

Entry points::

    from repro.resilience import FaultEvent, FaultPlan
    plan = FaultPlan(events=(FaultEvent(round=8, kind="perturb"),), seed=3)
    result = engine.run("smm", graph, cfg, backend="vectorized",
                        fault_plan=plan)
    result.telemetry.fault_events[0]["recovery_rounds"]
"""

from repro.resilience.campaign import (
    CampaignRuntime,
    run_reference_campaign,
    select_victims,
)
from repro.resilience.plan import EVENT_KINDS, FaultEvent, FaultPlan
from repro.resilience.vector import run_vector_campaign

__all__ = [
    "CampaignRuntime",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "run_reference_campaign",
    "run_vector_campaign",
    "select_victims",
]
