"""The fault-campaign driver: apply a :class:`FaultPlan` mid-run.

One driver serves every backend.  A campaign is a sequence of
*segments* — stretches of ordinary synchronous rounds between fault
events — executed by a backend adapter, stitched together here with the
global round accounting, the telemetry recording and the per-event
recovery metrics.  The adapter interface is tiny:

* ``run_segment(budget)`` — advance the run up to ``budget`` rounds or
  quiescence, reporting per-round counters and the touched nodes;
* ``apply(event, gen)`` — apply one fault event to the live state,
  returning the fault sites;
* ``graph`` / ``config()`` — the current topology and configuration.

Round semantics: an event with ``round = r`` fires after global round
``r``.  If the system stabilizes earlier, the quiescent rounds up to
``r`` still count (in the paper's model the beacons keep being
exchanged in a stable system); they appear as empty ``{}`` move-log
entries.  Events scheduled past the round budget never fire.  The
recovery window of an event is the segment that follows it — up to the
next event or the budget — and produces one record in
``telemetry.fault_events``: whether the system re-stabilized, how many
rounds and moves it took, how many nodes moved, and the containment
radius in hops from the fault sites (:mod:`repro.analysis.containment`).

All counter fields — rounds, moves by rule, and every number in the
recovery records — are byte-identical across backends for the same plan
and seed, because victim selection and state redraws run against each
event's own seeded generator, independent of the daemon's stream.
Campaign runs always collect telemetry (the recovery metrics live
there), whatever the ``telemetry`` flag says.

``history`` (reference backend, ``record_history=True``) gains one
extra entry per fault event — the configuration right after the fault
is applied — so its length is ``rounds + 1 + len(fault_events)``
rather than the ordinary ``rounds + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.containment import containment_radius, edge_fault_sites
from repro.core.configuration import Configuration
from repro.core.faults import migrate_configuration, perturb_victims
from repro.errors import ExperimentError, ProtocolError, StabilizationTimeout
from repro.graphs.graph import Graph
from repro.graphs.mutations import apply_churn
from repro.resilience.plan import FaultEvent, FaultPlan
from repro.rng import ensure_rng
from repro.types import NodeId

__all__ = [
    "CampaignRuntime",
    "run_reference_campaign",
    "select_victims",
]


# ----------------------------------------------------------------------
# event application (shared by every backend)
# ----------------------------------------------------------------------
def select_victims(graph: Graph, event: FaultEvent, gen) -> Tuple[NodeId, ...]:
    """The victim nodes of a node-targeting event, in draw order.

    Explicit ``event.nodes`` are validated against the graph; otherwise
    victims are drawn through :func:`~repro.core.faults.perturb_victims`
    (one ``gen.choice`` call over dense indices — the vectorized fast
    path mirrors the same draw on the dense array).
    """
    if event.nodes:
        index = graph.dense_index()
        for node in event.nodes:
            if node not in index:
                raise ExperimentError(
                    f"fault event names unknown node {node!r}"
                )
        return tuple(event.nodes)
    return perturb_victims(graph, event.victim_count(graph.n), gen)


def _sanitize(protocol, graph: Graph, node: NodeId, state):
    """One node's state carried across a believed-topology change, with
    the same narrow error semantics as ``migrate_configuration``."""
    fn = getattr(protocol, "sanitize_state", None)
    if fn is not None:
        return fn(node, graph, state)
    try:
        protocol.validate_state(node, graph, state)
    except ProtocolError:
        return protocol.initial_state(node, graph)
    return state


def _incident_edges(graph: Graph, nodes) -> Tuple[Tuple[NodeId, NodeId], ...]:
    """Canonical edges incident to ``nodes``, deduplicated, sorted."""
    out = set()
    for node in nodes:
        for other in graph.neighbors(node):
            out.add((node, other) if node <= other else (other, node))
    return tuple(sorted(out))


class CampaignRuntime:
    """Mutable campaign state shared across events: which nodes are
    crashed, and which links their crash took down (so ``rejoin``
    restores exactly those, deferring links whose other endpoint is
    still down)."""

    def __init__(self) -> None:
        self._down: Dict[NodeId, List[Tuple[NodeId, NodeId]]] = {}

    @property
    def crashed(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._down))

    def apply(
        self, protocol, graph: Graph, config: Configuration, event: FaultEvent, gen
    ) -> Tuple[Graph, Configuration, Tuple[NodeId, ...]]:
        """Apply ``event``; returns ``(graph, config, fault_sites)``."""
        kind = event.kind
        if kind in ("perturb", "message_dup"):
            victims = select_victims(graph, event, gen)
            changes = {
                node: protocol.random_state(node, graph, gen) for node in victims
            }
            out = config.updated(changes)
            protocol.validate_configuration(graph, out)
            return graph, out, victims
        if kind == "message_loss":
            return self._message_loss(protocol, graph, config, event, gen)
        if kind == "churn":
            return self._churn(protocol, graph, config, event, gen)
        if kind == "crash":
            return self._crash(protocol, graph, config, event, gen)
        if kind == "rejoin":
            return self._rejoin(protocol, graph, config, event)
        raise ExperimentError(f"unknown fault kind {kind!r}")  # pragma: no cover

    def _message_loss(self, protocol, graph, config, event, gen):
        # the victims' beacons vanish long enough for their neighbours
        # to evict them: every OTHER node sanitizes its state against a
        # phantom topology without the victims' links.  The true
        # topology is unchanged — this is a belief fault, not a link
        # fault.  (A no-op for bit protocols such as SIS, whose states
        # reference no neighbour.)
        victims = select_victims(graph, event, gen)
        phantom = graph.with_edges(remove=_incident_edges(graph, victims))
        victim_set = set(victims)
        out = {}
        for node in graph.nodes:
            state = config[node]
            if node not in victim_set:
                state = _sanitize(protocol, phantom, node, state)
            out[node] = state
        cfg = Configuration(out)
        protocol.validate_configuration(graph, cfg)
        return graph, cfg, victims

    def _churn(self, protocol, graph, config, event, gen):
        if event.add_edges or event.remove_edges:
            new_graph = graph.with_edges(
                add=event.add_edges, remove=event.remove_edges
            )
            changed = (*event.add_edges, *event.remove_edges)
        else:
            new_graph, churn_events = apply_churn(graph, event.churn, gen)
            changed = tuple(
                e for ev in churn_events for e in (*ev.added, *ev.removed)
            )
        out = migrate_configuration(protocol, graph, new_graph, config)
        sites = tuple(sorted(edge_fault_sites(changed)))
        return new_graph, out, sites

    def _crash(self, protocol, graph, config, event, gen):
        if event.nodes:
            victims = select_victims(graph, event, gen)
            already = [v for v in victims if v in self._down]
            if already:
                raise ExperimentError(
                    f"crash event names already-crashed nodes {already}"
                )
        else:
            alive = [v for v in graph.nodes if v not in self._down]
            count = min(event.victim_count(graph.n), len(alive))
            picks = gen.choice(len(alive), size=count, replace=False)
            victims = tuple(alive[int(k)] for k in picks)
        former_neighbors = set()
        for v in victims:
            former_neighbors.update(graph.neighbors(v))
        removed = _incident_edges(graph, victims)
        new_graph = graph.with_edges(remove=removed)
        out = migrate_configuration(protocol, graph, new_graph, config)
        out = out.updated(
            {v: protocol.initial_state(v, new_graph) for v in victims}
        )
        protocol.validate_configuration(new_graph, out)
        for v in victims:
            self._down[v] = [e for e in removed if v in e]
        sites = tuple(sorted(set(victims) | former_neighbors))
        return new_graph, out, sites

    def _rejoin(self, protocol, graph, config, event):
        rejoining = tuple(event.nodes) if event.nodes else self.crashed
        unknown = [v for v in rejoining if v not in self._down]
        if unknown:
            raise ExperimentError(
                f"rejoin event names nodes that are not down: {unknown}"
            )
        rejoin_set = set(rejoining)
        still_down = set(self._down) - rejoin_set
        restore = set()
        deferred: List[Tuple[NodeId, Tuple[NodeId, NodeId]]] = []
        for v in rejoining:
            for edge in self._down.pop(v):
                other = edge[0] if edge[1] == v else edge[1]
                if other in still_down:
                    # the link waits for the other endpoint's rejoin
                    deferred.append((other, edge))
                else:
                    restore.add(edge)
        for owner, edge in deferred:
            if edge not in self._down[owner]:
                self._down[owner].append(edge)
        # a churn event may have re-created a downed link meanwhile
        restore = tuple(
            sorted(e for e in restore if not graph.has_edge(*e))
        )
        new_graph = graph.with_edges(add=restore)
        out = migrate_configuration(protocol, graph, new_graph, config)
        touched_ends = {x for e in restore for x in e}
        sites = tuple(sorted(rejoin_set | touched_ends))
        return new_graph, out, sites


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
@dataclass
class Segment:
    """What one stretch of rounds between events reports back."""

    rounds: int
    stabilized: bool
    per_round: List[Dict[str, int]]
    active_sizes: List[int]
    census: Optional[List[Dict[str, int]]]
    touched: frozenset
    move_log: Optional[List[Dict[NodeId, str]]] = None
    history: Optional[List[Configuration]] = None


def _recovery_record(
    graph: Graph, index: int, event: FaultEvent, sites, seg: Segment
) -> Dict[str, object]:
    moves_by_rule: Dict[str, int] = {}
    for entry in seg.per_round:
        for name, count in entry.items():
            moves_by_rule[name] = moves_by_rule.get(name, 0) + count
    radius = None
    if sites and seg.touched:
        radius = containment_radius(graph, set(sites), seg.touched)
    return {
        "index": index,
        "kind": event.kind,
        "round": event.round,
        "sites": sorted(int(s) for s in sites),
        "recovered": bool(seg.stabilized),
        "recovery_rounds": int(seg.rounds),
        "moves": int(sum(moves_by_rule.values())),
        "moves_by_rule": {k: int(v) for k, v in sorted(moves_by_rule.items())},
        "touched": int(len(seg.touched)),
        "radius": None if radius is None else int(radius),
    }


def drive_campaign(
    protocol,
    adapter,
    plan: FaultPlan,
    *,
    budget: int,
    backend: str,
    record_history: bool = False,
):
    """Run the segmented campaign loop against ``adapter``.

    Returns ``(summary dict, telemetry)`` — the caller wraps them in its
    backend's result type.
    """
    from repro.observability import TelemetryRecorder
    from repro.observability import tracing as _tracing

    tracer = _tracing.current_tracer()
    recorder = TelemetryRecorder(
        protocol.name, "synchronous", backend, protocol.rule_names()
    )
    initial_census = adapter.initial_census()
    if initial_census is not None:
        recorder.record_census(initial_census)
    last_census = initial_census
    recorder.begin_rounds()

    traces = getattr(adapter, "traces", False)
    move_log: Optional[List[Dict[NodeId, str]]] = [] if traces else None
    history: Optional[List[Configuration]] = (
        [adapter.config()] if (record_history and traces) else None
    )
    fault_records: List[Dict[str, object]] = []
    events = [ev for ev in plan.events if ev.round <= budget]
    elapsed = 0
    stabilized = False
    pending: Optional[Tuple[int, FaultEvent, tuple]] = None
    pending_start: Optional[float] = None
    i = 0
    while True:
        target = events[i].round if i < len(events) else None
        seg = adapter.run_segment((budget if target is None else target) - elapsed)
        for t in range(seg.rounds):
            recorder.on_round(
                seg.per_round[t],
                seg.active_sizes[t],
                seg.census[t] if seg.census is not None else None,
            )
        if seg.census:
            last_census = seg.census[-1]
        if move_log is not None and seg.move_log is not None:
            move_log.extend(seg.move_log)
        if history is not None and seg.history is not None:
            history.extend(seg.history[1:])
        elapsed += seg.rounds
        if pending is not None:
            rec = _recovery_record(adapter.graph, *pending, seg)
            fault_records.append(rec)
            if tracer is not None:
                # one span per fault event, covering its recovery
                # window (application through re-stabilization — or
                # budget/next-event cutoff), nested in the run span
                tracer.record(
                    f"fault:{rec['kind']}",
                    pending_start,
                    tracer.now(),
                    index=rec["index"],
                    round=rec["round"],
                    sites=len(rec["sites"]),
                    recovered=rec["recovered"],
                    recovery_rounds=rec["recovery_rounds"],
                    moves=rec["moves"],
                    touched=rec["touched"],
                    radius=rec["radius"],
                )
            pending = None
        if target is None:
            stabilized = seg.stabilized
            break
        # idle fill: the system is quiescent but rounds keep ticking
        # until the event fires (beacons are still exchanged)
        for _ in range(target - elapsed):
            recorder.on_round({}, 0, last_census)
            if move_log is not None:
                move_log.append({})
            if history is not None:
                history.append(history[-1])
        elapsed = target
        pending_start = None if tracer is None else tracer.now()
        sites = adapter.apply(events[i], plan.event_rng(i))
        if history is not None:
            history.append(adapter.config())
        pending = (i, events[i], sites)
        i += 1

    recorder.begin_finalize()
    telemetry = recorder.finish()
    telemetry.fault_events = fault_records
    final = adapter.config()
    summary = {
        "stabilized": stabilized,
        "rounds": elapsed,
        "moves": telemetry.moves,
        "moves_by_rule": dict(telemetry.moves_by_rule),
        "final": final,
        "move_log": move_log,
        "history": history,
        "legitimate": protocol.is_legitimate(adapter.graph, final),
        "final_graph": adapter.graph,
    }
    return summary, telemetry


# ----------------------------------------------------------------------
# reference-backend adapter and entry point
# ----------------------------------------------------------------------
class _ReferenceAdapter:
    traces = True

    def __init__(self, protocol, graph, config, gen, record_history, active_set):
        from repro.core.executor import _resolve_config

        self.protocol = protocol
        self.graph = graph
        self.current = _resolve_config(protocol, graph, config)
        self.gen = gen
        self.record_history = record_history
        self.active_set = active_set
        self.runtime = CampaignRuntime()

    def initial_census(self):
        from repro.observability import census_of, wants_census

        if wants_census(self.protocol):
            return census_of(self.graph, self.current)
        return None

    def config(self) -> Configuration:
        return self.current

    def run_segment(self, budget: int) -> Segment:
        from repro.core.executor import run_synchronous

        ex = run_synchronous(
            self.protocol,
            self.graph,
            self.current,
            rng=self.gen,
            max_rounds=budget,
            record_history=self.record_history,
            telemetry=True,
            active_set=self.active_set,
        )
        self.current = ex.final
        touched = set()
        for entry in ex.move_log:
            touched.update(entry)
        census = ex.telemetry.node_type_census
        return Segment(
            rounds=ex.rounds,
            stabilized=ex.stabilized,
            per_round=ex.telemetry.per_round_moves,
            active_sizes=ex.telemetry.active_set_sizes,
            census=None if census is None else census[1:],
            touched=frozenset(touched),
            move_log=ex.move_log,
            history=ex.history,
        )

    def apply(self, event: FaultEvent, gen):
        self.graph, self.current, sites = self.runtime.apply(
            self.protocol, self.graph, self.current, event, gen
        )
        return sites


def run_reference_campaign(
    protocol,
    graph: Graph,
    config=None,
    *,
    fault_plan: FaultPlan,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    monitors: Sequence = (),
    raise_on_timeout: bool = False,
    active_set: bool = True,
    telemetry: bool = False,
):
    """Reference-engine fault campaign (``run_synchronous`` delegates
    here when ``fault_plan`` is given).

    ``monitors`` are rejected — their per-round contract does not
    survive the topology changing under them.  Telemetry is always
    collected (the recovery metrics live in it); the ``telemetry`` flag
    is accepted for signature uniformity.
    """
    del telemetry  # campaigns always collect telemetry
    if monitors:
        raise ExperimentError(
            "monitors are not supported in fault campaigns; read "
            "telemetry.fault_events instead"
        )
    from repro.core.executor import Execution, _default_round_budget

    budget = _default_round_budget(graph) if max_rounds is None else max_rounds
    adapter = _ReferenceAdapter(
        protocol, graph, config, ensure_rng(rng), record_history, active_set
    )
    initial = adapter.current
    summary, tele = drive_campaign(
        protocol,
        adapter,
        fault_plan,
        budget=budget,
        backend="reference",
        record_history=record_history,
    )
    execution = Execution(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=summary["stabilized"],
        rounds=summary["rounds"],
        moves=summary["moves"],
        moves_by_rule=summary["moves_by_rule"],
        initial=initial,
        final=summary["final"],
        move_log=summary["move_log"],
        history=summary["history"],
        legitimate=summary["legitimate"],
    )
    execution.telemetry = tele
    if raise_on_timeout and not execution.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds "
            f"(fault campaign)",
            execution,
        )
    return execution
