"""Fault plans: scheduled in-run fault bursts, as plain data.

The paper's system model (Section 2) promises recovery from
"occasional link failures and/or new link creations" and host crashes;
:mod:`repro.core.faults` can only inject such faults *between* runs.  A
:class:`FaultPlan` schedules them *inside* one run: a sequence of
:class:`FaultEvent` records, each pinned to a global round number, that
the campaign driver (:mod:`repro.resilience.campaign`) applies at round
boundaries on whichever backend executes the run.

Event kinds
-----------
``perturb``
    Redraw the state of the victim nodes through
    ``protocol.random_state`` — a burst of memory corruption.
``message_dup``
    A replayed stale beacon re-imposes an arbitrary earlier state on
    each victim.  In the shared-state abstraction the adversary controls
    the stale value, so mechanically this equals ``perturb``; it is kept
    as its own kind so recovery metrics attribute it separately.
``message_loss``
    The victims' beacons are lost for long enough that their neighbours
    evict them: every *other* node's state is sanitized against a
    phantom topology without the victims' links.  The true topology is
    unchanged (for bit protocols like SIS, whose states reference no
    neighbour, this is a no-op by construction).
``churn``
    Link failures/creations: either ``churn`` random changes (drawn via
    :func:`repro.graphs.mutations.apply_churn`) or the explicit
    ``add_edges``/``remove_edges``, followed by
    :func:`~repro.core.faults.migrate_configuration` sanitization.
``crash``
    Fail-stop: the victims lose every incident link and reboot into
    their initial state; surviving neighbours sanitize as under churn.
``rejoin``
    Crashed nodes come back: links downed by their crash are restored
    (links to still-crashed peers wait for *their* rejoin).  With no
    ``nodes``, every currently-crashed node rejoins.

Determinism
-----------
Each event draws randomness from its own generator, seeded by
``SeedSequence([plan.seed, event_index])`` (or the event's explicit
``seed``) — independent of the daemon's stream.  Same plan + same seed
therefore produces byte-identical victim choices and redraws on every
backend; the cross-backend identity is pinned in
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError

__all__ = ["EVENT_KINDS", "FaultEvent", "FaultPlan"]

#: The event kinds the campaign driver implements.
EVENT_KINDS = (
    "perturb",
    "message_dup",
    "message_loss",
    "churn",
    "crash",
    "rejoin",
)

_Edge = Tuple[int, int]


def _edge_tuple(edges) -> Tuple[_Edge, ...]:
    return tuple((int(u), int(v)) for u, v in edges)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault burst.

    Attributes
    ----------
    round:
        Global round number the event fires at: the fault hits after
        round ``round`` completes and before round ``round + 1`` starts.
        If the run stabilizes earlier, quiescent rounds are counted up
        to the event (beacons keep being exchanged in a stable system).
    kind:
        One of :data:`EVENT_KINDS`.
    nodes:
        Explicit victims.  Empty = draw them randomly (``count`` /
        ``fraction``); for ``rejoin``, empty = every crashed node.
    count / fraction:
        Random victim selection: ``count`` nodes, or
        ``round(fraction * n)`` (at least one when ``fraction > 0``).
        Defaults to ``fraction=0.25`` when neither is given, matching
        :func:`repro.core.faults.perturb_configuration`.
    churn:
        Number of random link changes (``kind="churn"`` only, ignored
        when explicit edges are given).
    add_edges / remove_edges:
        Explicit link changes (``kind="churn"`` only).
    seed:
        Override for this event's generator seed (default: derived from
        the plan seed and the event's index).
    """

    round: int
    kind: str
    nodes: Tuple[int, ...] = ()
    count: Optional[int] = None
    fraction: Optional[float] = None
    churn: int = 1
    add_edges: Tuple[_Edge, ...] = ()
    remove_edges: Tuple[_Edge, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; known: {list(EVENT_KINDS)}"
            )
        if self.round < 0:
            raise ExperimentError(f"event round must be >= 0, got {self.round}")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "add_edges", _edge_tuple(self.add_edges))
        object.__setattr__(self, "remove_edges", _edge_tuple(self.remove_edges))
        if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
            raise ExperimentError("fraction must lie in [0, 1]")
        if self.count is not None and self.count < 0:
            raise ExperimentError("count must be >= 0")

    def victim_count(self, n: int) -> int:
        """How many random victims this event draws on an ``n``-node
        graph (same rounding as ``perturb_configuration``)."""
        if self.count is not None:
            return min(self.count, n)
        fraction = 0.25 if self.fraction is None else self.fraction
        count = int(round(fraction * n))
        if fraction > 0 and count == 0 and n > 0:
            count = 1
        return min(count, n)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"round": self.round, "kind": self.kind}
        if self.nodes:
            out["nodes"] = [int(v) for v in self.nodes]
        if self.count is not None:
            out["count"] = self.count
        if self.fraction is not None:
            out["fraction"] = self.fraction
        if self.kind == "churn":
            out["churn"] = self.churn
            if self.add_edges:
                out["add_edges"] = [list(e) for e in self.add_edges]
            if self.remove_edges:
                out["remove_edges"] = [list(e) for e in self.remove_edges]
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown fault-event fields {sorted(unknown)}; known: "
                f"{sorted(known)}"
            )
        if "round" not in data or "kind" not in data:
            raise ExperimentError("a fault event needs 'round' and 'kind'")
        return cls(
            round=int(data["round"]),
            kind=str(data["kind"]),
            nodes=tuple(int(v) for v in data.get("nodes", ())),
            count=None if data.get("count") is None else int(data["count"]),
            fraction=(
                None if data.get("fraction") is None else float(data["fraction"])
            ),
            churn=int(data.get("churn", 1)),
            add_edges=_edge_tuple(data.get("add_edges", ())),
            remove_edges=_edge_tuple(data.get("remove_edges", ())),
            seed=None if data.get("seed") is None else int(data["seed"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered campaign of fault events plus its base seed.

    Events are kept sorted by ``(round, original position)``; several
    events may share a round (they apply in order, with a zero-round
    recovery window between them).  Hashable and picklable, so a plan
    rides inside a frozen :class:`~repro.parallel.TrialSpec` through
    worker pickling and spec fingerprints.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            ev
            for _, ev in sorted(
                enumerate(self.events), key=lambda item: (item[1].round, item[0])
            )
        )
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        # a plan participates in backend selection as a truthy option;
        # an empty plan behaves like no plan but still exercises the
        # campaign path, so keep it truthy
        return True

    def event_rng(self, index: int) -> np.random.Generator:
        """The dedicated generator of event ``index`` — independent of
        the daemon's stream, identical on every backend."""
        event = self.events[index]
        if event.seed is not None:
            return np.random.default_rng(event.seed)
        return np.random.default_rng(
            np.random.SeedSequence([int(self.seed), int(index)])
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": int(self.seed),
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        events = data.get("events", ())
        if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
            raise ExperimentError("'events' must be a list of event objects")
        return cls(
            events=tuple(FaultEvent.from_dict(ev) for ev in events),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ExperimentError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a JSON file (the CLI's ``--fault-plan``)."""
        with open(str(path), "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path) -> None:
        with open(str(path), "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
