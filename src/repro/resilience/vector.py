"""Fault campaigns on the vectorized SMM/SIS kernels.

The campaign driver (:mod:`repro.resilience.campaign`) is backend
agnostic; this module supplies the adapter that keeps campaign segments
on the NumPy fast path.  Segments run the same full-scan loop as the
kernels' ``telemetry_run`` (step → zero-fire stabilized break → budget
break → apply and count), so every counter is byte-identical with the
reference engine.

Fault events apply at the array level where possible: ``perturb`` and
``message_dup`` redraw victim states directly on the dense array,
mirroring the reference path draw for draw — victims come from the same
``gen.choice`` over dense indices (:func:`~repro.core.faults.perturb_victims`
maps them to ids; here they *are* the array positions), and each
victim's redraw consumes the identical generator calls
(``integers(deg + 1)`` against the CSR row for SMM — CSR rows and
``Graph.neighbors`` share their ascending order — and ``integers(2)``
for SIS).  Topology-changing events (``churn``/``crash``/``rejoin``)
and ``message_loss`` decode to a configuration, go through the shared
:class:`~repro.resilience.campaign.CampaignRuntime`, and re-encode
(rebuilding the kernel when the graph changed); they are rare
round-boundary operations, so the O(n) decode does not matter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.resilience.campaign import (
    CampaignRuntime,
    Segment,
    drive_campaign,
    select_victims,
)
from repro.resilience.plan import FaultEvent, FaultPlan

__all__ = ["run_vector_campaign"]


class _SMMFamily:
    """VectorizedSMM hooks for the campaign adapter."""

    has_census = True

    @staticmethod
    def make(graph: Graph):
        from repro.matching.smm_vectorized import VectorizedSMM

        return VectorizedSMM(graph)

    @staticmethod
    def encode(kernel, config):
        return kernel.encode(config)

    @staticmethod
    def decode(kernel, state):
        return kernel.decode(state)

    @staticmethod
    def step_stats(kernel, ptr):
        new_ptr, r1, r2, r3 = kernel.step(ptr)
        counts = {"R1": int(r1.sum()), "R2": int(r2.sum()), "R3": int(r3.sum())}
        return new_ptr, counts, r1 | r2 | r3

    @staticmethod
    def census(kernel, ptr):
        return kernel.census(ptr)

    @staticmethod
    def perturb_one(kernel, ptr, k: int, gen) -> None:
        # mirrors SynchronousMaximalMatching.random_state: the option
        # list is [None, *neighbors] and one integers(deg + 1) draw
        # picks from it; CSR rows share the neighbour order
        start, stop = int(kernel._indptr[k]), int(kernel._indptr[k + 1])
        j = int(gen.integers(stop - start + 1))
        ptr[k] = -1 if j == 0 else int(kernel._indices[start + j - 1])

    @staticmethod
    def drop_removed_links(ptr, pairs) -> None:
        # mirrors sanitize_state across an explicit-edge churn: a valid
        # pointer only turns invalid when its own link is removed, so
        # resetting the endpoints of removed edges equals the full
        # migrate_configuration sweep (pairs are dense index tuples)
        from repro.kernels import SMM_NULL

        for ku, kv in pairs:
            if ptr[ku] == kv:
                ptr[ku] = SMM_NULL
            if ptr[kv] == ku:
                ptr[kv] = SMM_NULL


class _SISFamily:
    """VectorizedSIS hooks for the campaign adapter."""

    has_census = False

    @staticmethod
    def make(graph: Graph):
        from repro.mis.sis_vectorized import VectorizedSIS

        return VectorizedSIS(graph)

    @staticmethod
    def encode(kernel, config):
        return kernel.encode(config)

    @staticmethod
    def decode(kernel, state):
        return kernel.decode(state)

    @staticmethod
    def step_stats(kernel, x):
        new_x = kernel.step(x)
        changed = new_x != x
        counts = {
            "R1": int((changed & (new_x == 1)).sum()),
            "R2": int((changed & (new_x == 0)).sum()),
        }
        return new_x, counts, changed

    @staticmethod
    def census(kernel, x):
        return None

    @staticmethod
    def perturb_one(kernel, x, k: int, gen) -> None:
        # mirrors SynchronousMaximalIndependentSet.random_state
        x[k] = int(gen.integers(2))

    @staticmethod
    def drop_removed_links(x, pairs) -> None:
        # SIS states are bits, topology-independent: migration is the
        # identity (validate_state never consults the graph)
        del x, pairs


_FAMILIES = {"smm": _SMMFamily, "sis": _SISFamily}


class _VectorAdapter:
    traces = False

    def __init__(self, protocol, graph: Graph, initial, family) -> None:
        self.protocol = protocol
        self.graph = graph
        self.family = family
        self.kernel = family.make(graph)
        self.state = family.encode(self.kernel, initial)
        self.runtime = CampaignRuntime()

    def initial_census(self):
        if not self.family.has_census:
            return None
        return self.family.census(self.kernel, self.state)

    def config(self):
        return self.family.decode(self.kernel, self.state)

    def run_segment(self, budget: int) -> Segment:
        family, kernel = self.family, self.kernel
        state = self.state
        per_round = []
        active_sizes = []
        census = [] if family.has_census else None
        touched = np.zeros(kernel.n, dtype=bool)
        rounds = 0
        stabilized = False
        while True:
            new_state, counts, fired = family.step_stats(kernel, state)
            if sum(counts.values()) == 0:
                stabilized = True
                break
            if rounds >= budget:
                break
            state = new_state
            rounds += 1
            touched |= fired
            per_round.append(counts)
            active_sizes.append(kernel.n)
            if census is not None:
                census.append(family.census(kernel, state))
        self.state = state
        ids = kernel._ids
        touched_ids = frozenset(
            int(ids[k]) for k in np.nonzero(touched)[0]
        )
        return Segment(
            rounds=rounds,
            stabilized=stabilized,
            per_round=per_round,
            active_sizes=active_sizes,
            census=census,
            touched=touched_ids,
        )

    def apply(self, event: FaultEvent, gen):
        if event.kind in ("perturb", "message_dup"):
            # array fast path, draw-for-draw identical to the dict path
            victims = select_victims(self.graph, event, gen)
            index = self.graph.dense_index()
            for node in victims:
                self.family.perturb_one(self.kernel, self.state, index[node], gen)
            return victims
        config = self.family.decode(self.kernel, self.state)
        graph, config, sites = self.runtime.apply(
            self.protocol, self.graph, config, event, gen
        )
        if graph is not self.graph:
            self.graph = graph
            self.kernel = self.family.make(graph)
        self.state = self.family.encode(self.kernel, config)
        return sites


def run_vector_campaign(
    protocol,
    graph: Graph,
    config=None,
    *,
    fault_plan: FaultPlan,
    family: str,
    rng=None,
    max_rounds: Optional[int] = None,
    record_history: bool = False,
    raise_on_timeout: bool = False,
    active_set: bool = True,
    telemetry: bool = False,
):
    """Run a fault campaign on a vectorized kernel family.

    The kernels' ``run_engine`` adapters delegate here when
    ``fault_plan`` is given.  ``rng`` / ``record_history`` /
    ``active_set`` / ``telemetry`` are accepted for the uniform runner
    signature: SMM/SIS consume no daemon randomness, selection degrades
    history requests to the reference backend, segments are full scans
    (telemetry wants per-round counters anyway), and campaigns always
    collect telemetry.
    """
    del rng, record_history, active_set, telemetry
    from repro.core.executor import _default_round_budget, _resolve_config
    from repro.engine.result import RunResult
    from repro.errors import StabilizationTimeout

    initial = _resolve_config(protocol, graph, config)
    budget = max_rounds if max_rounds is not None else _default_round_budget(graph)
    adapter = _VectorAdapter(protocol, graph, initial, _FAMILIES[family])
    summary, tele = drive_campaign(
        protocol, adapter, fault_plan, budget=budget, backend="vectorized"
    )
    result = RunResult(
        protocol_name=protocol.name,
        daemon="synchronous",
        stabilized=summary["stabilized"],
        rounds=summary["rounds"],
        moves=summary["moves"],
        moves_by_rule=summary["moves_by_rule"],
        initial=initial,
        final=summary["final"],
        legitimate=summary["legitimate"],
        backend="vectorized",
        telemetry=tele,
    )
    if raise_on_timeout and not result.stabilized:
        raise StabilizationTimeout(
            f"{protocol.name} exceeded {budget} synchronous rounds "
            f"(fault campaign)",
            result,
        )
    return result
