"""Deterministic random-number handling.

All stochastic pieces of the library (graph generators, random daemons,
mobility models, fault injectors, experiment sweeps) draw from
:class:`numpy.random.Generator` objects created through this module, so
every run is reproducible bit-for-bit from an integer seed.

The helpers also implement *seed spawning*: deriving independent child
streams from a parent seed so that, e.g., every trial of a parameter
sweep gets its own generator while the whole sweep stays reproducible.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

#: Default seed used when the caller passes ``None`` explicitly asking for
#: a reproducible default stream (experiments pass explicit seeds).
DEFAULT_SEED = 0x5E1F_57AB  # "SELF-STAB"


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    * ``None`` -> a fresh generator seeded with :data:`DEFAULT_SEED`;
    * ``int`` -> a fresh generator seeded with that value;
    * a ``Generator`` -> returned unchanged.
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` (PCG64 stream splitting),
    so children never overlap regardless of how much each is used.
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of generators")
    return list(ensure_rng(rng).spawn(n))


def trial_seeds(seed: int, n_trials: int) -> list[int]:
    """Return ``n_trials`` distinct 63-bit seeds derived from ``seed``.

    Useful when trial workers need plain integer seeds (e.g. to record in
    result rows) rather than generator objects.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    ss = np.random.SeedSequence(seed)
    return [int(s) for s in ss.generate_state(n_trials, dtype=np.uint64) >> np.uint64(1)]


def shuffled(seq: Sequence, rng: RngLike = None) -> list:
    """Return a shuffled copy of ``seq`` (the input is left untouched)."""
    gen = ensure_rng(rng)
    out = list(seq)
    gen.shuffle(out)
    return out


def choice(seq: Sequence, rng: RngLike = None):
    """Pick one element of a non-empty sequence uniformly at random."""
    if not seq:
        raise ValueError("cannot choose from an empty sequence")
    gen = ensure_rng(rng)
    return seq[int(gen.integers(len(seq)))]


def coin(p: float, rng: RngLike = None) -> bool:
    """Return ``True`` with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p} outside [0, 1]")
    return bool(ensure_rng(rng).random() < p)


def iter_rngs(rng: RngLike) -> Iterator[np.random.Generator]:
    """Yield an unbounded stream of independent child generators."""
    parent = ensure_rng(rng)
    while True:
        yield parent.spawn(1)[0]
