"""Stabilization-as-a-service: a persistent control plane for sweeps.

``repro serve`` turns the one-shot trial runner into a long-lived HTTP
daemon: clients POST sweep requests (JSON), a bounded worker pool
executes them through the same resilient
:class:`~repro.parallel.TrialRunner` the CLI uses, results are
content-addressed by :func:`~repro.parallel.spec_fingerprint` so
repeated or concurrent identical submissions share one computation,
and the :class:`~repro.observability.MetricsRegistry` is exposed as a
real Prometheus ``/metrics`` scrape target.

Layers (one module each):

:mod:`repro.serve.schema`
    The wire format — JSON requests validated into ``TrialSpec``s.
:mod:`repro.serve.store`
    The content-addressed result store with single-writer dedup.
:mod:`repro.serve.jobs`
    Job queue, worker pool, crash-safe journal, cache orchestration.
:mod:`repro.serve.server`
    The stdlib HTTP surface and graceful-shutdown entry point.
:mod:`repro.serve.chaos`
    The chaos harness — seeded fault scripts against a live daemon,
    asserting the re-stabilization invariants (``repro chaos``).

The control plane is *self-healing*: a supervisor restarts crashed
workers and autoscales the pool, admission control sheds overload
(429/503 + ``Retry-After``) instead of buffering it, and the result
store quarantines corrupt entries instead of serving or crashing on
them.  See docs/serving.md for the endpoint reference, degradation
modes, and operational notes.
"""

from repro.serve.chaos import DEFAULT_FAULTS, ChaosHarness, ChaosError
from repro.serve.jobs import (
    JOB_STATES,
    Draining,
    Job,
    JobManager,
    QueueFull,
)
from repro.serve.schema import (
    MODES,
    RequestError,
    SweepRequest,
    parse_sweep_request,
)
from repro.serve.server import ReproServer, ServeApp, run_server
from repro.serve.store import ResultStore

__all__ = [
    "ChaosError",
    "ChaosHarness",
    "DEFAULT_FAULTS",
    "Draining",
    "JOB_STATES",
    "Job",
    "JobManager",
    "MODES",
    "QueueFull",
    "ReproServer",
    "RequestError",
    "ResultStore",
    "ServeApp",
    "SweepRequest",
    "parse_sweep_request",
    "run_server",
]
