"""Chaos harness: seeded fault scripts against a live serve daemon.

The paper's protocols are *self-stabilizing* — any transient fault is
followed by convergence back to a legitimate state.  This module holds
the serving layer to the same standard by inducing the faults instead
of waiting for them: :class:`ChaosHarness` boots a real ``repro
serve`` subprocess (with ``--enable-chaos`` so the ``/v1/chaos``
injection endpoint exists), drives it through scripted fault
scenarios, and asserts the re-stabilization invariants after each:

* no accepted job is lost or duplicated — every 202 eventually reaches
  a terminal state, and a repeat-POST answers entirely from the result
  store (``computed == 0``);
* every byte served is identical to computing the same specs directly
  with :func:`repro.parallel.run_trials` in this process;
* the worker pool returns to its target size (crashed workers are
  restarted, scale-ups retired) and the queue drains to zero;
* overload is shed visibly: floods past ``--max-queue-depth`` answer
  429 with a ``Retry-After`` header and count
  ``repro_serve_shed_total``, while every accepted job still
  completes;
* the daemon still shuts down gracefully afterwards and leaves no
  ``/dev/shm`` segments behind.

Fault scripts (``DEFAULT_FAULTS`` runs all of them, in order)::

    worker_kill     crash worker threads; supervisor must restart them
    store_truncate  tear stored result files; store must quarantine
                    (*.corrupt) and recompute, bytes unchanged
    flood           stall the pool, submit past the queue bound; 429s
                    with Retry-After, accepted jobs all finish
    sigkill         SIGKILL the daemon mid-sweep, tear its journal,
                    restart on the same state dir; the job completes
                    with no trial recomputed twice
    sync_skew       a sync request slower than the server's patience
                    degrades to 202 (never hangs, never 500s)

Everything is seeded (``seed`` drives truncation offsets, sweep seeds)
so a failing run reproduces.  ``repro chaos`` is the CLI wrapper; the
CI ``chaos-smoke`` job runs it against every push.
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ChaosError", "ChaosHarness", "DEFAULT_FAULTS"]

DEFAULT_FAULTS: Tuple[str, ...] = (
    "worker_kill",
    "store_truncate",
    "flood",
    "sigkill",
    "sync_skew",
)


class ChaosError(AssertionError):
    """A re-stabilization invariant did not hold."""


class ChaosHarness:
    """Boot a serve daemon, script faults at it, assert it heals.

    The knobs exist so tests can shrink the scenario (small graphs,
    short stalls) while the CI job runs the defaults.  ``run()``
    returns the report dict (also written to ``report_path`` when
    given); ``report["ok"]`` is the overall verdict.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        seed: int = 0,
        faults: Sequence[str] = DEFAULT_FAULTS,
        trials: int = 4,
        graph_n: int = 120,
        big_graph_n: int = 400,
        big_trials: int = 6,
        flood_submits: int = 10,
        max_queue_depth: int = 3,
        max_workers: int = 3,
        stall_seconds: float = 3.0,
        sync_timeout: float = 0.25,
        report_path: Optional[str] = None,
        log=None,
    ) -> None:
        unknown = [f for f in faults if f not in DEFAULT_FAULTS]
        if unknown:
            raise ValueError(
                f"unknown fault scripts {unknown}; known: {DEFAULT_FAULTS}"
            )
        self.state_dir = os.path.abspath(state_dir)
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.faults = tuple(faults)
        self.trials = trials
        self.graph_n = graph_n
        self.big_graph_n = big_graph_n
        self.big_trials = big_trials
        self.flood_submits = flood_submits
        self.max_queue_depth = max_queue_depth
        self.max_workers = max_workers
        self.stall_seconds = stall_seconds
        self.sync_timeout = sync_timeout
        self.report_path = report_path
        self._log = log if log is not None else (lambda line: None)
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self._server_log: List[str] = []

    # ------------------------------------------------------------------
    # server lifecycle
    # ------------------------------------------------------------------
    def _server_args(self) -> List[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--state-dir",
            self.state_dir,
            "--workers",
            "1",
            "--min-workers",
            "1",
            "--max-workers",
            str(self.max_workers),
            "--max-queue-depth",
            str(self.max_queue_depth),
            "--sync-timeout",
            str(self.sync_timeout),
            "--scale-up-after",
            "0.5",
            "--scale-down-idle",
            "2.0",
            "--enable-chaos",
        ]

    def _start_server(self) -> None:
        self._server_log = []
        self.proc = subprocess.Popen(
            self._server_args(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if not match:
            rest = self.proc.stdout.read() or ""
            raise ChaosError(
                f"serve daemon printed no listen line: {line!r}\n{rest}"
            )
        self.port = int(match.group(1))
        self._server_log.append(line)

        def drain(stream, sink):
            for entry in stream:
                sink.append(entry)

        threading.Thread(
            target=drain,
            args=(self.proc.stdout, self._server_log),
            daemon=True,
        ).start()
        self._wait_healthy()

    def _stop_server(self, *, graceful: bool = True) -> bool:
        """Stop the daemon; with ``graceful`` require the clean
        'shutdown complete' line.  Returns graceful-exit success."""
        proc = self.proc
        if proc is None:
            return True
        self.proc = None
        if proc.poll() is not None:
            return not graceful  # already dead: only fine if expected
        if not graceful:
            proc.kill()
            proc.wait(timeout=30)
            return True
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)
            return False
        time.sleep(0.1)  # let the drain thread catch the last lines
        return any("shutdown complete" in line for line in self._server_log)

    # ------------------------------------------------------------------
    # HTTP + metric helpers
    # ------------------------------------------------------------------
    def _http(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: float = 120.0,
    ) -> Tuple[int, Any, Dict[str, str]]:
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                raw = response.read()
                status, headers = response.status, dict(response.headers)
        except urllib.error.HTTPError as error:
            raw = error.read()
            status, headers = error.code, dict(error.headers)
        content_type = headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            return status, json.loads(raw), headers
        return status, raw.decode("utf-8", "replace"), headers

    def _wait_healthy(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                status, payload, _ = self._http("GET", "/healthz", timeout=5)
                if status == 200:
                    return
            except (urllib.error.URLError, ConnectionError, OSError):
                pass
            time.sleep(0.1)
        raise ChaosError("daemon never became healthy")

    def _scrape(self) -> Dict[str, float]:
        status, text, _ = self._http("GET", "/metrics")
        self._require(status == 200, f"/metrics answered {status}")
        samples: Dict[str, float] = {}
        for line in str(text).splitlines():
            if not line or line.startswith("#"):
                continue
            key, value = line.rsplit(" ", 1)
            samples[key] = float(value)
        return samples

    def _metric_sum(self, prefix: str) -> float:
        return sum(
            value
            for key, value in self._scrape().items()
            if key == prefix or key.startswith(prefix + "{")
        )

    def _wait_metric(
        self, prefix: str, minimum: float, timeout: float = 30.0
    ) -> float:
        deadline = time.monotonic() + timeout
        value = self._metric_sum(prefix)
        while value < minimum and time.monotonic() < deadline:
            time.sleep(0.1)
            value = self._metric_sum(prefix)
        self._require(
            value >= minimum,
            f"{prefix} never reached {minimum} (got {value})",
        )
        return value

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ChaosError(message)

    # ------------------------------------------------------------------
    # job helpers
    # ------------------------------------------------------------------
    def _body(
        self,
        tag: str,
        *,
        mode: str = "async",
        n: Optional[int] = None,
        trials: Optional[int] = None,
        seed_offset: int = 0,
        family: str = "er-sparse",
    ) -> Dict[str, Any]:
        return {
            "mode": mode,
            "label": f"chaos-{tag}",
            "sweep": {
                "protocol": "smm",
                "family": family,
                "n": self.graph_n if n is None else n,
                "trials": self.trials if trials is None else trials,
                "seed": 1000 + self.seed * 101 + seed_offset,
                "backend": "reference",
            },
        }

    def _submit(self, body: Dict[str, Any]) -> str:
        status, payload, _ = self._http("POST", "/v1/sweeps", body)
        self._require(
            status == 202, f"submit answered {status}, not 202: {payload}"
        )
        return payload["job"]["id"]

    def _job(self, job_id: str) -> Dict[str, Any]:
        status, payload, _ = self._http("GET", f"/v1/jobs/{job_id}")
        self._require(status == 200, f"job {job_id} lookup answered {status}")
        return payload["job"]

    def _poll_job(self, job_id: str, timeout: float = 180.0) -> Dict[str, Any]:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self._job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            time.sleep(0.1)
        raise ChaosError(f"job {job_id} never reached a terminal state")

    def _results(self, job_id: str) -> List[Dict[str, Any]]:
        status, payload, _ = self._http("GET", f"/v1/jobs/{job_id}/result")
        self._require(
            status == 200, f"result fetch for {job_id} answered {status}"
        )
        return payload["results"]

    def _direct_results(self, body: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Compute the same sweep in this process: the ground truth the
        daemon's bytes must match."""
        from repro.analysis.serialize import execution_to_dict
        from repro.parallel import run_trials
        from repro.serve.schema import parse_sweep_request

        specs = parse_sweep_request(body).specs
        return [execution_to_dict(r) for r in run_trials(specs)]

    def _assert_served_bytes(self, body: Dict[str, Any], job_id: str) -> None:
        entries = self._results(job_id)
        self._require(
            all(e["status"] == "ok" for e in entries),
            f"job {job_id} has non-ok entries",
        )
        served = [e["result"] for e in entries]
        self._require(
            served == self._direct_results(body),
            f"served results for {job_id} differ from direct run_trials",
        )

    def _wait_stable(self, timeout: float = 60.0) -> Dict[str, Any]:
        """Healthz until the pool is back at target size and the queue
        is drained — the 'legitimate state' of the control plane."""
        deadline = time.monotonic() + timeout
        last: Dict[str, Any] = {}
        while time.monotonic() < deadline:
            status, payload, _ = self._http("GET", "/healthz", timeout=10)
            if status == 200:
                last = payload
                pool = payload["pool"]
                if (
                    pool["alive"] == pool["target"]
                    and payload["queued"] == 0
                    and payload["running"] == 0
                ):
                    return payload
            time.sleep(0.1)
        raise ChaosError(f"pool never re-stabilized; last healthz: {last}")

    def _fingerprints(self, body: Dict[str, Any]) -> List[str]:
        from repro.parallel import spec_fingerprint
        from repro.serve.schema import parse_sweep_request

        return [spec_fingerprint(s) for s in parse_sweep_request(body).specs]

    def _truncate(self, path: str) -> int:
        """Seeded torn write: keep a random strict prefix of ``path``."""
        with open(path, "rb") as handle:
            data = handle.read()
        offset = self.rng.randrange(0, max(1, len(data)))
        with open(path, "wb") as handle:
            handle.write(data[:offset])
        return offset

    # ------------------------------------------------------------------
    # fault scripts
    # ------------------------------------------------------------------
    def _fault_worker_kill(self) -> Dict[str, Any]:
        before = self._metric_sum("repro_serve_worker_restarts_total")
        body = self._body("worker-kill")
        job_id = self._submit(body)
        kills = 2
        for _ in range(kills):
            status, _, _ = self._http(
                "POST", "/v1/chaos", {"fault": "kill_worker"}
            )
            self._require(status == 202, f"chaos kill answered {status}")
        job = self._poll_job(job_id)
        self._require(
            job["state"] == "done", f"job died with the workers: {job}"
        )
        restarts = (
            self._wait_metric(
                "repro_serve_worker_restarts_total", before + kills
            )
            - before
        )
        stable = self._wait_stable()
        self._assert_served_bytes(body, job_id)
        return {
            "kills": kills,
            "restarts": int(restarts),
            "pool": stable["pool"],
        }

    def _fault_store_truncate(self) -> Dict[str, Any]:
        body = self._body("store", seed_offset=10)
        job_id = self._submit(body)
        job = self._poll_job(job_id)
        self._require(job["state"] == "done", f"seed job failed: {job}")
        # compare result payloads, not whole entries: `cached`/`attempts`
        # bookkeeping legitimately differs between a computed run and a
        # cache-served one
        first = [e["result"] for e in self._results(job_id)]

        store_dir = os.path.join(self.state_dir, "results")
        fingerprints = self._fingerprints(body)
        victims = self.rng.sample(fingerprints, min(2, len(fingerprints)))
        for fp in victims:
            self._truncate(os.path.join(store_dir, f"{fp}.json"))

        corrupt_before = self._metric_sum("repro_store_corrupt_total")
        second_id = self._submit(body)
        second_job = self._poll_job(second_id)
        self._require(
            second_job["state"] == "done",
            f"recompute after truncation failed: {second_job}",
        )
        self._require(
            second_job["progress"]["computed"] >= len(victims),
            f"torn entries were not recomputed: {second_job['progress']}",
        )
        corrupt = self._metric_sum("repro_store_corrupt_total")
        self._require(
            corrupt >= corrupt_before + len(victims),
            f"repro_store_corrupt_total {corrupt} did not count "
            f"{len(victims)} quarantines",
        )
        quarantined = [
            fp
            for fp in victims
            if os.path.exists(os.path.join(store_dir, f"{fp}.json.corrupt"))
        ]
        self._require(
            len(quarantined) == len(victims),
            f"missing *.corrupt quarantine files ({quarantined} of {victims})",
        )
        second = [e["result"] for e in self._results(second_id)]
        self._require(
            second == first,
            "recomputed results differ from the pre-corruption bytes",
        )
        self._assert_served_bytes(body, second_id)
        self._wait_stable()
        return {
            "truncated": len(victims),
            "recomputed": second_job["progress"]["computed"],
            "corrupt_total": corrupt,
        }

    def _fault_flood(self) -> Dict[str, Any]:
        _, health, _ = self._http("GET", "/healthz")
        alive = health["pool"]["alive"]
        for _ in range(alive):
            status, _, _ = self._http(
                "POST",
                "/v1/chaos",
                {"fault": "stall_worker", "seconds": self.stall_seconds},
            )
            self._require(status == 202, f"chaos stall answered {status}")
        time.sleep(0.5)  # let every worker pick up its stall token

        shed_before = self._metric_sum("repro_serve_shed_total")
        accepted: List[str] = []
        rejected = 0
        retry_after_ok = 0
        for i in range(self.flood_submits):
            status, payload, headers = self._http(
                "POST",
                "/v1/sweeps",
                self._body(f"flood-{i}", n=16, trials=2, seed_offset=100 + i),
            )
            if status == 202:
                accepted.append(payload["job"]["id"])
            elif status == 429:
                rejected += 1
                if headers.get("Retry-After", "").isdigit():
                    retry_after_ok += 1
            else:
                raise ChaosError(
                    f"flood submit {i} answered {status}: {payload}"
                )
        self._require(rejected > 0, "flood past the bound produced no 429s")
        self._require(
            retry_after_ok == rejected,
            f"{rejected - retry_after_ok} 429s lacked a Retry-After header",
        )
        self._require(accepted, "flood had no accepted jobs at all")
        shed = self._metric_sum("repro_serve_shed_total")
        self._require(
            shed >= shed_before + rejected,
            f"repro_serve_shed_total {shed} did not count {rejected} sheds",
        )
        for job_id in accepted:
            job = self._poll_job(job_id)
            self._require(
                job["state"] == "done",
                f"accepted flood job was lost: {job}",
            )
        stable = self._wait_stable()
        return {
            "submitted": self.flood_submits,
            "accepted": len(accepted),
            "rejected": rejected,
            "shed": shed - shed_before,
            "pool": stable["pool"],
        }

    def _fault_sigkill(self) -> Dict[str, Any]:
        body = self._body(
            "sigkill", n=self.big_graph_n, trials=self.big_trials,
            seed_offset=20,
        )
        job_id = self._submit(body)
        deadline = time.monotonic() + 120
        underway = False
        while time.monotonic() < deadline:
            job = self._job(job_id)
            if job["state"] == "done":
                break  # too fast to catch mid-run; kill anyway
            if (
                job["state"] == "running"
                and job["progress"]["completed"] >= 1
            ):
                underway = True
                break
            time.sleep(0.05)

        proc = self.proc
        self._require(proc is not None, "no live daemon to SIGKILL")
        self._stop_server(graceful=False)

        # tear the journal the way a crash mid-write would
        status_path = os.path.join(
            self.state_dir, "jobs", job_id, "status.json"
        )
        torn = self._truncate(status_path) if os.path.exists(status_path) else None

        self._start_server()
        job = self._poll_job(job_id, timeout=300)
        self._require(
            job["state"] == "done",
            f"job did not recover after SIGKILL: {job}",
        )
        self._require(
            job["progress"]["completed"] == job["trials"],
            f"recovered job lost trials: {job['progress']}",
        )
        # no duplicate execution: a repeat-POST is answered entirely
        # from the store
        repeat_id = self._submit(body)
        repeat = self._poll_job(repeat_id)
        self._require(
            repeat["progress"]["cached"] == repeat["trials"]
            and repeat["progress"]["computed"] == 0,
            f"repeat-POST recomputed trials: {repeat['progress']}",
        )
        self._assert_served_bytes(body, repeat_id)
        self._wait_stable()
        return {
            "killed_mid_run": underway,
            "journal_torn_at": torn,
            "recovered_progress": job["progress"],
        }

    def _fault_sync_skew(self) -> Dict[str, Any]:
        # a sweep slower than the server's sync patience must degrade
        # to the async contract (202 + job record), never hang or 500.
        # Stall every worker past the sync timeout first — "slow" must
        # not depend on how fast this box runs the sweep itself.
        _, health, _ = self._http("GET", "/healthz")
        for _ in range(health["pool"]["alive"]):
            status, _, _ = self._http(
                "POST",
                "/v1/chaos",
                {"fault": "stall_worker", "seconds": self.stall_seconds},
            )
            self._require(
                status == 202, f"stall_worker injection answered {status}"
            )
        time.sleep(0.2)  # let the stall tokens get picked up
        slow = self._body(
            "sync-skew", mode="sync", n=self.big_graph_n, trials=2,
            seed_offset=30,
        )
        started = time.monotonic()
        status, payload, _ = self._http("POST", "/v1/sweeps", slow)
        elapsed = time.monotonic() - started
        self._require(
            status == 202,
            f"slow sync submit answered {status} (expected 202 degrade)",
        )
        job = self._poll_job(payload["job"]["id"])
        self._require(job["state"] == "done", f"degraded job lost: {job}")
        self._assert_served_bytes(slow, payload["job"]["id"])

        # a fast sync still gets its inline answer (or completes right
        # after degrading on a loaded box)
        fast = self._body(
            "sync-fast", mode="sync", n=12, trials=1, seed_offset=31,
            family="cycle",
        )
        status, payload, _ = self._http("POST", "/v1/sweeps", fast)
        self._require(
            status in (200, 202),
            f"fast sync submit answered {status}",
        )
        if status == 200:
            self._require(
                "results" in payload, "200 sync answer without results"
            )
        else:
            self._poll_job(payload["job"]["id"])
        self._wait_stable()
        return {
            "degraded_after_s": round(elapsed, 3),
            "fast_sync_status": status,
        }

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        os.makedirs(self.state_dir, exist_ok=True)
        records: List[Dict[str, Any]] = []
        ok = True
        graceful = False
        self._start_server()
        try:
            for fault in self.faults:
                self._log(f"chaos: injecting {fault} ...")
                started = time.monotonic()
                try:
                    details = getattr(self, f"_fault_{fault}")()
                    records.append(
                        {
                            "fault": fault,
                            "ok": True,
                            "elapsed_s": round(
                                time.monotonic() - started, 3
                            ),
                            **details,
                        }
                    )
                    self._log(f"chaos: {fault} re-stabilized OK")
                except Exception as exc:
                    ok = False
                    records.append(
                        {
                            "fault": fault,
                            "ok": False,
                            "elapsed_s": round(
                                time.monotonic() - started, 3
                            ),
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    self._log(f"chaos: {fault} FAILED: {exc}")
        finally:
            graceful = self._stop_server()
        leaked = self._leaked_segments()
        report = {
            "seed": self.seed,
            "state_dir": self.state_dir,
            "faults": records,
            "graceful_shutdown": graceful,
            "leaked_shm": leaked,
            "ok": ok and graceful and not leaked,
        }
        if self.report_path:
            with open(self.report_path, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return report

    @staticmethod
    def _leaked_segments(timeout: float = 5.0) -> List[str]:
        """Audit /dev/shm, allowing the resource tracker a moment to
        reap segments from any SIGKILLed process."""
        from repro.parallel import leaked_shared_segments

        deadline = time.monotonic() + timeout
        leaked = leaked_shared_segments()
        while leaked and time.monotonic() < deadline:
            time.sleep(0.25)
            leaked = leaked_shared_segments()
        return list(leaked)
