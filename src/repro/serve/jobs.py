"""Job queue and worker pool of the serve control plane.

A *job* is one validated sweep submission: an ordered list of
:class:`~repro.parallel.TrialSpec` records plus bookkeeping (state,
progress counters, timestamps).  The :class:`JobManager` owns

* a FIFO queue drained by a bounded pool of worker threads, each
  driving a :class:`~repro.parallel.TrialRunner` in resilient mode
  (per-trial fork/timeout/retry/checkpoint) for the specs that
  actually need computing;
* the content-addressed :class:`~repro.serve.store.ResultStore` —
  every cacheable trial is leased there first, so repeated submissions
  hit the store and concurrent identical submissions coalesce onto one
  computation;
* a per-job on-disk journal (``<state>/jobs/<id>/``) holding the
  serialized specs (``job.json``, immutable), mutable status
  (``status.json``, atomically replaced), the runner's resume
  checkpoint (``checkpoint.jsonl``), streamed telemetry
  (``telemetry.jsonl``) and the final response (``results.json``).

Crash-safety contract: everything a restarted server needs is in the
journal.  :meth:`JobManager.start` re-enqueues every job that was
queued or running when the previous process died; re-execution leases
the store first (finished trials are cache hits) and the runner
resumes the remainder from its checkpoint, so no completed trial is
ever recomputed.  A SIGTERM'd server *requeues* (rather than cancels)
jobs interrupted mid-run — see :meth:`JobManager.shutdown`.

Trial failures (:class:`~repro.parallel.FailedTrial`) do not fail a
job: like resilient sweeps, the job completes ``done`` with ``failed``
entries in the affected slots.  A job fails only when the runner
itself raises.

Self-healing contract (the serve-layer analogue of the paper's
self-stabilization): a *supervisor* thread watches the pool — workers
stamp heartbeats, crashed workers are restarted
(``repro_serve_worker_restarts_total``), and the pool autoscales
between ``min_workers`` and ``max_workers`` on sustained backlog /
idle grace.  Overload is *shed*, never buffered unboundedly: with
``max_queue_depth`` set, :meth:`JobManager.submit` raises
:class:`QueueFull` (HTTP 429 upstream) at saturation and
:class:`Draining` (503) during shutdown; queued jobs past their
``deadline_s`` are shed as ``cancelled`` with a ``deadline`` error.
A per-fingerprint circuit breaker fails-fast specs that keep failing
(``circuit_threshold`` consecutive times) instead of burning retries.

Lock ordering: ``JobManager._lock`` may be held when taking
``metrics_lock`` (``_finish_locked`` → ``_metric``), so nothing may
acquire ``_lock`` while holding ``metrics_lock`` — scrape handlers
must snapshot queue/pool stats *before* locking the registry.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.serialize import (
    SCHEMA_VERSION,
    execution_to_dict,
    trial_spec_from_dict,
    trial_spec_to_dict,
)
from repro.observability.metrics import (
    MetricsRegistry,
    record_failed_trial,
    record_run_result,
)
from repro.observability.telemetry import TelemetrySink
from repro.parallel.trial_runner import (
    FailedTrial,
    SweepCancelled,
    TrialRunner,
    TrialSpec,
    execute_trial,
    spec_fingerprint,
)
from repro.serve.store import ResultStore

__all__ = ["Job", "JobManager", "JOB_STATES", "QueueFull", "Draining"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: How long a job waits for another job's in-flight computation of the
#: same fingerprint before falling back to computing inline.
COALESCE_TIMEOUT = 600.0

#: After this many seconds an open circuit half-opens: the next
#: submission of the failing fingerprint gets one real attempt.
CIRCUIT_COOLDOWN = 300.0


class QueueFull(RuntimeError):
    """Admission control rejected a submission: the queue is at
    ``max_queue_depth``.  ``retry_after`` is the server's estimate (in
    whole seconds) of when capacity frees up — it becomes the HTTP
    ``Retry-After`` header."""

    def __init__(self, retry_after: int, depth: int) -> None:
        super().__init__(
            f"job queue is full ({depth} queued); retry in ~{retry_after}s"
        )
        self.retry_after = int(retry_after)
        self.depth = depth


class Draining(RuntimeError):
    """Submission rejected because the manager is shutting down."""

    def __init__(self) -> None:
        super().__init__("server is draining for shutdown; not accepting jobs")


class _ChaosWorkerDeath(RuntimeError):
    """Injected worker crash (``chaos_kill_worker``): unwinds the worker
    thread without deregistering it, exactly like an unhandled bug
    would, so the supervisor's restart path is exercised end-to-end."""


# Queue tokens besides job ids.  ``None`` is the shutdown poison pill
# (worker exits, stays registered for the joining shutdown); _RETIRE is
# the scale-down pill (worker deregisters itself and exits); _CHAOS_*
# are fault injections (see chaos_kill_worker / chaos_stall_worker).
_RETIRE = object()
_CHAOS_KILL = object()
_CHAOS_STALL = object()


def _now() -> float:
    return time.time()


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)


class Job:
    """One sweep submission and its lifecycle state.

    Mutable fields (``state``, ``progress``, timestamps, ``error``,
    ``entries``) are owned by the single worker thread executing the
    job; readers snapshot them through :meth:`summary` under the
    manager's lock.
    """

    def __init__(
        self,
        job_id: str,
        specs: Sequence[TrialSpec],
        *,
        directory: str,
        label: Optional[str] = None,
        mode: str = "async",
        created: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.id = job_id
        self.specs: Tuple[TrialSpec, ...] = tuple(specs)
        self.fingerprints: Tuple[str, ...] = tuple(
            spec_fingerprint(s) for s in self.specs
        )
        self.directory = directory
        self.label = label
        self.mode = mode
        #: absolute ``time.time()`` seconds; queued jobs past it are
        #: shed, running jobs unwind at the next trial boundary
        self.deadline = deadline
        self.state = "queued"
        self.error: Optional[str] = None
        self.created = _now() if created is None else created
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.progress: Dict[str, int] = {
            "total": len(self.specs),
            "completed": 0,
            "cached": 0,
            "computed": 0,
            "resumed": 0,
            "failed": 0,
            "coalesced": 0,
        }
        self.entries: Optional[List[Optional[Dict[str, Any]]]] = None
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        self.telemetry_requested = any(s.telemetry for s in self.specs)

    # -- journal paths --------------------------------------------------
    @property
    def spec_path(self) -> str:
        return os.path.join(self.directory, "job.json")

    @property
    def status_path(self) -> str:
        return os.path.join(self.directory, "status.json")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, "checkpoint.jsonl")

    @property
    def telemetry_path(self) -> str:
        return os.path.join(self.directory, "telemetry.jsonl")

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, "results.json")

    # -- views ----------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The JSON job record served by ``GET /v1/jobs/<id>``."""
        return {
            "id": self.id,
            "label": self.label,
            "mode": self.mode,
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "deadline": self.deadline,
            "trials": len(self.specs),
            "progress": dict(self.progress),
            "telemetry": self.telemetry_requested,
            "links": {
                "status": f"/v1/jobs/{self.id}",
                "result": f"/v1/jobs/{self.id}/result",
                "telemetry": f"/v1/jobs/{self.id}/telemetry",
                "cancel": f"/v1/jobs/{self.id}/cancel",
            },
        }

    def status_payload(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "progress": dict(self.progress),
        }


class JobManager:
    """Supervised worker pool + journal + result store.  Thread-safe."""

    def __init__(
        self,
        state_dir: str,
        *,
        workers: int = 2,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        circuit_threshold: Optional[int] = 3,
        runner_jobs: int = 1,
        trial_timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.1,
        registry: Optional[MetricsRegistry] = None,
        scale_up_after: float = 1.0,
        scale_down_idle: float = 5.0,
        supervise_interval: float = 0.25,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        min_workers = workers if min_workers is None else int(min_workers)
        max_workers = workers if max_workers is None else int(max_workers)
        if not (1 <= min_workers <= workers <= max_workers):
            raise ValueError(
                f"need 1 <= min_workers <= workers <= max_workers, got "
                f"{min_workers} / {workers} / {max_workers}"
            )
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.state_dir = os.path.abspath(state_dir)
        self.jobs_dir = os.path.join(self.state_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.store = ResultStore(
            os.path.join(self.state_dir, "results"),
            on_corrupt=self._record_corrupt_entry,
        )
        self.workers = workers
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.max_queue_depth = max_queue_depth
        self.circuit_threshold = (
            None if not circuit_threshold else int(circuit_threshold)
        )
        self.runner_jobs = runner_jobs
        self.trial_timeout = trial_timeout
        self.retries = retries
        self.backoff = backoff
        self.scale_up_after = scale_up_after
        self.scale_down_idle = scale_down_idle
        self.supervise_interval = supervise_interval
        self.registry = registry if registry is not None else MetricsRegistry()
        # MetricsRegistry increments are not atomic; every server-side
        # record goes through this lock (trial workers are separate
        # *processes* and never touch it).
        self.metrics_lock = threading.Lock()
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._threads: Dict[str, threading.Thread] = {}
        self._heartbeats: Dict[str, float] = {}
        self._stop = threading.Event()
        self._seq = 0
        self._worker_seq = 0
        self._target = workers
        self._restarts = 0
        self._supervisor: Optional[threading.Thread] = None
        # autoscaler bookkeeping (supervisor thread only)
        self._backlog_mark: Optional[Tuple[float, int]] = None
        self._idle_since: Optional[float] = None
        # EWMA of finished-job wall-clock, for Retry-After estimates
        self._avg_job_seconds: Optional[float] = None
        # fingerprint -> (consecutive failures, last failure time)
        self._circuit: Dict[str, Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover journaled jobs, then start the worker pool and its
        supervisor."""
        self._recover()
        with self._lock:
            self._target = self.workers
            for _ in range(self.workers):
                self._spawn_worker_locked()
        self._supervisor = threading.Thread(
            target=self._supervise_loop,
            name="repro-serve-supervisor",
            daemon=True,
        )
        self._supervisor.start()

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Graceful stop: interrupt running sweeps (they checkpoint),
        journal interrupted jobs back to ``queued`` for the next
        process, and join the workers.

        The supervisor is quiesced *first*: it restarts crashed workers
        and scales the pool up, and either action after the poison
        pills are counted would leave a worker without a pill (the join
        below would then hang until ``timeout``).  Only once the
        supervisor is provably not spawning is the live-thread set
        snapshotted and one pill sent per worker.
        """
        self._stop.set()
        deadline = time.monotonic() + timeout
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.join(max(0.1, deadline - time.monotonic()))
            self._supervisor = None
        with self._lock:
            running = [j for j in self._jobs.values() if j.state == "running"]
            threads = list(self._threads.values())
        for job in running:
            job.cancel_event.set()
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        with self._lock:
            self._threads.clear()
            self._heartbeats.clear()

    # ------------------------------------------------------------------
    # supervision: heartbeats, restarts, autoscaling
    # ------------------------------------------------------------------
    def _spawn_worker_locked(self) -> threading.Thread:
        self._worker_seq += 1
        name = f"repro-serve-worker-{self._worker_seq}"
        thread = threading.Thread(
            target=self._worker_main, args=(name,), name=name, daemon=True
        )
        self._threads[name] = thread
        self._heartbeats[name] = time.monotonic()
        thread.start()
        return thread

    def _beat(self, name: str) -> None:
        self._heartbeats[name] = time.monotonic()

    def _supervise_loop(self) -> None:
        while not self._stop.wait(self.supervise_interval):
            try:
                self._supervise_once()
            except Exception:
                # the supervisor must never die of a transient error —
                # it is the thing that un-sticks everything else
                pass

    def _supervise_once(self, now: Optional[float] = None) -> None:
        """One supervision pass: bury + replace crashed workers, shed
        expired queued jobs, apply the autoscaling policy, reconcile
        the pool to its target size."""
        now = time.monotonic() if now is None else now
        restarted = 0
        with self._lock:
            # 1. crashed workers: deregister, count, respawn below via
            #    the reconcile step
            dead = [
                name
                for name, thread in self._threads.items()
                if not thread.is_alive()
            ]
            for name in dead:
                del self._threads[name]
                self._heartbeats.pop(name, None)
            restarted = len(dead)
            self._restarts += restarted

            # 2. deadline shedding for jobs still sitting in the queue
            wall = _now()
            for job in self._jobs.values():
                if (
                    job.state == "queued"
                    and job.deadline is not None
                    and wall > job.deadline
                ):
                    self._shed_locked(job, "deadline")

            # 3. autoscaling policy
            depth = sum(
                1 for j in self._jobs.values() if j.state == "queued"
            )
            busy = depth + sum(
                1 for j in self._jobs.values() if j.state == "running"
            )
            if depth > 0:
                self._idle_since = None
                if self._backlog_mark is None:
                    self._backlog_mark = (now, depth)
                else:
                    since, depth_then = self._backlog_mark
                    sustained = now - since >= self.scale_up_after
                    draining = depth < depth_then  # net drain since mark
                    if draining:
                        # drain rate is keeping up: restart the window
                        self._backlog_mark = (now, depth)
                    elif sustained and self._target < self.max_workers:
                        self._target += 1
                        self._backlog_mark = (now, depth)
            else:
                self._backlog_mark = None
                if busy > 0:
                    self._idle_since = None
                elif self._idle_since is None:
                    self._idle_since = now
                elif (
                    now - self._idle_since >= self.scale_down_idle
                    and self._target > self.min_workers
                ):
                    self._target -= 1
                    self._idle_since = now  # one retire per grace period
                    self._queue.put(_RETIRE)

            # 4. reconcile pool to target (covers both restart-after-
            #    crash and scale-up; scale-down happens via _RETIRE)
            while len(self._threads) < self._target:
                self._spawn_worker_locked()
        if restarted:
            self._metric(
                lambda reg: reg.counter(
                    "repro_serve_worker_restarts_total",
                    "Crashed worker threads restarted by the supervisor",
                ).inc(restarted)
            )

    def pool_stats(self) -> Dict[str, Any]:
        """Supervisor's view of the pool, for ``/healthz`` and tests."""
        now = time.monotonic()
        with self._lock:
            alive = sum(
                1 for t in self._threads.values() if t.is_alive()
            )
            beats = list(self._heartbeats.values())
            return {
                "target": self._target,
                "alive": alive,
                "min": self.min_workers,
                "max": self.max_workers,
                "restarts": self._restarts,
                "oldest_heartbeat_s": (
                    round(now - min(beats), 3) if beats else None
                ),
            }

    def saturation(self) -> float:
        """Queue depth over capacity in ``[0, 1]`` (0 when unbounded)."""
        if self.max_queue_depth is None:
            return 0.0
        return min(1.0, self.queue_depth() / self.max_queue_depth)

    @property
    def draining(self) -> bool:
        return self._stop.is_set()

    # -- chaos injection hooks (exposed over HTTP only behind
    #    --enable-chaos; harmless but useless in production) ------------
    def chaos_kill_worker(self) -> None:
        """Crash one worker at its next queue pickup.  The thread dies
        exactly like an unhandled exception would — still registered —
        so the supervisor has to notice and restart it."""
        self._queue.put(_CHAOS_KILL)

    def chaos_stall_worker(self, seconds: float) -> None:
        """Make one worker sleep ``seconds`` (capped at 30) at its next
        pickup: deterministic busy-pool for flood tests."""
        self._queue.put((_CHAOS_STALL, min(float(seconds), 30.0)))

    def _recover(self) -> None:
        """Re-register every journaled job; re-enqueue unfinished ones."""
        try:
            entries = sorted(os.listdir(self.jobs_dir))
        except OSError:
            return
        recovered = []
        for job_id in entries:
            if job_id in self._jobs:
                # already registered (submitted before start()): replacing
                # the live Job would orphan the submitter's handle
                continue
            directory = os.path.join(self.jobs_dir, job_id)
            try:
                with open(
                    os.path.join(directory, "job.json"), encoding="utf-8"
                ) as handle:
                    record = json.load(handle)
                specs = [
                    trial_spec_from_dict(s) for s in record["specs"]
                ]
            except (OSError, ValueError, KeyError):
                continue  # torn journal: not recoverable, leave on disk
            deadline = record.get("deadline")
            job = Job(
                job_id,
                specs,
                directory=directory,
                label=record.get("label"),
                mode=record.get("mode", "async"),
                created=record.get("created"),
                deadline=deadline if isinstance(deadline, (int, float)) else None,
            )
            try:
                with open(job.status_path, encoding="utf-8") as handle:
                    status = json.load(handle)
            except (OSError, ValueError):
                status = {}
            state = status.get("state", "queued")
            job.started = status.get("started")
            job.finished = status.get("finished")
            job.error = status.get("error")
            progress = status.get("progress")
            if isinstance(progress, dict):
                job.progress.update(
                    {k: int(v) for k, v in progress.items() if k in job.progress}
                )
            if state in ("done", "failed", "cancelled"):
                job.state = state
                job.done_event.set()
            else:
                # queued, running, or torn status: run it (again); the
                # store + checkpoint make re-execution incremental
                job.state = "queued"
                job.progress.update(
                    completed=0, cached=0, computed=0, resumed=0,
                    failed=0, coalesced=0,
                )
                recovered.append(job.id)
            self._jobs[job.id] = job
        for job_id in recovered:
            self._journal(self._jobs[job_id])
            self._queue.put(job_id)

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        specs: Sequence[TrialSpec],
        *,
        label: Optional[str] = None,
        mode: str = "async",
        deadline_s: Optional[float] = None,
    ) -> Job:
        """Journal and enqueue one job; returns immediately.

        Admission control happens here: raises :class:`Draining` while
        shutting down and :class:`QueueFull` when ``max_queue_depth``
        is reached — both are *shed* submissions
        (``repro_serve_shed_total``), never silently buffered.
        ``deadline_s`` (seconds from now) bounds how long the job may
        wait + run before it is shed as cancelled.
        """
        if not specs:
            raise ValueError("a job needs at least one trial spec")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        serialized = [trial_spec_to_dict(s) for s in specs]  # may raise
        with self._lock:
            if self._stop.is_set():
                self._count_shed("draining")
                raise Draining()
            if self.max_queue_depth is not None:
                depth = sum(
                    1 for j in self._jobs.values() if j.state == "queued"
                )
                if depth >= self.max_queue_depth:
                    self._count_shed("queue_full")
                    raise QueueFull(self._retry_after_locked(depth), depth)
            self._seq += 1
            job_id = f"{int(_now() * 1000):013d}-{self._seq:04d}"
            directory = os.path.join(self.jobs_dir, job_id)
            os.makedirs(directory, exist_ok=True)
            job = Job(
                job_id,
                specs,
                directory=directory,
                label=label,
                mode=mode,
                deadline=(
                    None if deadline_s is None else _now() + float(deadline_s)
                ),
            )
            _atomic_write_json(
                job.spec_path,
                {
                    "schema": SCHEMA_VERSION,
                    "id": job.id,
                    "label": job.label,
                    "mode": job.mode,
                    "created": job.created,
                    "deadline": job.deadline,
                    "specs": serialized,
                },
            )
            self._journal(job)
            self._jobs[job.id] = job
        self._metric(
            lambda reg: reg.counter(
                "repro_jobs_submitted_total", "Sweep jobs accepted"
            ).inc()
        )
        self._queue.put(job.id)
        return job

    def _retry_after_locked(self, depth: int) -> int:
        """Whole-second ``Retry-After`` estimate: time for the pool to
        drain one slot at the observed per-job pace."""
        avg = self._avg_job_seconds if self._avg_job_seconds else 1.0
        estimate = depth * avg / max(1, self._target)
        return max(1, min(60, int(estimate) + 1))

    def _count_shed(self, reason: str) -> None:
        self._metric(
            lambda reg: reg.counter(
                "repro_serve_shed_total",
                "Work shed by admission control / deadlines, by reason",
            ).inc(reason=reason)
        )

    def _shed_locked(self, job: Job, reason: str) -> None:
        self._count_shed(reason)
        self._finish_locked(job, "cancelled", f"shed: {reason} exceeded")

    def _record_corrupt_entry(self, fingerprint: str) -> None:
        self._metric(
            lambda reg: reg.counter(
                "repro_store_corrupt_total",
                "Corrupt result-store entries quarantined to *.corrupt",
            ).inc()
        )

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: (j.created, j.id))

    def wait(self, job: Job, timeout: Optional[float] = None) -> bool:
        return job.done_event.wait(timeout)

    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the job's (possibly new) state
        or ``None`` for an unknown id.  Queued jobs cancel immediately;
        running jobs unwind at the runner's next scheduling point."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            if job.state == "queued":
                self._finish_locked(job, "cancelled")
            return job.state

    def results(self, job: Job) -> Optional[List[Dict[str, Any]]]:
        """The per-trial result entries of a finished job (``None`` if
        unfinished or the journal is unreadable)."""
        if job.entries is not None and all(
            e is not None for e in job.entries
        ):
            return list(job.entries)  # in-process, fresh
        try:
            with open(job.results_path, encoding="utf-8") as handle:
                return json.load(handle)["results"]
        except (OSError, ValueError, KeyError):
            return None

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "queued")

    def running_count(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "running")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _metric(self, record: Callable[[MetricsRegistry], None]) -> None:
        with self.metrics_lock:
            record(self.registry)

    def _journal(self, job: Job) -> None:
        _atomic_write_json(job.status_path, job.status_payload())

    def _finish_locked(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.error = error
        job.finished = _now()
        if state == "done" and job.started is not None:
            duration = max(0.0, job.finished - job.started)
            if self._avg_job_seconds is None:
                self._avg_job_seconds = duration
            else:
                self._avg_job_seconds = (
                    0.7 * self._avg_job_seconds + 0.3 * duration
                )
        self._journal(job)
        job.done_event.set()
        self._metric(
            lambda reg: reg.counter(
                "repro_jobs_completed_total", "Jobs finished, by final state"
            ).inc(state=state)
        )

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        with self._lock:
            self._finish_locked(job, state, error)

    def _worker_main(self, name: str) -> None:
        try:
            self._worker_loop(name)
        except _ChaosWorkerDeath:
            # injected crash: die silently but *without* deregistering,
            # leaving the same wreckage a real bug would
            pass

    def _worker_loop(self, name: str) -> None:
        while True:
            self._beat(name)
            token = self._queue.get()
            self._beat(name)
            if token is None:
                return  # shutdown pill: stay registered, shutdown joins
            if token is _RETIRE:
                with self._lock:
                    self._threads.pop(name, None)
                    self._heartbeats.pop(name, None)
                return
            if token is _CHAOS_KILL:
                raise _ChaosWorkerDeath(name)
            if isinstance(token, tuple) and token and token[0] is _CHAOS_STALL:
                time.sleep(token[1])
                continue
            if self._stop.is_set():
                # leave the job journaled as queued for the next process
                return
            job_id = token
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                if job.cancel_event.is_set():
                    self._finish_locked(job, "cancelled")
                    continue
                if job.deadline is not None and _now() > job.deadline:
                    self._shed_locked(job, "deadline")
                    continue
                job.state = "running"
                job.started = _now()
                self._journal(job)
            try:
                self._execute(job)
            except SweepCancelled as exc:
                if getattr(exc, "reason", "cancel") == "deadline":
                    self._count_shed("deadline")
                    self._finish(job, "cancelled", "shed: deadline exceeded")
                elif self._stop.is_set():
                    # shutdown interruption, not a user cancel: requeue
                    # for the next process (checkpoint makes it cheap)
                    with self._lock:
                        job.state = "queued"
                        self._journal(job)
                else:
                    self._finish(job, "cancelled")
            except Exception as exc:  # infrastructure failure
                self._finish(job, "failed", f"{type(exc).__name__}: {exc}")
            self._beat(name)

    def _execute(self, job: Job) -> None:
        specs, fingerprints = job.specs, job.fingerprints
        n = len(specs)
        entries: List[Optional[Dict[str, Any]]] = [None] * n
        job.entries = entries
        cacheable = [self.store.cacheable(s) for s in specs]
        sink = TelemetrySink(job.telemetry_path) if job.telemetry_requested else None

        compute: List[int] = []  # indices this job must run
        followers: List[Tuple[int, threading.Event]] = []
        leaders: Dict[str, int] = {}  # fp -> leading index in this job
        dup_of: Dict[int, int] = {}
        leased: List[str] = []  # fps to abandon if we unwind early

        def cache_entry(index: int, result: Dict[str, Any]) -> None:
            entries[index] = {"status": "ok", "cached": True, "result": result}
            job.progress["completed"] += 1
            job.progress["cached"] += 1
            self._metric(
                lambda reg: reg.counter(
                    "repro_result_cache_hits_total",
                    "Trials served from the content-addressed result store",
                ).inc()
            )
            if sink is not None and result.get("telemetry") is not None:
                sink.write(result["telemetry"])

        def circuit_entry(index: int, fp: str) -> None:
            entries[index] = {
                "status": "failed",
                "cached": False,
                "error_type": "CircuitOpen",
                "error": (
                    f"fingerprint {fp} failed "
                    f"{self.circuit_threshold} consecutive attempts; "
                    f"failing fast (half-opens after "
                    f"{CIRCUIT_COOLDOWN:.0f}s)"
                ),
                "attempts": 0,
                "timed_out": False,
            }
            job.progress["completed"] += 1
            job.progress["failed"] += 1
            self._metric(
                lambda reg: reg.counter(
                    "repro_serve_circuit_open_total",
                    "Trials failed fast because their fingerprint's "
                    "circuit breaker was open",
                ).inc()
            )

        try:
            for i in range(n):
                fp = fingerprints[i]
                if self._circuit_open(fp):
                    circuit_entry(i, fp)
                    continue
                if not cacheable[i]:
                    compute.append(i)
                    continue
                if fp in leaders:
                    dup_of[i] = leaders[fp]
                    continue
                kind, value = self.store.lease(fp)
                if kind == "hit":
                    cache_entry(i, value)
                elif kind == "wait":
                    followers.append((i, value))
                    job.progress["coalesced"] += 1
                    self._metric(
                        lambda reg: reg.counter(
                            "repro_result_inflight_coalesced_total",
                            "Trials that joined another job's in-flight "
                            "computation instead of recomputing",
                        ).inc()
                    )
                else:
                    leaders[fp] = i
                    leased.append(fp)
                    compute.append(i)
            self._journal(job)

            if compute:
                self._run_compute(job, compute, entries, cacheable, leased, sink)
            for i, event in followers:
                self._check_cancelled(job)
                result, timed_out = self.store.wait(
                    fingerprints[i], event, COALESCE_TIMEOUT
                )
                if timed_out:
                    self._metric(
                        lambda reg: reg.counter(
                            "repro_store_wait_timeouts_total",
                            "Coalesce waits that expired before the "
                            "leading computation fulfilled or abandoned",
                        ).inc()
                    )
                if result is not None:
                    cache_entry(i, result)
                else:
                    # the leader abandoned (failed / cancelled) or the
                    # wait timed out: compute for ourselves, re-leasing
                    # so the store still fills
                    self._compute_fallback(job, i, entries, cacheable[i], sink)
                self._journal(job)
            for i, leader in dup_of.items():
                entries[i] = entries[leader]
                job.progress["completed"] += 1
                job.progress["cached"] += 1
        except BaseException:
            for fp in leased:
                self.store.abandon(fp)
            raise
        finally:
            if sink is not None:
                sink.close()

        _atomic_write_json(
            job.results_path,
            {"schema": SCHEMA_VERSION, "id": job.id, "results": entries},
        )
        self._finish(job, "done")

    def _check_cancelled(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise SweepCancelled("job cancelled")
        if job.deadline is not None and _now() > job.deadline:
            raise SweepCancelled("job deadline exceeded", reason="deadline")

    # -- circuit breaker ------------------------------------------------
    def _circuit_open(self, fingerprint: str) -> bool:
        if self.circuit_threshold is None:
            return False
        with self._lock:
            record = self._circuit.get(fingerprint)
            if record is None:
                return False
            failures, last = record
            if failures < self.circuit_threshold:
                return False
            if _now() - last >= CIRCUIT_COOLDOWN:
                # half-open: let exactly one attempt through by dropping
                # below the threshold; a failure re-opens, success resets
                self._circuit[fingerprint] = (
                    self.circuit_threshold - 1,
                    last,
                )
                return False
            return True

    def _circuit_record(self, fingerprint: str, ok: bool) -> None:
        if self.circuit_threshold is None:
            return
        with self._lock:
            if ok:
                self._circuit.pop(fingerprint, None)
            else:
                failures, _ = self._circuit.get(fingerprint, (0, 0.0))
                self._circuit[fingerprint] = (failures + 1, _now())

    def _run_compute(
        self,
        job: Job,
        compute: List[int],
        entries: List[Optional[Dict[str, Any]]],
        cacheable: List[bool],
        leased: List[str],
        sink: Optional[TelemetrySink],
    ) -> None:
        """Drive one resilient runner over the to-compute subset."""
        fingerprints = job.fingerprints

        def on_result(local: int, outcome, resumed: bool) -> None:
            index = compute[local]
            fp = fingerprints[index]
            if isinstance(outcome, FailedTrial):
                entries[index] = {
                    "status": "failed",
                    "cached": False,
                    "error_type": outcome.error_type,
                    "error": outcome.error,
                    "attempts": outcome.attempts,
                    "timed_out": outcome.timed_out,
                }
                job.progress["completed"] += 1
                job.progress["failed"] += 1
                if cacheable[index]:
                    self.store.abandon(fp)
                    if fp in leased:
                        leased.remove(fp)
                self._circuit_record(fp, ok=False)
                self._metric(lambda reg: record_failed_trial(reg, outcome))
            else:
                result = execution_to_dict(outcome)
                if cacheable[index]:
                    self.store.fulfill(fp, result)
                    if fp in leased:
                        leased.remove(fp)
                    self._metric(
                        lambda reg: reg.counter(
                            "repro_result_cache_misses_total",
                            "Trials computed because the store had no "
                            "result for their fingerprint",
                        ).inc()
                    )
                entries[index] = {
                    "status": "ok",
                    "cached": False,
                    "result": result,
                }
                job.progress["completed"] += 1
                job.progress["computed"] += 1
                if resumed:
                    job.progress["resumed"] += 1
                self._circuit_record(fp, ok=True)
                self._metric(lambda reg: record_run_result(reg, outcome))
                if sink is not None and result.get("telemetry") is not None:
                    sink.write(result["telemetry"])
            self._journal(job)

        runner = TrialRunner(
            jobs=self.runner_jobs,
            timeout=self.trial_timeout,
            retries=self.retries,
            backoff=self.backoff,
            checkpoint=job.checkpoint_path,
            on_result=on_result,
            cancel=job.cancel_event,
            deadline=job.deadline,
        )
        runner.map([job.specs[i] for i in compute])

    def _compute_fallback(
        self,
        job: Job,
        index: int,
        entries: List[Optional[Dict[str, Any]]],
        cacheable: bool,
        sink: Optional[TelemetrySink],
    ) -> None:
        """A follower whose leader abandoned: compute inline (once)."""
        fp = job.fingerprints[index]
        lease_kind = None
        if cacheable:
            lease_kind, value = self.store.lease(fp)
            if lease_kind == "hit":
                # raced with a concurrent fallback that already stored it
                entries[index] = {"status": "ok", "cached": True, "result": value}
                job.progress["completed"] += 1
                job.progress["cached"] += 1
                return
        try:
            outcome = execute_trial(job.specs[index])
        except Exception as exc:
            if lease_kind == "lease":
                self.store.abandon(fp)
            entries[index] = {
                "status": "failed",
                "cached": False,
                "error_type": type(exc).__name__,
                "error": str(exc),
                "attempts": 1,
                "timed_out": False,
            }
            job.progress["completed"] += 1
            job.progress["failed"] += 1
            self._circuit_record(fp, ok=False)
            return
        result = execution_to_dict(outcome)
        if lease_kind == "lease":
            self.store.fulfill(fp, result)
        self._circuit_record(fp, ok=True)
        entries[index] = {"status": "ok", "cached": False, "result": result}
        job.progress["completed"] += 1
        job.progress["computed"] += 1
        self._metric(lambda reg: record_run_result(reg, outcome))
        if sink is not None and result.get("telemetry") is not None:
            sink.write(result["telemetry"])
