"""Job queue and worker pool of the serve control plane.

A *job* is one validated sweep submission: an ordered list of
:class:`~repro.parallel.TrialSpec` records plus bookkeeping (state,
progress counters, timestamps).  The :class:`JobManager` owns

* a FIFO queue drained by a bounded pool of worker threads, each
  driving a :class:`~repro.parallel.TrialRunner` in resilient mode
  (per-trial fork/timeout/retry/checkpoint) for the specs that
  actually need computing;
* the content-addressed :class:`~repro.serve.store.ResultStore` —
  every cacheable trial is leased there first, so repeated submissions
  hit the store and concurrent identical submissions coalesce onto one
  computation;
* a per-job on-disk journal (``<state>/jobs/<id>/``) holding the
  serialized specs (``job.json``, immutable), mutable status
  (``status.json``, atomically replaced), the runner's resume
  checkpoint (``checkpoint.jsonl``), streamed telemetry
  (``telemetry.jsonl``) and the final response (``results.json``).

Crash-safety contract: everything a restarted server needs is in the
journal.  :meth:`JobManager.start` re-enqueues every job that was
queued or running when the previous process died; re-execution leases
the store first (finished trials are cache hits) and the runner
resumes the remainder from its checkpoint, so no completed trial is
ever recomputed.  A SIGTERM'd server *requeues* (rather than cancels)
jobs interrupted mid-run — see :meth:`JobManager.shutdown`.

Trial failures (:class:`~repro.parallel.FailedTrial`) do not fail a
job: like resilient sweeps, the job completes ``done`` with ``failed``
entries in the affected slots.  A job fails only when the runner
itself raises.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.serialize import (
    SCHEMA_VERSION,
    execution_to_dict,
    trial_spec_from_dict,
    trial_spec_to_dict,
)
from repro.observability.metrics import (
    MetricsRegistry,
    record_failed_trial,
    record_run_result,
)
from repro.observability.telemetry import TelemetrySink
from repro.parallel.trial_runner import (
    FailedTrial,
    SweepCancelled,
    TrialRunner,
    TrialSpec,
    execute_trial,
    spec_fingerprint,
)
from repro.serve.store import ResultStore

__all__ = ["Job", "JobManager", "JOB_STATES"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: How long a job waits for another job's in-flight computation of the
#: same fingerprint before falling back to computing inline.
COALESCE_TIMEOUT = 600.0


def _now() -> float:
    return time.time()


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)


class Job:
    """One sweep submission and its lifecycle state.

    Mutable fields (``state``, ``progress``, timestamps, ``error``,
    ``entries``) are owned by the single worker thread executing the
    job; readers snapshot them through :meth:`summary` under the
    manager's lock.
    """

    def __init__(
        self,
        job_id: str,
        specs: Sequence[TrialSpec],
        *,
        directory: str,
        label: Optional[str] = None,
        mode: str = "async",
        created: Optional[float] = None,
    ) -> None:
        self.id = job_id
        self.specs: Tuple[TrialSpec, ...] = tuple(specs)
        self.fingerprints: Tuple[str, ...] = tuple(
            spec_fingerprint(s) for s in self.specs
        )
        self.directory = directory
        self.label = label
        self.mode = mode
        self.state = "queued"
        self.error: Optional[str] = None
        self.created = _now() if created is None else created
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.progress: Dict[str, int] = {
            "total": len(self.specs),
            "completed": 0,
            "cached": 0,
            "computed": 0,
            "resumed": 0,
            "failed": 0,
            "coalesced": 0,
        }
        self.entries: Optional[List[Optional[Dict[str, Any]]]] = None
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()
        self.telemetry_requested = any(s.telemetry for s in self.specs)

    # -- journal paths --------------------------------------------------
    @property
    def spec_path(self) -> str:
        return os.path.join(self.directory, "job.json")

    @property
    def status_path(self) -> str:
        return os.path.join(self.directory, "status.json")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, "checkpoint.jsonl")

    @property
    def telemetry_path(self) -> str:
        return os.path.join(self.directory, "telemetry.jsonl")

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, "results.json")

    # -- views ----------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The JSON job record served by ``GET /v1/jobs/<id>``."""
        return {
            "id": self.id,
            "label": self.label,
            "mode": self.mode,
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "trials": len(self.specs),
            "progress": dict(self.progress),
            "telemetry": self.telemetry_requested,
            "links": {
                "status": f"/v1/jobs/{self.id}",
                "result": f"/v1/jobs/{self.id}/result",
                "telemetry": f"/v1/jobs/{self.id}/telemetry",
                "cancel": f"/v1/jobs/{self.id}/cancel",
            },
        }

    def status_payload(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "progress": dict(self.progress),
        }


class JobManager:
    """Bounded worker pool + journal + result store.  Thread-safe."""

    def __init__(
        self,
        state_dir: str,
        *,
        workers: int = 2,
        runner_jobs: int = 1,
        trial_timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.1,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.state_dir = os.path.abspath(state_dir)
        self.jobs_dir = os.path.join(self.state_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.store = ResultStore(os.path.join(self.state_dir, "results"))
        self.workers = workers
        self.runner_jobs = runner_jobs
        self.trial_timeout = trial_timeout
        self.retries = retries
        self.backoff = backoff
        self.registry = registry if registry is not None else MetricsRegistry()
        # MetricsRegistry increments are not atomic; every server-side
        # record goes through this lock (trial workers are separate
        # *processes* and never touch it).
        self.metrics_lock = threading.Lock()
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover journaled jobs, then start the worker pool."""
        self._recover()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Graceful stop: interrupt running sweeps (they checkpoint),
        journal interrupted jobs back to ``queued`` for the next
        process, and join the workers."""
        self._stop.set()
        with self._lock:
            running = [j for j in self._jobs.values() if j.state == "running"]
        for job in running:
            job.cancel_event.set()
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._threads.clear()

    def _recover(self) -> None:
        """Re-register every journaled job; re-enqueue unfinished ones."""
        try:
            entries = sorted(os.listdir(self.jobs_dir))
        except OSError:
            return
        recovered = []
        for job_id in entries:
            directory = os.path.join(self.jobs_dir, job_id)
            try:
                with open(
                    os.path.join(directory, "job.json"), encoding="utf-8"
                ) as handle:
                    record = json.load(handle)
                specs = [
                    trial_spec_from_dict(s) for s in record["specs"]
                ]
            except (OSError, ValueError, KeyError):
                continue  # torn journal: not recoverable, leave on disk
            job = Job(
                job_id,
                specs,
                directory=directory,
                label=record.get("label"),
                mode=record.get("mode", "async"),
                created=record.get("created"),
            )
            try:
                with open(job.status_path, encoding="utf-8") as handle:
                    status = json.load(handle)
            except (OSError, ValueError):
                status = {}
            state = status.get("state", "queued")
            job.started = status.get("started")
            job.finished = status.get("finished")
            job.error = status.get("error")
            progress = status.get("progress")
            if isinstance(progress, dict):
                job.progress.update(
                    {k: int(v) for k, v in progress.items() if k in job.progress}
                )
            if state in ("done", "failed", "cancelled"):
                job.state = state
                job.done_event.set()
            else:
                # queued, running, or torn status: run it (again); the
                # store + checkpoint make re-execution incremental
                job.state = "queued"
                job.progress.update(
                    completed=0, cached=0, computed=0, resumed=0,
                    failed=0, coalesced=0,
                )
                recovered.append(job.id)
            self._jobs[job.id] = job
        for job_id in recovered:
            self._journal(self._jobs[job_id])
            self._queue.put(job_id)

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        specs: Sequence[TrialSpec],
        *,
        label: Optional[str] = None,
        mode: str = "async",
    ) -> Job:
        """Journal and enqueue one job; returns immediately."""
        if not specs:
            raise ValueError("a job needs at least one trial spec")
        serialized = [trial_spec_to_dict(s) for s in specs]  # may raise
        with self._lock:
            self._seq += 1
            job_id = f"{int(_now() * 1000):013d}-{self._seq:04d}"
            directory = os.path.join(self.jobs_dir, job_id)
            os.makedirs(directory, exist_ok=True)
            job = Job(job_id, specs, directory=directory, label=label, mode=mode)
            _atomic_write_json(
                job.spec_path,
                {
                    "schema": SCHEMA_VERSION,
                    "id": job.id,
                    "label": job.label,
                    "mode": job.mode,
                    "created": job.created,
                    "specs": serialized,
                },
            )
            self._journal(job)
            self._jobs[job.id] = job
        self._metric(
            lambda reg: reg.counter(
                "repro_jobs_submitted_total", "Sweep jobs accepted"
            ).inc()
        )
        self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: (j.created, j.id))

    def wait(self, job: Job, timeout: Optional[float] = None) -> bool:
        return job.done_event.wait(timeout)

    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the job's (possibly new) state
        or ``None`` for an unknown id.  Queued jobs cancel immediately;
        running jobs unwind at the runner's next scheduling point."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            if job.state == "queued":
                self._finish_locked(job, "cancelled")
            return job.state

    def results(self, job: Job) -> Optional[List[Dict[str, Any]]]:
        """The per-trial result entries of a finished job (``None`` if
        unfinished or the journal is unreadable)."""
        if job.entries is not None and all(
            e is not None for e in job.entries
        ):
            return list(job.entries)  # in-process, fresh
        try:
            with open(job.results_path, encoding="utf-8") as handle:
                return json.load(handle)["results"]
        except (OSError, ValueError, KeyError):
            return None

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "queued")

    def running_count(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "running")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _metric(self, record: Callable[[MetricsRegistry], None]) -> None:
        with self.metrics_lock:
            record(self.registry)

    def _journal(self, job: Job) -> None:
        _atomic_write_json(job.status_path, job.status_payload())

    def _finish_locked(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.error = error
        job.finished = _now()
        self._journal(job)
        job.done_event.set()
        self._metric(
            lambda reg: reg.counter(
                "repro_jobs_completed_total", "Jobs finished, by final state"
            ).inc(state=state)
        )

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        with self._lock:
            self._finish_locked(job, state, error)

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            if self._stop.is_set():
                # leave the job journaled as queued for the next process
                return
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                if job.cancel_event.is_set():
                    self._finish_locked(job, "cancelled")
                    continue
                job.state = "running"
                job.started = _now()
                self._journal(job)
            try:
                self._execute(job)
            except SweepCancelled:
                if self._stop.is_set():
                    # shutdown interruption, not a user cancel: requeue
                    # for the next process (checkpoint makes it cheap)
                    with self._lock:
                        job.state = "queued"
                        self._journal(job)
                else:
                    self._finish(job, "cancelled")
            except Exception as exc:  # infrastructure failure
                self._finish(job, "failed", f"{type(exc).__name__}: {exc}")

    def _execute(self, job: Job) -> None:
        specs, fingerprints = job.specs, job.fingerprints
        n = len(specs)
        entries: List[Optional[Dict[str, Any]]] = [None] * n
        job.entries = entries
        cacheable = [self.store.cacheable(s) for s in specs]
        sink = TelemetrySink(job.telemetry_path) if job.telemetry_requested else None

        compute: List[int] = []  # indices this job must run
        followers: List[Tuple[int, threading.Event]] = []
        leaders: Dict[str, int] = {}  # fp -> leading index in this job
        dup_of: Dict[int, int] = {}
        leased: List[str] = []  # fps to abandon if we unwind early

        def cache_entry(index: int, result: Dict[str, Any]) -> None:
            entries[index] = {"status": "ok", "cached": True, "result": result}
            job.progress["completed"] += 1
            job.progress["cached"] += 1
            self._metric(
                lambda reg: reg.counter(
                    "repro_result_cache_hits_total",
                    "Trials served from the content-addressed result store",
                ).inc()
            )
            if sink is not None and result.get("telemetry") is not None:
                sink.write(result["telemetry"])

        try:
            for i in range(n):
                if not cacheable[i]:
                    compute.append(i)
                    continue
                fp = fingerprints[i]
                if fp in leaders:
                    dup_of[i] = leaders[fp]
                    continue
                kind, value = self.store.lease(fp)
                if kind == "hit":
                    cache_entry(i, value)
                elif kind == "wait":
                    followers.append((i, value))
                    job.progress["coalesced"] += 1
                    self._metric(
                        lambda reg: reg.counter(
                            "repro_result_inflight_coalesced_total",
                            "Trials that joined another job's in-flight "
                            "computation instead of recomputing",
                        ).inc()
                    )
                else:
                    leaders[fp] = i
                    leased.append(fp)
                    compute.append(i)
            self._journal(job)

            if compute:
                self._run_compute(job, compute, entries, cacheable, leased, sink)
            for i, event in followers:
                self._check_cancelled(job)
                result, timed_out = self.store.wait(
                    fingerprints[i], event, COALESCE_TIMEOUT
                )
                if timed_out:
                    self._metric(
                        lambda reg: reg.counter(
                            "repro_store_wait_timeouts_total",
                            "Coalesce waits that expired before the "
                            "leading computation fulfilled or abandoned",
                        ).inc()
                    )
                if result is not None:
                    cache_entry(i, result)
                else:
                    # the leader abandoned (failed / cancelled) or the
                    # wait timed out: compute for ourselves, re-leasing
                    # so the store still fills
                    self._compute_fallback(job, i, entries, cacheable[i], sink)
                self._journal(job)
            for i, leader in dup_of.items():
                entries[i] = entries[leader]
                job.progress["completed"] += 1
                job.progress["cached"] += 1
        except BaseException:
            for fp in leased:
                self.store.abandon(fp)
            raise
        finally:
            if sink is not None:
                sink.close()

        _atomic_write_json(
            job.results_path,
            {"schema": SCHEMA_VERSION, "id": job.id, "results": entries},
        )
        self._finish(job, "done")

    def _check_cancelled(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise SweepCancelled("job cancelled")

    def _run_compute(
        self,
        job: Job,
        compute: List[int],
        entries: List[Optional[Dict[str, Any]]],
        cacheable: List[bool],
        leased: List[str],
        sink: Optional[TelemetrySink],
    ) -> None:
        """Drive one resilient runner over the to-compute subset."""
        fingerprints = job.fingerprints

        def on_result(local: int, outcome, resumed: bool) -> None:
            index = compute[local]
            fp = fingerprints[index]
            if isinstance(outcome, FailedTrial):
                entries[index] = {
                    "status": "failed",
                    "cached": False,
                    "error_type": outcome.error_type,
                    "error": outcome.error,
                    "attempts": outcome.attempts,
                    "timed_out": outcome.timed_out,
                }
                job.progress["completed"] += 1
                job.progress["failed"] += 1
                if cacheable[index]:
                    self.store.abandon(fp)
                    if fp in leased:
                        leased.remove(fp)
                self._metric(lambda reg: record_failed_trial(reg, outcome))
            else:
                result = execution_to_dict(outcome)
                if cacheable[index]:
                    self.store.fulfill(fp, result)
                    if fp in leased:
                        leased.remove(fp)
                    self._metric(
                        lambda reg: reg.counter(
                            "repro_result_cache_misses_total",
                            "Trials computed because the store had no "
                            "result for their fingerprint",
                        ).inc()
                    )
                entries[index] = {
                    "status": "ok",
                    "cached": False,
                    "result": result,
                }
                job.progress["completed"] += 1
                job.progress["computed"] += 1
                if resumed:
                    job.progress["resumed"] += 1
                self._metric(lambda reg: record_run_result(reg, outcome))
                if sink is not None and result.get("telemetry") is not None:
                    sink.write(result["telemetry"])
            self._journal(job)

        runner = TrialRunner(
            jobs=self.runner_jobs,
            timeout=self.trial_timeout,
            retries=self.retries,
            backoff=self.backoff,
            checkpoint=job.checkpoint_path,
            on_result=on_result,
            cancel=job.cancel_event,
        )
        runner.map([job.specs[i] for i in compute])

    def _compute_fallback(
        self,
        job: Job,
        index: int,
        entries: List[Optional[Dict[str, Any]]],
        cacheable: bool,
        sink: Optional[TelemetrySink],
    ) -> None:
        """A follower whose leader abandoned: compute inline (once)."""
        fp = job.fingerprints[index]
        lease_kind = None
        if cacheable:
            lease_kind, value = self.store.lease(fp)
            if lease_kind == "hit":
                # raced with a concurrent fallback that already stored it
                entries[index] = {"status": "ok", "cached": True, "result": value}
                job.progress["completed"] += 1
                job.progress["cached"] += 1
                return
        try:
            outcome = execute_trial(job.specs[index])
        except Exception as exc:
            if lease_kind == "lease":
                self.store.abandon(fp)
            entries[index] = {
                "status": "failed",
                "cached": False,
                "error_type": type(exc).__name__,
                "error": str(exc),
                "attempts": 1,
                "timed_out": False,
            }
            job.progress["completed"] += 1
            job.progress["failed"] += 1
            return
        result = execution_to_dict(outcome)
        if lease_kind == "lease":
            self.store.fulfill(fp, result)
        entries[index] = {"status": "ok", "cached": False, "result": result}
        job.progress["completed"] += 1
        job.progress["computed"] += 1
        self._metric(lambda reg: record_run_result(reg, outcome))
        if sink is not None and result.get("telemetry") is not None:
            sink.write(result["telemetry"])
