"""Wire schema of the serve control plane: JSON in, trial specs out.

A sweep request is one JSON object with either an explicit ``trials``
list or a generator-form ``sweep`` block (protocol × graph family ×
trial count, expanded exactly like the experiment sweeps expand their
cells).  Both forms validate into ordinary
:class:`~repro.parallel.TrialSpec` records — the same plain data the
CLI and experiments feed :func:`~repro.parallel.run_trials` — so a
request's results are byte-identical to running the specs directly
(pinned by ``tests/test_serve.py``).

Request shape::

    {
      "mode": "auto" | "sync" | "async",      # default "auto"
      "label": "nightly smm sweep",           # optional, display only
      "deadline_s": 30,                       # optional; job is shed as
                                              # cancelled past this many
                                              # seconds after submit
      "trials": [ {<trial>}, ... ],           # explicit form
      "sweep": { ... }                        # or generator form
    }

One ``<trial>``::

    {
      "protocol": "smm",                      # required
      "graph": {"family": "cycle", "n": 16}   # or {"nodes": [...],
                                              #     "edges": [[u,v],..]}
      "config": {"0": null, "1": 0, ...},     # optional initial states
      "daemon": "synchronous",
      "max_rounds": null,
      "seed": 3,
      "backend": "auto",
      "telemetry": false,
      "options": {"name": value, ...}         # JSON scalars (+ tagged
                                              # objects, e.g. FaultPlan)
    }

Generator form (``sweep``)::

    {
      "protocol": "smm", "family": "cycle", "n": 16,
      "trials": 5, "seed": 101,               # per-trial seeds derived
      "init": "random" | "clean",             # default "random"
      "daemon": "synchronous", "backend": "auto",
      "max_rounds": null, "telemetry": false,
      "graph_seed": 7                         # random families only
    }

Errors raise :class:`RequestError` with a message naming the offending
field — the server maps them to HTTP 400.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Tuple

from repro.analysis.serialize import (
    SCHEMA_VERSION,
    configuration_from_dict,
    graph_from_dict,
)
from repro.engine.registry import DAEMONS, PROTOCOLS
from repro.graphs.graph import Graph
from repro.parallel.trial_runner import TrialSpec

__all__ = [
    "MAX_REQUEST_TRIALS",
    "MODES",
    "RequestError",
    "SweepRequest",
    "parse_sweep_request",
]

MODES: Tuple[str, ...] = ("auto", "sync", "async")

#: Hard per-request trial ceiling — a queue-protection limit, not a
#: scaling one (submit several requests for more).
MAX_REQUEST_TRIALS = 4096

#: Graph size ceiling for the *generator* form (explicit node/edge
#: lists are bounded by the HTTP body size instead).
MAX_REQUEST_NODES = 1_000_000


class RequestError(ValueError):
    """A sweep request that does not validate; the message names the
    offending field.  Mapped to HTTP 400 by the server."""


@dataclass(frozen=True)
class SweepRequest:
    """A validated sweep submission."""

    specs: Tuple[TrialSpec, ...]
    mode: str = "auto"
    label: Optional[str] = None
    #: seconds from submission after which the job is shed (queued jobs
    #: cancel immediately, running ones at the next trial boundary)
    deadline_s: Optional[float] = None


def parse_sweep_request(payload: Any) -> SweepRequest:
    """Validate one JSON request body into a :class:`SweepRequest`."""
    if not isinstance(payload, Mapping):
        raise RequestError("request body must be a JSON object")
    schema = payload.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise RequestError(
            f"schema version {schema!r} not supported "
            f"(this server speaks {SCHEMA_VERSION})"
        )
    mode = payload.get("mode", "auto")
    if mode not in MODES:
        raise RequestError(f"mode must be one of {MODES}, got {mode!r}")
    label = payload.get("label")
    if label is not None and not isinstance(label, str):
        raise RequestError("label must be a string")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if (
            isinstance(deadline_s, bool)
            or not isinstance(deadline_s, (int, float))
            or deadline_s <= 0
        ):
            raise RequestError(
                f"deadline_s must be a positive number, got {deadline_s!r}"
            )
        deadline_s = float(deadline_s)
    trials = payload.get("trials")
    sweep = payload.get("sweep")
    if (trials is None) == (sweep is None):
        raise RequestError(
            "request needs exactly one of 'trials' (explicit spec list) "
            "or 'sweep' (generator form)"
        )
    if trials is not None:
        if not isinstance(trials, (list, tuple)) or not trials:
            raise RequestError("trials must be a non-empty array")
        specs = [
            _parse_trial(entry, where=f"trials[{i}]")
            for i, entry in enumerate(trials)
        ]
    else:
        specs = _expand_sweep(sweep)
    if len(specs) > MAX_REQUEST_TRIALS:
        raise RequestError(
            f"request expands to {len(specs)} trials; the per-request "
            f"ceiling is {MAX_REQUEST_TRIALS} (split into several "
            "submissions)"
        )
    return SweepRequest(
        specs=tuple(specs), mode=mode, label=label, deadline_s=deadline_s
    )


# ----------------------------------------------------------------------
# pieces
# ----------------------------------------------------------------------
def _require(data: Mapping, key: str, where: str) -> Any:
    if key not in data:
        raise RequestError(f"{where}.{key} is required")
    return data[key]


def _int_or_none(value: Any, where: str) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{where} must be an integer or null")
    return value


def _parse_graph(data: Any, where: str) -> Graph:
    if not isinstance(data, Mapping):
        raise RequestError(f"{where} must be an object")
    if "family" in data:
        from repro.errors import GraphError
        from repro.graphs.generators import family
        from repro.rng import ensure_rng

        name = data["family"]
        n = _require(data, "n", where)
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            raise RequestError(f"{where}.n must be a positive integer")
        if n > MAX_REQUEST_NODES:
            raise RequestError(
                f"{where}.n exceeds the per-request node ceiling "
                f"({MAX_REQUEST_NODES})"
            )
        seed = _int_or_none(data.get("seed"), f"{where}.seed")
        try:
            make = family(str(name))
            return make(n, ensure_rng(0 if seed is None else seed))
        except GraphError as exc:
            raise RequestError(f"{where}: {exc}") from None
    if "nodes" in data:
        try:
            return graph_from_dict(data)
        except Exception as exc:
            raise RequestError(f"{where}: invalid node/edge lists ({exc})")
    raise RequestError(
        f"{where} needs either a graph family "
        "({'family', 'n', ['seed']}) or explicit {'nodes', 'edges'}"
    )


def _parse_options(data: Any, where: str) -> Tuple[Tuple[str, Any], ...]:
    if data is None:
        return ()
    if not isinstance(data, Mapping):
        raise RequestError(f"{where} must be an object")
    from repro.analysis.serialize import _option_value_from_json

    out = []
    for name in sorted(data):
        value = data[name]
        if isinstance(value, (list, tuple)):
            raise RequestError(
                f"{where}.{name}: array option values have no spec "
                "representation"
            )
        try:
            out.append((str(name), _option_value_from_json(value)))
        except Exception as exc:
            raise RequestError(f"{where}.{name}: {exc}") from None
    return tuple(out)


def _parse_trial(data: Any, *, where: str) -> TrialSpec:
    if not isinstance(data, Mapping):
        raise RequestError(f"{where} must be an object")
    protocol = str(_require(data, "protocol", where))
    if protocol not in PROTOCOLS:
        raise RequestError(
            f"{where}.protocol: unknown protocol {protocol!r} "
            f"(known: {sorted(PROTOCOLS)})"
        )
    daemon = str(data.get("daemon", "synchronous"))
    if daemon not in DAEMONS:
        raise RequestError(
            f"{where}.daemon must be one of {DAEMONS}, got {daemon!r}"
        )
    graph = _parse_graph(_require(data, "graph", where), f"{where}.graph")
    config = data.get("config")
    if config is not None:
        if not isinstance(config, Mapping):
            raise RequestError(f"{where}.config must be an object or null")
        try:
            config = configuration_from_dict(config)
        except Exception as exc:
            raise RequestError(f"{where}.config: {exc}") from None
        unknown = set(config) - set(graph.nodes)
        if unknown:
            raise RequestError(
                f"{where}.config names nodes not in the graph: "
                f"{sorted(unknown)[:5]}"
            )
    return TrialSpec(
        protocol=protocol,
        graph=graph,
        config=config,
        daemon=daemon,
        max_rounds=_int_or_none(
            data.get("max_rounds"), f"{where}.max_rounds"
        ),
        record_history=False,  # histories are too large for the wire
        seed=_int_or_none(data.get("seed"), f"{where}.seed"),
        options=_parse_options(data.get("options"), f"{where}.options"),
        backend=str(data.get("backend", "auto")),
        telemetry=bool(data.get("telemetry", False)),
    )


def _expand_sweep(data: Any) -> List[TrialSpec]:
    """The generator form: one graph, ``trials`` seeded trials."""
    where = "sweep"
    if not isinstance(data, Mapping):
        raise RequestError(f"{where} must be an object")
    protocol = str(_require(data, "protocol", where))
    if protocol not in PROTOCOLS:
        raise RequestError(
            f"{where}.protocol: unknown protocol {protocol!r} "
            f"(known: {sorted(PROTOCOLS)})"
        )
    count = data.get("trials", 1)
    if isinstance(count, bool) or not isinstance(count, int) or count < 1:
        raise RequestError(f"{where}.trials must be a positive integer")
    if count > MAX_REQUEST_TRIALS:
        raise RequestError(
            f"{where}.trials exceeds the per-request ceiling "
            f"({MAX_REQUEST_TRIALS})"
        )
    init = data.get("init", "random")
    if init not in ("random", "clean"):
        raise RequestError(
            f"{where}.init must be 'random' or 'clean', got {init!r}"
        )
    seed = data.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise RequestError(f"{where}.seed must be an integer")
    graph_data = {
        "family": _require(data, "family", where),
        "n": _require(data, "n", where),
        "seed": data.get("graph_seed", seed),
    }
    graph = _parse_graph(graph_data, f"{where}")
    template = _parse_trial(
        {
            "protocol": protocol,
            "graph": {"nodes": [], "edges": []},  # placeholder, replaced
            "daemon": data.get("daemon", "synchronous"),
            "max_rounds": data.get("max_rounds"),
            "backend": data.get("backend", "auto"),
            "telemetry": data.get("telemetry", False),
            "options": data.get("options"),
        },
        where=where,
    )
    from dataclasses import replace

    from repro.core.faults import random_configuration
    from repro.engine.registry import make_protocol
    from repro.rng import ensure_rng, trial_seeds

    proto = make_protocol(protocol) if init == "random" else None
    specs = []
    for trial_seed in trial_seeds(seed, count):
        config = (
            random_configuration(proto, graph, ensure_rng(trial_seed))
            if proto is not None
            else None
        )
        specs.append(
            replace(template, graph=graph, config=config, seed=trial_seed)
        )
    return specs
