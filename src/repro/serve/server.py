"""HTTP surface of the serve control plane (stdlib only).

:class:`ServeApp` is the transport-free application object — every
endpoint is an ordinary method returning ``(status, payload)`` — and
:class:`ReproServer` mounts it on a ``ThreadingHTTPServer``.  Keeping
the two apart means the routing/validation logic is testable without
sockets while the e2e tests still drive real HTTP.

Endpoints (all JSON unless noted)::

    GET  /                      service + endpoint index
    GET  /healthz               liveness (always 200 once serving)
    GET  /metrics               Prometheus text exposition (v0.0.4)
    POST /v1/sweeps             submit a sweep (schema.py documents the
                                body); sync mode answers 200 with
                                results inline, async answers 202 with
                                the job record
    GET  /v1/jobs               all jobs, newest last
    GET  /v1/jobs/<id>          job status + progress
    GET  /v1/jobs/<id>/result   per-trial results (409 while running)
    GET  /v1/jobs/<id>/telemetry  raw JSONL stream (``repro dash``
                                renders a saved copy)
    POST /v1/jobs/<id>/cancel   request cancellation

Graceful shutdown: :func:`run_server` installs SIGTERM/SIGINT handlers
that set an event; the main thread then stops accepting, drains the
job manager (interrupted jobs are journaled back to ``queued``) and
unlinks every shared-memory segment via
:func:`repro.parallel.close_all_stores`, so a killed daemon leaks
nothing in ``/dev/shm`` and resumes its queue on restart.
"""

from __future__ import annotations

import json
import re
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.serve.jobs import Draining, JobManager, QueueFull
from repro.serve.schema import RequestError, parse_sweep_request

__all__ = ["ServeApp", "ReproServer", "run_server"]

#: ``mode="auto"`` submissions at or below this many trials answer
#: synchronously (the request blocks until the job finishes).
SYNC_MAX_TRIALS = 16

#: How long a sync request blocks before degrading to the async answer.
SYNC_TIMEOUT = 300.0

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"
_NDJSON = "application/x-ndjson"

#: ``(status, content-type, payload)`` — handlers that need extra
#: headers (``Retry-After`` on 429/503) append a ``{name: value}`` dict
#: as a fourth element.
Response = Tuple[Any, ...]


class ServeApp:
    """The control plane behind the HTTP handler."""

    def __init__(
        self,
        state_dir: str,
        *,
        workers: int = 2,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        runner_jobs: int = 1,
        trial_timeout: Optional[float] = None,
        retries: int = 1,
        sync_max_trials: int = SYNC_MAX_TRIALS,
        sync_timeout: float = SYNC_TIMEOUT,
        scale_up_after: float = 1.0,
        scale_down_idle: float = 5.0,
        enable_chaos: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.manager = JobManager(
            state_dir,
            workers=workers,
            min_workers=min_workers,
            max_workers=max_workers,
            max_queue_depth=max_queue_depth,
            runner_jobs=runner_jobs,
            trial_timeout=trial_timeout,
            retries=retries,
            registry=self.registry,
            scale_up_after=scale_up_after,
            scale_down_idle=scale_down_idle,
        )
        self.sync_max_trials = sync_max_trials
        self.sync_timeout = sync_timeout
        self.enable_chaos = enable_chaos
        self.started = time.time()

    def start(self) -> None:
        self.manager.start()

    def stop(self) -> None:
        self.manager.shutdown()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def handle_index(self) -> Response:
        return (
            200,
            _JSON,
            {
                "service": "repro-serve",
                "endpoints": [
                    "GET /healthz",
                    "GET /metrics",
                    "POST /v1/sweeps",
                    "GET /v1/jobs",
                    "GET /v1/jobs/<id>",
                    "GET /v1/jobs/<id>/result",
                    "GET /v1/jobs/<id>/telemetry",
                    "POST /v1/jobs/<id>/cancel",
                ]
                + (["POST /v1/chaos"] if self.enable_chaos else []),
            },
        )

    def handle_health(self) -> Response:
        return (
            200,
            _JSON,
            {
                "status": "draining" if self.manager.draining else "ok",
                "uptime_seconds": round(time.time() - self.started, 3),
                "queued": self.manager.queue_depth(),
                "running": self.manager.running_count(),
                "saturation": round(self.manager.saturation(), 4),
                "pool": self.manager.pool_stats(),
            },
        )

    def handle_metrics(self) -> Response:
        manager = self.manager
        # Snapshot every gauge input *before* taking metrics_lock: the
        # manager acquires metrics_lock while holding its own lock
        # (_finish_locked -> _metric), so calling queue_depth() &c.
        # under metrics_lock would invert the lock order and deadlock
        # against a finishing job.
        depth = manager.queue_depth()
        running = manager.running_count()
        saturation = manager.saturation()
        pool = manager.pool_stats()
        entries = len(manager.store)
        uptime = round(time.time() - self.started, 3)
        with manager.metrics_lock:
            self.registry.gauge(
                "repro_serve_queue_depth", "Jobs waiting for a worker"
            ).set(depth)
            self.registry.gauge(
                "repro_serve_running_jobs", "Jobs currently executing"
            ).set(running)
            self.registry.gauge(
                "repro_serve_queue_saturation",
                "Queue depth over max_queue_depth (0 when unbounded)",
            ).set(round(saturation, 4))
            self.registry.gauge(
                "repro_serve_workers", "Live worker threads"
            ).set(pool["alive"])
            self.registry.gauge(
                "repro_serve_workers_target",
                "Worker count the supervisor is steering toward",
            ).set(pool["target"])
            self.registry.gauge(
                "repro_serve_uptime_seconds", "Seconds since server start"
            ).set(uptime)
            self.registry.gauge(
                "repro_result_store_entries", "Results in the dedup store"
            ).set(entries)
            text = self.registry.exposition()
        return (200, _PROM, text)

    def handle_submit(self, payload: Any) -> Response:
        try:
            request = parse_sweep_request(payload)
        except RequestError as exc:
            return (400, _JSON, {"error": str(exc)})
        mode = request.mode
        if mode == "auto":
            mode = (
                "sync"
                if len(request.specs) <= self.sync_max_trials
                else "async"
            )
        try:
            job = self.manager.submit(
                request.specs,
                label=request.label,
                mode=mode,
                deadline_s=request.deadline_s,
            )
        except QueueFull as exc:
            return (
                429,
                _JSON,
                {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": str(exc.retry_after)},
            )
        except Draining as exc:
            return (
                503,
                _JSON,
                {"error": str(exc)},
                {"Retry-After": "10"},
            )
        except ValueError as exc:
            return (400, _JSON, {"error": str(exc)})
        if mode == "sync":
            if self.manager.wait(job, timeout=self.sync_timeout):
                return (
                    200,
                    _JSON,
                    {"job": job.summary(), "results": self.manager.results(job)},
                )
            # still running: degrade to the async contract
            return (202, _JSON, {"job": job.summary()})
        return (202, _JSON, {"job": job.summary()})

    def handle_jobs(self) -> Response:
        return (
            200,
            _JSON,
            {"jobs": [job.summary() for job in self.manager.jobs()]},
        )

    def handle_job(self, job_id: str) -> Response:
        job = self.manager.get(job_id)
        if job is None:
            return (404, _JSON, {"error": f"unknown job {job_id!r}"})
        return (200, _JSON, {"job": job.summary()})

    def handle_result(self, job_id: str) -> Response:
        job = self.manager.get(job_id)
        if job is None:
            return (404, _JSON, {"error": f"unknown job {job_id!r}"})
        if job.state in ("queued", "running"):
            return (
                409,
                _JSON,
                {
                    "error": f"job {job_id} is {job.state}; poll "
                    f"{job.summary()['links']['status']} until it finishes",
                    "job": job.summary(),
                },
            )
        if job.state in ("failed", "cancelled"):
            return (
                410,
                _JSON,
                {
                    "error": f"job {job_id} finished {job.state}"
                    + (f": {job.error}" if job.error else ""),
                    "job": job.summary(),
                },
            )
        results = self.manager.results(job)
        if results is None:
            return (
                500,
                _JSON,
                {"error": f"job {job_id} journal is missing its results"},
            )
        return (200, _JSON, {"job": job.summary(), "results": results})

    def handle_telemetry(self, job_id: str) -> Response:
        job = self.manager.get(job_id)
        if job is None:
            return (404, _JSON, {"error": f"unknown job {job_id!r}"})
        if not job.telemetry_requested:
            return (
                404,
                _JSON,
                {
                    "error": f"job {job_id} has no telemetry "
                    "(no spec requested telemetry=true)"
                },
            )
        try:
            with open(job.telemetry_path, "rb") as handle:
                body = handle.read()
        except OSError:
            body = b""  # requested but nothing streamed yet
        return (200, _NDJSON, body)

    def handle_cancel(self, job_id: str) -> Response:
        state = self.manager.cancel(job_id)
        if state is None:
            return (404, _JSON, {"error": f"unknown job {job_id!r}"})
        job = self.manager.get(job_id)
        return (202, _JSON, {"job": job.summary() if job else {"state": state}})

    def handle_chaos(self, payload: Any) -> Response:
        """Fault injection for the chaos harness; a 404 unless the
        server was started with ``--enable-chaos``."""
        if not self.enable_chaos:
            return (
                404,
                _JSON,
                {"error": "chaos endpoint disabled (start with --enable-chaos)"},
            )
        fault = payload.get("fault") if isinstance(payload, dict) else None
        if fault == "kill_worker":
            self.manager.chaos_kill_worker()
            return (202, _JSON, {"fault": "kill_worker"})
        if fault == "stall_worker":
            seconds = payload.get("seconds", 5)
            if not isinstance(seconds, (int, float)) or seconds <= 0:
                return (400, _JSON, {"error": "seconds must be > 0"})
            self.manager.chaos_stall_worker(float(seconds))
            return (
                202,
                _JSON,
                {"fault": "stall_worker", "seconds": min(float(seconds), 30.0)},
            )
        return (
            400,
            _JSON,
            {
                "error": f"unknown fault {fault!r} "
                "(expected kill_worker or stall_worker)"
            },
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    _ROUTES: Tuple[Tuple[str, "re.Pattern[str]", str, str], ...] = (
        ("GET", re.compile(r"^/$"), "index", "/"),
        ("GET", re.compile(r"^/healthz$"), "health", "/healthz"),
        ("GET", re.compile(r"^/metrics$"), "metrics", "/metrics"),
        ("POST", re.compile(r"^/v1/sweeps$"), "submit", "/v1/sweeps"),
        ("GET", re.compile(r"^/v1/jobs$"), "jobs", "/v1/jobs"),
        ("GET", re.compile(r"^/v1/jobs/([^/]+)$"), "job", "/v1/jobs/<id>"),
        (
            "GET",
            re.compile(r"^/v1/jobs/([^/]+)/result$"),
            "result",
            "/v1/jobs/<id>/result",
        ),
        (
            "GET",
            re.compile(r"^/v1/jobs/([^/]+)/telemetry$"),
            "telemetry",
            "/v1/jobs/<id>/telemetry",
        ),
        (
            "POST",
            re.compile(r"^/v1/jobs/([^/]+)/cancel$"),
            "cancel",
            "/v1/jobs/<id>/cancel",
        ),
        ("POST", re.compile(r"^/v1/chaos$"), "chaos", "/v1/chaos"),
    )

    def dispatch(self, method: str, path: str, body: Optional[bytes]) -> Response:
        """Route one request to its ``handle_*`` method."""
        try:
            for verb, pattern, name, _label in self._ROUTES:
                match = pattern.match(path)
                if match is None:
                    continue
                if verb != method:
                    return (
                        405,
                        _JSON,
                        {"error": f"{path} only supports {verb}"},
                    )
                handler: Callable[..., Response] = getattr(
                    self, f"handle_{name}"
                )
                args = list(match.groups())
                if method == "POST" and name in ("submit", "chaos"):
                    try:
                        payload = json.loads(body or b"")
                    except ValueError:
                        return (
                            400,
                            _JSON,
                            {"error": "request body is not valid JSON"},
                        )
                    args.append(payload)
                return handler(*args)
            return (404, _JSON, {"error": f"no route for {method} {path}"})
        except Exception as exc:  # never let a handler kill the thread
            return (
                500,
                _JSON,
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
            )

    def record_http(self, method: str, route: str, code: int) -> None:
        with self.manager.metrics_lock:
            self.registry.counter(
                "repro_http_requests_total", "Control-plane HTTP requests"
            ).inc(method=method, route=route, code=str(code))

    def route_label(self, method: str, path: str) -> str:
        for _verb, pattern, _name, label in self._ROUTES:
            if pattern.match(path):
                return label
        return "<unmatched>"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _respond(self, response: Response) -> None:
        status, content_type, payload = response[:3]
        extra: Dict[str, str] = response[3] if len(response) > 3 else {}
        if isinstance(payload, bytes):
            body = payload
        elif content_type == _PROM:
            body = str(payload).encode("utf-8")
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _serve(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
        response = self.app.dispatch(method, path, body)
        try:
            self._respond(response)
        finally:
            self.app.record_http(
                method, self.app.route_label(method, path), response[0]
            )

    def do_GET(self) -> None:
        self._serve("GET")

    def do_POST(self) -> None:
        self._serve("POST")


class ReproServer:
    """A :class:`ServeApp` mounted on a threading HTTP server."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.app = app  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def start(self) -> None:
        self.app.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop accepting, drain the manager, release shared memory."""
        from repro.parallel import close_all_stores

        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.app.stop()
        close_all_stores()


def _print_flushed(message: str) -> None:
    # The listen line is parsed by supervisors (tests, smoke scripts)
    # reading our pipe; block buffering would withhold it until exit.
    print(message, flush=True)


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    state_dir: str,
    workers: int = 2,
    min_workers: Optional[int] = None,
    max_workers: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    runner_jobs: int = 1,
    trial_timeout: Optional[float] = None,
    retries: int = 1,
    sync_timeout: float = SYNC_TIMEOUT,
    scale_up_after: float = 1.0,
    scale_down_idle: float = 5.0,
    enable_chaos: bool = False,
    print_fn: Callable[[str], None] = _print_flushed,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Runs until SIGTERM/SIGINT, then shuts down gracefully: running
    sweeps are interrupted at their next scheduling point and journaled
    back to ``queued`` (their checkpoints make the restart cheap), and
    every shared-memory segment is unlinked before exit.

    Returns 2 (with a one-line diagnostic on stderr) when the listen
    address cannot be bound — the classic already-running case must not
    be a traceback.
    """
    app = ServeApp(
        state_dir,
        workers=workers,
        min_workers=min_workers,
        max_workers=max_workers,
        max_queue_depth=max_queue_depth,
        runner_jobs=runner_jobs,
        trial_timeout=trial_timeout,
        retries=retries,
        sync_timeout=sync_timeout,
        scale_up_after=scale_up_after,
        scale_down_idle=scale_down_idle,
        enable_chaos=enable_chaos,
    )
    try:
        server = ReproServer(app, host=host, port=port)
    except OSError as exc:
        print(
            f"repro serve: cannot bind {host}:{port}: {exc.strerror or exc} "
            "(is another server already listening there?)",
            file=sys.stderr,
            flush=True,
        )
        return 2
    stop = threading.Event()

    def _signal_handler(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal_handler)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.start()
        print_fn(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"(state dir {app.manager.state_dir})"
        )
        stop.wait()
        print_fn("repro serve: shutting down (draining jobs, unlinking shm)")
        server.shutdown()
        print_fn("repro serve: shutdown complete")
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0
