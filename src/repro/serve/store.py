"""Content-addressed result store with single-writer dedup.

Results are keyed by :func:`~repro.parallel.spec_fingerprint` — the
versioned hash of everything a trial's outcome depends on — so two
submissions of the same spec share one computation and one stored
result, across jobs and across server restarts.  Three invariants:

* **addressing** — one file per fingerprint
  (``<root>/<fp>.json``), written atomically (``os.replace`` of a
  same-directory temp file) so readers never observe a torn write;
* **single writer** — :meth:`ResultStore.lease` hands out at most one
  lease per fingerprint at a time; concurrent requesters get the
  leader's :class:`threading.Event` and wait for :meth:`fulfill`
  instead of recomputing;
* **no wrong answers** — a spec is cacheable only when it is
  deterministic, i.e. carries an explicit ``seed``
  (:meth:`cacheable`).  Unseeded trials always compute.
* **corrupt entries are misses** — a stored file that exists but no
  longer parses (torn write survived a crash, disk bitrot, manual
  tampering) is quarantined to ``<fp>.json.corrupt`` and treated as a
  miss, so the fingerprint recomputes instead of poisoning every
  future hit.

The store itself keeps no hit/miss counters — the
:class:`~repro.serve.jobs.JobManager` records those in its
:class:`~repro.observability.MetricsRegistry` where they land on
``/metrics``.  The one store-level event worth counting, a
quarantined corrupt entry, is reported through the optional
``on_corrupt`` callback for the same reason.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Callable, Dict, Optional, Tuple, Union

__all__ = ["ResultStore"]


class ResultStore:
    """Fingerprint-addressed JSON results on disk, with in-process
    in-flight coalescing.  Thread-safe."""

    def __init__(
        self,
        root: Union[str, os.PathLike],
        *,
        on_corrupt: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._sweep_stale_tmp()
        self._lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        self._on_corrupt = on_corrupt

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files a crashed leader left behind.

        :meth:`fulfill` writes ``<fp>.json.tmp.<pid>.<tid>`` and
        ``os.replace``s it into place; a process killed between the two
        leaves the temp file forever.  No live writer's temp file can be
        racing us here: this runs before the store hands out any lease,
        and temp names are pid/tid-qualified so another *process* writing
        into the same root would only lose an in-flight temp file (its
        ``os.replace`` simply fails, and the fingerprint recomputes).
        """
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if ".json.tmp." not in name:
                continue
            try:
                os.remove(os.path.join(self.root, name))
            except OSError:
                pass  # already gone, or unremovable: not worth failing init

    @staticmethod
    def cacheable(spec) -> bool:
        """Whether ``spec``'s result may be served from the store.

        Only explicitly seeded specs qualify: an unseeded trial draws
        fresh randomness per run, so 'the same request' is *supposed*
        to differ between submissions.
        """
        return spec.seed is not None

    def path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.json")

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``fingerprint``, or ``None``.  A
        missing or unreadable file is a miss, never an error.

        A file that *exists* but does not parse is a torn or corrupted
        entry: it is renamed to ``<fp>.json.corrupt`` (preserved for
        post-mortem, out of the way of future reads) and reported via
        ``on_corrupt`` before the miss is returned.
        """
        path = self.path(fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(fingerprint, path)
            return None

    def _quarantine(self, fingerprint: str, path: str) -> None:
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            return  # a concurrent reader already moved it
        if self._on_corrupt is not None:
            try:
                self._on_corrupt(fingerprint)
            except Exception:
                pass  # telemetry must never break the read path

    def lease(
        self, fingerprint: str
    ) -> Tuple[str, Union[Dict[str, Any], threading.Event]]:
        """Claim the right to compute ``fingerprint``, or learn why not.

        Returns one of::

            ("hit",   result_dict)  # already stored — use it
            ("wait",  event)        # another thread holds the lease;
                                    # wait on the event, then get()
            ("lease", event)        # you are the single writer: compute,
                                    # then fulfill() or abandon()
        """
        with self._lock:
            result = self.get(fingerprint)
            if result is not None:
                return ("hit", result)
            event = self._inflight.get(fingerprint)
            if event is not None:
                return ("wait", event)
            event = threading.Event()
            self._inflight[fingerprint] = event
            return ("lease", event)

    def fulfill(self, fingerprint: str, result: Dict[str, Any]) -> None:
        """Store the leased result and wake every waiter (atomic).

        The temp file is fsynced before the rename so the rename never
        publishes a name whose *contents* are still in the page cache —
        without it a power loss can durably commit the rename but not
        the data, which is exactly the torn entry :meth:`get`
        quarantines.
        """
        final = self.path(fingerprint)
        tmp = f"{final}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(result, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_dir()
        self._release(fingerprint)

    def _fsync_dir(self) -> None:
        """Best-effort fsync of the store directory so the rename itself
        is durable; some filesystems don't allow O_RDONLY dir fds."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def abandon(self, fingerprint: str) -> None:
        """Give up a lease without storing (the trial failed or was
        cancelled).  Waiters wake, find no result, and fall back to
        computing for themselves."""
        self._release(fingerprint)

    def _release(self, fingerprint: str) -> None:
        with self._lock:
            event = self._inflight.pop(fingerprint, None)
        if event is not None:
            event.set()

    def wait(
        self, fingerprint: str, event: threading.Event, timeout: Optional[float]
    ) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Wait for a leased computation, then re-read the store.

        Returns ``(result, timed_out)``.  ``result`` is ``None`` when
        there is nothing stored — because the leader abandoned, *or*
        because the wait expired while the leader was still computing.
        ``timed_out`` distinguishes the two: ``Event.wait`` returns
        ``False`` on expiry, and discarding that bool (the old
        behaviour) made a slow leader indistinguishable from a failed
        one, so callers silently recomputed without ever counting the
        expired coalesce wait.
        """
        completed = event.wait(timeout)
        return self.get(fingerprint), not completed

    def __len__(self) -> int:
        try:
            return sum(
                1
                for name in os.listdir(self.root)
                if name.endswith(".json")
            )
        except OSError:
            return 0
