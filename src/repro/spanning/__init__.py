"""Self-stabilizing spanning tree (extension).

The paper's very first motivation (Section 1): "a minimal spanning
tree must be maintained to minimize latency and bandwidth requirements
of multicast/broadcast messages or to implement echo-based distributed
algorithms" — and its references [13, 14] are the same group's
self-stabilizing multicast-tree protocols.  This subpackage supplies
the canonical member of that family — a synchronous self-stabilizing
**BFS spanning tree** — as a fifth client of the engine, demonstrating
that the beacon-round framework of the paper carries the protocols its
introduction promises.
"""

from repro.spanning.bfs_tree import (
    BfsSpanningTree,
    bfs_distances,
    is_bfs_tree,
    tree_edges,
)

__all__ = ["BfsSpanningTree", "bfs_distances", "is_bfs_tree", "tree_edges"]
