"""Synchronous self-stabilizing BFS spanning tree.

Each node maintains ``(dist, parent)``; the designated *root* (by
convention the minimum node id, matching the id-driven symmetry
breaking of Algorithms SMM/SIS) anchors the recursion:

``R_root``  if ``i = r ∧ (dist(i), parent(i)) ≠ (0, ⊥)``
            then ``(dist, parent) := (0, ⊥)``

``R_node``  if ``i ≠ r ∧ (dist(i), parent(i)) ≠ BEST(i)``
            then ``(dist, parent) := BEST(i)``

where ``BEST(i) = (1 + min_j dist(j), argmin)`` over the beaconed
neighbour distances, the argmin tie-broken towards the smallest parent
id, and distances clamped to ``n`` (corrupted values cannot exceed the
state space).

Under the synchronous daemon the protocol stabilizes from any
configuration in at most ``n + D + 2`` rounds, where ``D`` is the
graph diameter: level k of the true BFS order is correct and stable
once levels < k are (the usual layered argument); corrupted
too-*small* distances grow by at least one per round until they either
meet their true value or hit the clamp, which costs at most n extra
rounds.  The measured worst cases sit well inside this envelope
(``tests/test_spanning.py``).

Stable configurations satisfy ``dist(i) = d_G(r, i)`` with parents one
step closer to the root, i.e. the parent pointers form a BFS spanning
tree — the multicast backbone of the paper's introduction.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.protocol import Protocol, Rule, View
from repro.errors import InvalidConfigurationError
from repro.graphs.graph import Graph
from repro.types import NodeId

#: Local state: (distance estimate, parent id or None).
TreeState = Tuple[int, Optional[NodeId]]


def bfs_distances(graph: Graph, root: NodeId) -> Dict[NodeId, int]:
    """True BFS distances from ``root`` (the protocol's target)."""
    dist = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return dist


def tree_edges(config: Mapping[NodeId, TreeState]) -> frozenset:
    """The parent edges of a configuration (canonical orientation)."""
    out = set()
    for node, (_, parent) in config.items():
        if parent is not None:
            out.add((min(node, parent), max(node, parent)))
    return frozenset(out)


def is_bfs_tree(graph: Graph, root: NodeId, config: Mapping[NodeId, TreeState]) -> bool:
    """True iff ``config`` encodes a BFS spanning tree rooted at ``root``.

    Checks: the root is anchored at (0, ⊥); every other node's distance
    is the true BFS distance; its parent is a neighbour exactly one
    level closer.
    """
    truth = bfs_distances(graph, root)
    if len(truth) != graph.n:
        return False  # disconnected: no spanning tree exists
    for node in graph.nodes:
        dist, parent = config[node]
        if node == root:
            if dist != 0 or parent is not None:
                return False
            continue
        if dist != truth[node]:
            return False
        if parent is None or not graph.has_edge(node, parent):
            return False
        if truth[parent] != dist - 1:
            return False
    return True


class BfsSpanningTree(Protocol[TreeState]):
    """The two-rule BFS tree protocol described in the module docstring.

    Parameters
    ----------
    root:
        The designated root id — a protocol constant every node knows,
        exactly like the id ordering assumed by SMM/SIS.  Use
        :meth:`make_for` to root a graph at its minimum id.
    """

    name = "BFS-tree"

    def __init__(self, root: NodeId) -> None:
        if not isinstance(root, (int, np.integer)):
            raise InvalidConfigurationError(f"root must be a node id, got {root!r}")
        self._root = int(root)
        self._rules = (
            Rule(
                name="R_root",
                guard=self._root_guard,
                action=lambda v: (0, None),
                description="anchor the root at level 0",
            ),
            Rule(
                name="R_node",
                guard=self._node_guard,
                action=self._node_action,
                description="adopt 1 + min neighbour level",
            ),
        )

    # ------------------------------------------------------------------
    def root_of(self, graph: Graph) -> NodeId:
        if self._root not in graph:
            raise InvalidConfigurationError(
                f"designated root {self._root} is not a node"
            )
        return self._root

    def _is_root(self, view: View) -> bool:
        return view.node == self._root

    @classmethod
    def make_for(cls, graph: Graph) -> "BfsSpanningTree":
        """A protocol instance rooted at the graph's minimum id."""
        return cls(root=graph.nodes[0])

    @staticmethod
    def _clamp(graph_size_hint: int, value: int) -> int:
        return min(value, graph_size_hint)

    def _best(self, view: View) -> TreeState:
        """``(1 + min neighbour dist, min-id argmin)``.

        No clamp is needed for convergence: values can transiently
        exceed ``n`` while wrong estimates climb, but once the correct
        BFS levels propagate (layer by layer from the anchored root)
        every estimate is overwritten by its true value.  Only
        *initial* configurations are validated against the ``<= n``
        state-space bound.
        """
        best_dist = None
        best_parent = None
        for j in sorted(view.neighbor_states):
            d = view.neighbor_states[j][0]
            if best_dist is None or d < best_dist:
                best_dist = d
                best_parent = j
        assert best_dist is not None  # connected graph: deg >= 1
        return (best_dist + 1, best_parent)

    def _root_guard(self, view: View) -> bool:
        return self._is_root(view) and view.state != (0, None)

    def _node_guard(self, view: View) -> bool:
        if self._is_root(view):
            return False
        if not view.neighbor_states:
            return False  # isolated non-root: no move possible
        return view.state != self._best(view)

    def _node_action(self, view: View) -> TreeState:
        return self._best(view)

    # ------------------------------------------------------------------
    def rules(self) -> Sequence[Rule[TreeState]]:
        return self._rules

    def initial_state(self, node: NodeId, graph: Graph) -> TreeState:
        if node == self.root_of(graph):
            return (0, None)
        return (graph.n, None)

    def random_state(
        self, node: NodeId, graph: Graph, rng: np.random.Generator
    ) -> TreeState:
        dist = int(rng.integers(graph.n + 1))
        neighbors = graph.neighbors(node)
        options: list[Optional[NodeId]] = [None, *neighbors]
        parent = options[int(rng.integers(len(options)))]
        return (dist, parent)

    def validate_state(self, node: NodeId, graph: Graph, state: TreeState) -> None:
        ok = (
            isinstance(state, tuple)
            and len(state) == 2
            and isinstance(state[0], (int, np.integer))
            and 0 <= state[0] <= graph.n
            and (state[1] is None or graph.has_edge(node, state[1]))
        )
        if not ok:
            raise InvalidConfigurationError(
                f"node {node}: invalid BFS-tree state {state!r}"
            )

    def sanitize_state(self, node: NodeId, graph: Graph, state: TreeState) -> TreeState:
        """Drop a parent pointer over a failed link (keep the distance
        estimate; the rules re-derive both)."""
        dist, parent = state
        if parent is not None and not graph.has_edge(node, parent):
            return (dist, None)
        return state

    def is_legitimate(
        self, graph: Graph, config: Mapping[NodeId, TreeState]
    ) -> bool:
        return is_bfs_tree(graph, self.root_of(graph), config)

    def round_bound(self, graph: Graph) -> int:
        """The convergence envelope used by tests: ``n + D + 2``."""
        truth = bfs_distances(graph, self.root_of(graph))
        diameter_from_root = max(truth.values(), default=0)
        return graph.n + diameter_from_root + 2
