"""Long-lived streaming-churn runs with re-stabilization SLOs.

The paper's model claim 6 treats mobility-induced topology change as a
transient fault the protocols self-stabilize out of.  Every other entry
point in this repo is a one-shot — build graph, stabilize, exit.  This
package keeps **one engine alive** under a sustained stream of topology
events and measures, per event, how long re-stabilization takes and how
far it spreads:

* :func:`poisson_plan` / :func:`load_trace` — event schedules as plain
  :class:`~repro.resilience.plan.FaultPlan` data (Poisson arrivals with
  explicit edge churn, or trace files);
* :class:`StreamEngine` — the never-restarting run: events apply
  in-place, the vectorized kernels absorb each one from a dirty set
  seeded at its fault sites (incremental CSR maintenance on
  :class:`~repro.graphs.graph.Graph` keeps the per-event topology cost
  O(changed rows) instead of O(n+m));
* :class:`StreamReport` — per-event samples plus exact aggregate SLOs
  (p50/p99 re-stabilization rounds, containment radius, sustained
  events/sec) with a deterministic ``counters()`` view pinned identical
  across backends;
* :func:`run_soak` — bounded-memory chunked soak mode.

See ``docs/streaming.md`` for the event schema and SLO definitions.
"""

from repro.streaming.engine import (
    StreamEngine,
    StreamReport,
    StreamSample,
    run_soak,
    run_stream,
)
from repro.streaming.events import load_trace, poisson_plan

__all__ = [
    "StreamEngine",
    "StreamReport",
    "StreamSample",
    "load_trace",
    "poisson_plan",
    "run_soak",
    "run_stream",
]
