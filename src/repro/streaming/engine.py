"""The long-lived streaming engine: one run, many topology events.

A :class:`StreamEngine` holds one protocol instance alive while a
:class:`~repro.resilience.plan.FaultPlan` schedule streams events into
it.  Between events it advances the run in *segments* (mirroring the
campaign driver's round semantics: an event at round ``r`` fires after
global round ``r``, quiescent rounds still tick, several events may
share a round with zero-round recovery windows between them) — but
unlike a campaign the engine never restarts: ``run`` may be called
repeatedly with fresh plans, each rebased onto the engine's global
round clock, which is how the soak mode stays alive indefinitely.

Per event the engine records a :class:`StreamSample` — did the system
re-stabilize inside the window to the next event (``recovered`` False
is an SLO miss: the engine fell behind the event rate), how many rounds
and moves it took, how many nodes were touched and the containment
radius from the fault sites — and feeds the ambient
:class:`~repro.observability.metrics.MetricsRegistry`:

========================================== ============ ==============
family                                      kind         labels
========================================== ============ ==============
``repro_stream_events_total``               counter      protocol, kind
``repro_stream_recovered_total``            counter      protocol, kind
``repro_stream_recovery_rounds_total``      counter      protocol
``repro_stream_moves_total``                counter      protocol
``repro_stream_restabilize_rounds``         histogram    protocol
``repro_stream_containment_radius``         histogram    protocol
``repro_stream_restabilize_seconds``        histogram    protocol, backend
``repro_stream_events_per_second``          gauge        protocol, backend
========================================== ============ ==============

Only the last two carry a ``backend`` label: everything above them is
deterministic and byte-identical across backends for the same plan
(pinned by :meth:`StreamReport.counters` in CI's streaming smoke).

Backends
--------
``reference`` reuses the campaign's reference adapter unchanged.
``vectorized`` keeps the whole stream on the array fast path: explicit
edge churn patches the cached CSR incrementally
(:meth:`~repro.graphs.graph.Graph.with_updates`), state migration is an
O(changed links) pointer reset, and the recovery segment runs
:meth:`segment_active` with the dirty frontier *seeded at the event's
fault sites* — the closed neighbourhood ``N[sites]`` is a superset of
the enabled nodes after any event applied to a quiescent state, so the
kernel absorbs the event at its containment radius instead of
rescanning all ``n`` nodes.  When a window ends before quiescence the
residual dirty set is carried forward and unioned into the next seed.

Memory is bounded for indefinite runs: samples are kept in a
``sample_cap``-deep window, while every aggregate (counters, and the
exact p50/p99 over value->count distributions — recovery rounds and
radii are small ints) is O(distinct values), not O(events).
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.containment import containment_radius, edge_fault_sites
from repro.core.executor import _default_round_budget, _resolve_config
from repro.errors import ExperimentError
from repro.graphs.graph import Graph
from repro.kernels import closed_neighborhood
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    current_registry,
    exponential_buckets,
)
from repro.resilience.campaign import (
    CampaignRuntime,
    _ReferenceAdapter,
    select_victims,
)
from repro.resilience.plan import FaultEvent, FaultPlan
from repro.resilience.vector import _FAMILIES
from repro.rng import ensure_rng

__all__ = [
    "StreamEngine",
    "StreamReport",
    "StreamSample",
    "run_soak",
    "run_stream",
]

#: Buckets for re-stabilization rounds (1 .. 8192, doubling).
ROUNDS_BUCKETS = exponential_buckets(1.0, 2.0, 14)
#: Buckets for containment radius in hops (1 .. 512, doubling).
RADIUS_BUCKETS = exponential_buckets(1.0, 2.0, 10)


def _protocols():
    from repro.matching.smm import SynchronousMaximalMatching
    from repro.mis.sis import SynchronousMaximalIndependentSet

    return {
        "smm": SynchronousMaximalMatching,
        "sis": SynchronousMaximalIndependentSet,
    }


@dataclass(frozen=True)
class StreamSample:
    """One event's recovery record (field semantics match the campaign
    driver's ``telemetry.fault_events`` entries)."""

    index: int
    kind: str
    round: int  # global engine round the event fired at
    sites: int
    recovered: bool
    rounds: int
    moves: int
    moves_by_rule: Dict[str, int]
    touched: int
    radius: Optional[int]
    wall_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "round": self.round,
            "sites": self.sites,
            "recovered": self.recovered,
            "rounds": self.rounds,
            "moves": self.moves,
            "moves_by_rule": dict(self.moves_by_rule),
            "touched": self.touched,
            "radius": self.radius,
            "wall_seconds": self.wall_seconds,
        }


def _percentile(dist: Dict[int, int], q: float) -> Optional[int]:
    """Exact nearest-rank percentile of a value -> count distribution."""
    total = sum(dist.values())
    if total == 0:
        return None
    rank = max(1, math.ceil(q * total))
    seen = 0
    for value in sorted(dist):
        seen += dist[value]
        if seen >= rank:
            return value
    return max(dist)  # pragma: no cover


@dataclass
class StreamReport:
    """Aggregate SLO view of a stream run (exact, bounded-memory)."""

    protocol: str
    backend: str
    n: int
    rounds: int
    events: int
    recovered: int
    events_by_kind: Dict[str, int]
    recovered_by_kind: Dict[str, int]
    recovery_rounds_total: int
    moves: int
    moves_by_rule: Dict[str, int]
    touched: int
    radius_max: Optional[int]
    rounds_dist: Dict[int, int]
    radius_dist: Dict[int, int]
    wall_seconds: float
    samples: List[StreamSample] = field(default_factory=list)

    @property
    def p50_rounds(self) -> Optional[int]:
        return _percentile(self.rounds_dist, 0.50)

    @property
    def p99_rounds(self) -> Optional[int]:
        return _percentile(self.rounds_dist, 0.99)

    @property
    def p50_radius(self) -> Optional[int]:
        return _percentile(self.radius_dist, 0.50)

    @property
    def p99_radius(self) -> Optional[int]:
        return _percentile(self.radius_dist, 0.99)

    @property
    def recovered_frac(self) -> float:
        return self.recovered / self.events if self.events else 1.0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def counters(self) -> Dict[str, object]:
        """The deterministic aggregate: byte-identical across backends
        for the same plan and seed (wall-clock fields excluded)."""
        return {
            "rounds": self.rounds,
            "events": self.events,
            "recovered": self.recovered,
            "events_by_kind": dict(sorted(self.events_by_kind.items())),
            "recovered_by_kind": dict(sorted(self.recovered_by_kind.items())),
            "recovery_rounds_total": self.recovery_rounds_total,
            "moves": self.moves,
            "moves_by_rule": dict(sorted(self.moves_by_rule.items())),
            "touched": self.touched,
            "radius_max": self.radius_max,
            "rounds_dist": {str(k): v for k, v in sorted(self.rounds_dist.items())},
            "radius_dist": {str(k): v for k, v in sorted(self.radius_dist.items())},
        }

    def to_dict(self) -> Dict[str, object]:
        out = self.counters()
        out.update(
            {
                "protocol": self.protocol,
                "backend": self.backend,
                "n": self.n,
                "recovered_frac": self.recovered_frac,
                "p50_rounds": self.p50_rounds,
                "p99_rounds": self.p99_rounds,
                "p50_radius": self.p50_radius,
                "p99_radius": self.p99_radius,
                "wall_seconds": self.wall_seconds,
                "events_per_sec": self.events_per_sec,
                "samples": [s.to_dict() for s in self.samples],
            }
        )
        return out


class _SegStats:
    """What one segment reports back, backend-normalized."""

    __slots__ = ("rounds", "stabilized", "moves_by_rule", "touched")

    def __init__(self, rounds, stabilized, moves_by_rule, touched):
        self.rounds = rounds
        self.stabilized = stabilized
        self.moves_by_rule = moves_by_rule
        self.touched = touched


class _ReferenceStream:
    """The campaign reference adapter, normalized to ``_SegStats``."""

    def __init__(self, protocol, graph, config, gen):
        self._inner = _ReferenceAdapter(
            protocol, graph, config, gen, record_history=False, active_set=True
        )

    @property
    def graph(self) -> Graph:
        return self._inner.graph

    def config(self):
        return self._inner.config()

    def run_segment(self, budget: int) -> _SegStats:
        seg = self._inner.run_segment(budget)
        moves: Dict[str, int] = {}
        for entry in seg.per_round:
            for name, count in entry.items():
                moves[name] = moves.get(name, 0) + count
        return _SegStats(seg.rounds, seg.stabilized, moves, seg.touched)

    def apply(self, event: FaultEvent, gen):
        return self._inner.apply(event, gen)


class _VectorStream:
    """Streaming adapter on the vectorized kernels.

    Unlike the campaign's full-scan segments, recovery segments here run
    ``segment_active`` with the dirty frontier seeded at ``N[sites]`` of
    the event just applied — sound because a fault event on a quiescent
    configuration can only enable nodes within the closed neighbourhood
    of its sites (state events rewrite exactly the sites; topology
    events change exactly the sites' adjacency rows, and every guard
    reads only ``N[i]``).  If the previous window ended before
    quiescence its residual dirty set is unioned in, preserving the
    kernels' dirty-superset invariant across events.
    """

    def __init__(self, protocol, graph: Graph, initial, family) -> None:
        self.protocol = protocol
        self.graph = graph
        self.family = family
        self.kernel = family.make(graph)
        self.state = family.encode(self.kernel, initial)
        self.runtime = CampaignRuntime()
        self._dirty = None  # None = everything dirty (initial settle)
        self._settled = False

    def config(self):
        return self.family.decode(self.kernel, self.state)

    def run_segment(self, budget: int) -> _SegStats:
        moves = {name: 0 for name in self.protocol.rule_names()}
        touched = np.zeros(self.kernel.n, dtype=bool)
        stabilized, rounds, state, residual = self.kernel.segment_active(
            self.state, budget, moves, dirty=self._dirty, touched=touched
        )
        self.state = state
        self._dirty = residual
        self._settled = stabilized
        ids = self.kernel._ids
        touched_ids = frozenset(int(ids[k]) for k in np.nonzero(touched)[0])
        return _SegStats(rounds, stabilized, moves, touched_ids)

    def apply(self, event: FaultEvent, gen):
        index = self.graph.dense_index()
        if event.kind in ("perturb", "message_dup"):
            # array fast path, draw-for-draw identical to the dict path
            victims = select_victims(self.graph, event, gen)
            for node in victims:
                self.family.perturb_one(self.kernel, self.state, index[node], gen)
            sites = victims
        elif event.kind == "churn" and (event.add_edges or event.remove_edges):
            # explicit-edge fast path: patch the cached CSR in place and
            # migrate the dense state without a decode/encode round trip
            new_graph = self.graph.with_updates(
                add_edges=event.add_edges, remove_edges=event.remove_edges
            )
            self.family.drop_removed_links(
                self.state,
                [(index[u], index[v]) for u, v in event.remove_edges],
            )
            self.graph = new_graph
            self.kernel = self.family.make(new_graph)
            changed = (*event.add_edges, *event.remove_edges)
            sites = tuple(sorted(edge_fault_sites(changed)))
        else:
            # rare structural events: decode, shared runtime, re-encode
            config = self.family.decode(self.kernel, self.state)
            graph, config, sites = self.runtime.apply(
                self.protocol, self.graph, config, event, gen
            )
            if graph is not self.graph:
                self.graph = graph
                self.kernel = self.family.make(graph)
            self.state = self.family.encode(self.kernel, config)
        self._seed_dirty(sites)
        return sites

    def _seed_dirty(self, sites) -> None:
        index = self.graph.dense_index()
        rows = np.unique(
            np.fromiter(
                (index[int(s)] for s in sites), dtype=np.int64, count=len(sites)
            )
        )
        seed = closed_neighborhood(self.kernel._indptr, self.kernel._indices, rows)
        if not self._settled and self._dirty is not None:
            prev = np.asarray(self._dirty, dtype=np.int64)
            seed = np.union1d(seed, prev)
        self._dirty = seed


class StreamEngine:
    """One never-restarting run absorbing a stream of topology events.

    ``run`` may be called repeatedly; each plan's rounds are rebased
    onto the engine's global clock, so chunked schedules (the soak mode)
    see one continuous run.  ``report()`` snapshots the aggregate SLOs
    at any point.
    """

    def __init__(
        self,
        protocol: str,
        graph: Graph,
        *,
        backend: str = "vectorized",
        config=None,
        rng=None,
        sample_cap: Optional[int] = 4096,
    ) -> None:
        protocols = _protocols()
        if protocol not in protocols:
            raise ExperimentError(
                f"unknown stream protocol {protocol!r}; "
                f"known: {sorted(protocols)}"
            )
        if backend not in ("reference", "vectorized"):
            raise ExperimentError(
                f"unknown stream backend {backend!r}; "
                "known: ['reference', 'vectorized']"
            )
        self.protocol_key = protocol
        self.protocol = protocols[protocol]()
        self.backend = backend
        gen = ensure_rng(rng)
        initial = _resolve_config(self.protocol, graph, config)
        if backend == "reference":
            self.adapter = _ReferenceStream(self.protocol, graph, initial, gen)
        else:
            self.adapter = _VectorStream(
                self.protocol, graph, initial, _FAMILIES[protocol]
            )
        self._elapsed = 0
        self._event_index = 0
        self._events_by_kind: Dict[str, int] = {}
        self._recovered_by_kind: Dict[str, int] = {}
        self._recovery_rounds = 0
        self._moves = 0
        self._moves_by_rule: Dict[str, int] = {}
        self._touched = 0
        self._radius_max: Optional[int] = None
        self._rounds_dist: Dict[int, int] = {}
        self._radius_dist: Dict[int, int] = {}
        self._wall = 0.0
        self._samples: deque = deque(maxlen=sample_cap)

    @property
    def graph(self) -> Graph:
        return self.adapter.graph

    @property
    def elapsed_rounds(self) -> int:
        return self._elapsed

    @property
    def events_seen(self) -> int:
        return self._event_index

    def config(self):
        return self.adapter.config()

    # ------------------------------------------------------------------
    def run(self, plan: FaultPlan, *, settle_budget: Optional[int] = None) -> StreamReport:
        """Stream ``plan`` into the live run and return the cumulative
        report.

        Plan rounds are relative: event round ``r`` fires after the
        engine's global round ``offset + r`` where ``offset`` is the
        clock at entry.  The window after the last event (and after the
        run stabilizes) is ``settle_budget`` rounds, defaulting to the
        executor's round budget for the current graph.
        """
        offset = self._elapsed
        events = plan.events
        run_start = time.perf_counter()
        pending: Optional[Tuple[FaultEvent, tuple, float]] = None
        i = 0
        while True:
            if i < len(events):
                target = offset + events[i].round
            else:
                tail = (
                    _default_round_budget(self.adapter.graph)
                    if settle_budget is None
                    else settle_budget
                )
                target = self._elapsed + tail
            seg = self.adapter.run_segment(target - self._elapsed)
            self._elapsed += seg.rounds
            if pending is not None:
                self._record(*pending, seg)
                pending = None
            if i >= len(events):
                break
            # idle fill: quiescent rounds tick until the event fires
            self._elapsed = target
            t0 = time.perf_counter()
            sites = self.adapter.apply(events[i], plan.event_rng(i))
            pending = (events[i], sites, t0)
            i += 1
        self._wall += time.perf_counter() - run_start
        self._set_rate_gauge()
        return self.report()

    # ------------------------------------------------------------------
    def _record(self, event: FaultEvent, sites, t0: float, seg: _SegStats) -> None:
        wall = time.perf_counter() - t0
        moves = int(sum(seg.moves_by_rule.values()))
        radius = None
        if sites and seg.touched:
            radius = containment_radius(
                self.adapter.graph, set(sites), seg.touched
            )
        sample = StreamSample(
            index=self._event_index,
            kind=event.kind,
            round=self._elapsed - seg.rounds,
            sites=len(sites),
            recovered=bool(seg.stabilized),
            rounds=int(seg.rounds),
            moves=moves,
            moves_by_rule={k: int(v) for k, v in sorted(seg.moves_by_rule.items())},
            touched=len(seg.touched),
            radius=None if radius is None else int(radius),
            wall_seconds=wall,
        )
        self._event_index += 1
        self._events_by_kind[event.kind] = (
            self._events_by_kind.get(event.kind, 0) + 1
        )
        if sample.recovered:
            self._recovered_by_kind[event.kind] = (
                self._recovered_by_kind.get(event.kind, 0) + 1
            )
        self._recovery_rounds += sample.rounds
        self._moves += moves
        for name, count in seg.moves_by_rule.items():
            self._moves_by_rule[name] = self._moves_by_rule.get(name, 0) + count
        self._touched += sample.touched
        self._rounds_dist[sample.rounds] = (
            self._rounds_dist.get(sample.rounds, 0) + 1
        )
        if sample.radius is not None:
            self._radius_dist[sample.radius] = (
                self._radius_dist.get(sample.radius, 0) + 1
            )
            if self._radius_max is None or sample.radius > self._radius_max:
                self._radius_max = sample.radius
        self._samples.append(sample)
        self._emit_metrics(sample)

    def _emit_metrics(self, sample: StreamSample) -> None:
        registry = current_registry()
        if registry is None:
            return
        proto = self.protocol_key
        registry.counter(
            "repro_stream_events_total", "Stream events applied"
        ).inc(1, protocol=proto, kind=sample.kind)
        if sample.recovered:
            registry.counter(
                "repro_stream_recovered_total",
                "Stream events re-stabilized within their window",
            ).inc(1, protocol=proto, kind=sample.kind)
        registry.counter(
            "repro_stream_recovery_rounds_total",
            "Rounds spent re-stabilizing after stream events",
        ).inc(sample.rounds, protocol=proto)
        registry.counter(
            "repro_stream_moves_total", "Moves made recovering from stream events"
        ).inc(sample.moves, protocol=proto)
        registry.histogram(
            "repro_stream_restabilize_rounds",
            "Re-stabilization latency per stream event, in rounds",
            buckets=ROUNDS_BUCKETS,
        ).observe(sample.rounds, protocol=proto)
        if sample.radius is not None:
            registry.histogram(
                "repro_stream_containment_radius",
                "Containment radius per stream event, in hops",
                buckets=RADIUS_BUCKETS,
            ).observe(sample.radius, protocol=proto)
        registry.histogram(
            "repro_stream_restabilize_seconds",
            "Wall-clock apply+recover time per stream event",
            buckets=DEFAULT_BUCKETS,
        ).observe(sample.wall_seconds, protocol=proto, backend=self.backend)

    def _set_rate_gauge(self) -> None:
        registry = current_registry()
        if registry is None or self._wall <= 0:
            return
        registry.gauge(
            "repro_stream_events_per_second",
            "Sustained stream event throughput",
        ).set(
            self._event_index / self._wall,
            protocol=self.protocol_key,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    def report(self) -> StreamReport:
        return StreamReport(
            protocol=self.protocol_key,
            backend=self.backend,
            n=self.adapter.graph.n,
            rounds=self._elapsed,
            events=self._event_index,
            recovered=sum(self._recovered_by_kind.values()),
            events_by_kind=dict(self._events_by_kind),
            recovered_by_kind=dict(self._recovered_by_kind),
            recovery_rounds_total=self._recovery_rounds,
            moves=self._moves,
            moves_by_rule=dict(self._moves_by_rule),
            touched=self._touched,
            radius_max=self._radius_max,
            rounds_dist=dict(self._rounds_dist),
            radius_dist=dict(self._radius_dist),
            wall_seconds=self._wall,
            samples=list(self._samples),
        )


def run_stream(
    protocol: str,
    graph: Graph,
    plan: FaultPlan,
    *,
    backend: str = "vectorized",
    config=None,
    rng=None,
    settle_budget: Optional[int] = None,
    sample_cap: Optional[int] = 4096,
) -> StreamReport:
    """One-shot convenience: build a :class:`StreamEngine`, stream
    ``plan``, return the report."""
    engine = StreamEngine(
        protocol,
        graph,
        backend=backend,
        config=config,
        rng=rng,
        sample_cap=sample_cap,
    )
    return engine.run(plan, settle_budget=settle_budget)


def run_soak(
    protocol: str,
    graph: Graph,
    *,
    backend: str = "vectorized",
    rate: float = 0.1,
    chunk_events: int = 64,
    max_seconds: float = 10.0,
    max_chunks: Optional[int] = None,
    seed: int = 0,
    kinds=("churn", "perturb"),
    sample_cap: Optional[int] = 256,
    settle_budget: Optional[int] = None,
) -> Dict[str, object]:
    """Bounded-memory soak: stream freshly generated Poisson chunks into
    one engine until the wall-clock (or chunk) limit.

    Each chunk's schedule is generated against the engine's *current*
    graph (seeded ``seed + chunk``), so explicit edge churn stays
    applicable no matter how far the topology has drifted.  Returns the
    cumulative report plus soak accounting, including the peak RSS so CI
    can assert the run is memory-bounded.
    """
    import resource

    from repro.streaming.events import poisson_plan

    engine = StreamEngine(
        protocol, graph, backend=backend, sample_cap=sample_cap
    )
    deadline = time.monotonic() + max_seconds
    chunks = 0
    while time.monotonic() < deadline:
        if max_chunks is not None and chunks >= max_chunks:
            break
        plan = poisson_plan(
            engine.graph,
            rate=rate,
            events=chunk_events,
            seed=seed + chunks,
            kinds=kinds,
        )
        engine.run(plan, settle_budget=settle_budget)
        chunks += 1
    report = engine.report()
    return {
        "chunks": chunks,
        "events": report.events,
        "rounds": report.rounds,
        "max_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "report": report,
    }
